"""Unit tests for the query-plan compiler."""

from __future__ import annotations

import pytest

from repro.core.width import hypertree_width
from repro.decomp.jointree import JoinTree, JoinTreeNode, join_tree_from_decomposition
from repro.exceptions import QueryError
from repro.hypergraph.cq import parse_conjunctive_query
from repro.query.plan import AnswerMode, JoinOp, ProjectOp, compile_plan


def _join_tree(query):
    width, decomposition = hypertree_width(query.hypergraph())
    tree = join_tree_from_decomposition(decomposition)
    tree.validate()
    return tree


@pytest.fixture
def triangle():
    return parse_conjunctive_query("ans(x) :- r(x,y), s(y,z), t(z,x).")


def test_answer_mode_coerce():
    assert AnswerMode.coerce("boolean") is AnswerMode.BOOLEAN
    assert AnswerMode.coerce(AnswerMode.COUNT) is AnswerMode.COUNT
    with pytest.raises(QueryError):
        AnswerMode.coerce("all-of-them")


def test_plan_covers_every_node_and_edge(triangle):
    tree = _join_tree(triangle)
    plan = compile_plan(triangle, tree, "enumerate")
    assert plan.num_nodes == len(tree)
    assert len(plan.bags) == plan.num_nodes
    # Full reduction: one bottom-up and one top-down semijoin per tree edge.
    assert len(plan.bottom_up) == plan.num_nodes - 1
    assert len(plan.top_down) == plan.num_nodes - 1
    assert plan.semijoin_count == 2 * (plan.num_nodes - 1)
    # Every atom appears in exactly one bag's assigned list.
    assigned = [i for bag in plan.bags for i in bag.assigned]
    assert sorted(assigned) == list(range(len(plan.atoms)))


def test_boolean_plan_omits_top_down_and_joins(triangle):
    tree = _join_tree(triangle)
    plan = compile_plan(triangle, tree, "boolean")
    assert plan.mode is AnswerMode.BOOLEAN
    assert len(plan.bottom_up) == plan.num_nodes - 1
    assert plan.top_down == ()
    assert plan.join_schedule == ()


def test_join_schedule_retains_only_needed_variables(triangle):
    tree = _join_tree(triangle)
    plan = compile_plan(triangle, tree, "enumerate")
    keep = set(plan.output)
    for op in plan.join_schedule:
        if isinstance(op, JoinOp):
            allowed = keep | set(plan.node_variables[op.target])
            assert set(op.retain) <= allowed
    # The schedule ends by projecting the root onto the output variables.
    final = plan.join_schedule[-1]
    if isinstance(final, ProjectOp):
        assert final.node == 0
        assert final.attributes == plan.output


def test_atom_bindings_distinguish_repeated_relations():
    query = parse_conjunctive_query("ans(x,y,z) :- r(x,y), r(y,z), r(z,x).")
    tree = _join_tree(query)
    plan = compile_plan(query, tree, "enumerate")
    assert [a.relation for a in plan.atoms] == ["r", "r", "r"]
    assert sorted(a.edge for a in plan.atoms) == ["r", "r#1", "r#2"]
    assert {a.variables for a in plan.atoms} == {("x", "y"), ("y", "z"), ("z", "x")}


def test_repeated_variable_binding_is_marked():
    query = parse_conjunctive_query("ans(x) :- r(x,x), s(x,y).")
    tree = _join_tree(query)
    plan = compile_plan(query, tree, "enumerate")
    r_binding = next(a for a in plan.atoms if a.relation == "r")
    assert r_binding.has_repeats
    assert r_binding.variables == ("x",)


def test_output_variable_must_occur_in_tree(triangle):
    # A hand-built join tree that misses the output variable.
    tree = JoinTree(
        triangle.hypergraph(),
        JoinTreeNode(
            variables=frozenset({"y", "z"}),
            cover_edges=frozenset({"s"}),
        ),
    )
    with pytest.raises(QueryError):
        compile_plan(triangle, tree, "enumerate")


def test_describe_lists_the_program(triangle):
    tree = _join_tree(triangle)
    text = compile_plan(triangle, tree, "enumerate").describe()
    assert "bag[0]" in text and "⋉=" in text and "mode=enumerate" in text


def test_numbered_is_preorder_and_consistent(triangle):
    tree = _join_tree(triangle)
    nodes, parent, children = tree.numbered()
    assert nodes[0] is tree.root
    assert parent[0] is None
    for node_id, child_ids in enumerate(children):
        for child_id in child_ids:
            assert parent[child_id] == node_id
            assert child_id > node_id  # pre-order: children come later
    post = list(tree.post_order())
    assert len(post) == len(nodes)
    assert post[-1] is tree.root
