"""Tests for the exception hierarchy."""

from __future__ import annotations

from repro.exceptions import (
    DecompositionError,
    HypergraphError,
    ParseError,
    QueryError,
    ReproError,
    SolverError,
    TimeoutExceeded,
    ValidationError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (
        HypergraphError,
        ParseError,
        DecompositionError,
        ValidationError,
        SolverError,
        TimeoutExceeded,
        QueryError,
    ):
        assert issubclass(exc_type, ReproError)


def test_validation_error_is_decomposition_error():
    assert issubclass(ValidationError, DecompositionError)


def test_catching_base_class():
    try:
        raise ValidationError("boom")
    except ReproError as caught:
        assert "boom" in str(caught)
