"""Unit tests for the table/figure builders and the text reporting."""

from __future__ import annotations

import pytest

from repro.bench.corpus import Instance
from repro.bench.figures import (
    ScalingSeries,
    build_figure1,
    build_figure3,
    build_recursion_depth_series,
)
from repro.bench.reporting import (
    render_depth_series,
    render_scaling_series,
    render_scatter,
    render_table,
)
from repro.bench.runner import run_experiment
from repro.bench.tables import Table, build_table1, build_table2, build_table3, build_table4, build_table5
from repro.hypergraph import generators


@pytest.fixture(scope="module")
def experiment_data():
    instances = [
        Instance("path4", "Application", generators.path(4), "path"),
        Instance("cycle6", "Synthetic", generators.cycle(6), "cycle"),
        Instance("triangles2", "Application", generators.triangle_cascade(2), "triangles"),
        Instance("clique5", "Synthetic", generators.clique(5), "clique"),
    ]
    return run_experiment(instances, time_budget=3.0, max_width=3)


def test_table_helper():
    table = Table("t", ["a", "b"])
    table.add_row([1, "x"])
    assert table.rows == [["1", "x"]]


def test_build_table1(experiment_data):
    table = build_table1(experiment_data)
    assert "Table 1" in table.title
    assert table.rows[-1][0] == "Total"
    # Every method contributes four columns.
    assert len(table.headers) == 3 + 4 * len(experiment_data.methods())
    text = render_table(table)
    assert "Application" in text and "Synthetic" in text


def test_build_table3(experiment_data):
    table = build_table3(experiment_data, max_width=3)
    assert len(table.rows) == 3
    widths_column = [row[0] for row in table.rows]
    assert widths_column == ["1", "2", "3"]
    # Virtual best >= every individual method in each row.
    for row in table.rows:
        virtual = int(row[1])
        assert all(int(cell) <= virtual for cell in row[2:])


def test_build_table4(experiment_data):
    table = build_table4(experiment_data, max_width=3)
    assert len(table.rows) == 3
    for row in table.rows:
        virtual = int(row[1])
        assert all(int(cell) <= virtual for cell in row[2:])
    # Deciding hw <= 1 is at least as easy as hw <= ... for the virtual best
    # on this corpus every question is decided.
    assert int(table.rows[0][1]) == 4


def test_build_table2_small():
    instances = [
        Instance("cycle8", "Synthetic", generators.cycle(8), "cycle"),
        Instance("triangles3", "Application", generators.triangle_cascade(3), "triangles"),
    ]
    table = build_table2(
        instances,
        weighted_thresholds=(5.0,),
        edge_thresholds=(4.0,),
        time_budget=3.0,
        max_width=3,
        include_baselines=True,
    )
    methods = [row[0] for row in table.rows]
    assert methods == ["WeightedCount", "EdgeCount", "NewDetKDecomp", "HtdLEO"]
    solved = [int(row[2]) for row in table.rows]
    assert all(value == 2 for value in solved)


def test_build_table5_small():
    instances = [
        Instance("cycle8", "Synthetic", generators.cycle(8), "cycle"),
        Instance("path4", "Application", generators.path(4), "path"),
    ]
    table = build_table5(instances, short_budget=3.0, extension_factor=2.0, max_width=3)
    assert table.rows[-1][0] == "Total"
    total_short = int(table.rows[-1][3])
    total_long = int(table.rows[-1][4])
    assert total_long >= total_short


def test_build_figure3(experiment_data):
    scatter = build_figure3(experiment_data)
    assert set(scatter) == set(experiment_data.methods())
    for points in scatter.values():
        assert len(points) == 4
    text = render_scatter(scatter)
    assert "Figure 3" in text


def test_build_figure1_small():
    instances = [
        Instance("cycle8", "Synthetic", generators.cycle(8), "cycle"),
        Instance("triangles3", "Application", generators.triangle_cascade(3), "triangles"),
    ]
    series = build_figure1(
        instances,
        core_counts=(1, 2),
        time_budget=3.0,
        max_width=3,
        include_detk_reference=True,
        hybrid=False,
    )
    methods = [line.method for line in series]
    assert "log-k" in methods
    assert any("NewDetKDecomp" in m for m in methods)
    for line in series:
        assert len(line.cores) == len(line.average_runtimes) == 2
    text = render_scaling_series(series)
    assert "Figure 1" in text and "speedup" in text


def test_scaling_series_speedup():
    series = ScalingSeries(method="m")
    series.add(1, 2.0)
    series.add(2, 1.0)
    assert series.speedup() == [1.0, 2.0]


def test_recursion_depth_series():
    series = build_recursion_depth_series(sizes=(8, 16), k=2, family="cycle")
    assert set(series) == {"log-k-decomp", "det-k-decomp"}
    logk = dict(series["log-k-decomp"])
    detk = dict(series["det-k-decomp"])
    assert logk[16] < detk[16]
    text = render_depth_series(series)
    assert "Recursion depth" in text


def test_render_table_alignment():
    table = Table("title", ["col", "value"])
    table.add_row(["a", "1"])
    table.add_row(["longer", "22"])
    text = render_table(table)
    lines = text.splitlines()
    assert lines[0] == "title"
    assert "col" in lines[2]
    # title, separator, header, separator, two rows, closing separator
    assert len(lines) == 7
