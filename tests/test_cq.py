"""Unit tests for conjunctive queries, CSP instances and their abstraction."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError, QueryError
from repro.hypergraph.cq import Atom, ConjunctiveQuery, CSPInstance, parse_conjunctive_query


def test_atom_basics():
    atom = Atom("r", ("x", "y", "x"))
    assert atom.variables == {"x", "y"}
    assert str(atom) == "r(x, y, x)"


def test_atom_without_arguments_rejected():
    with pytest.raises(QueryError):
        Atom("r", ())


def test_query_variables_and_boolean():
    query = ConjunctiveQuery((Atom("r", ("x", "y")), Atom("s", ("y", "z"))))
    assert query.variables == {"x", "y", "z"}
    assert query.is_boolean


def test_query_free_variables_must_occur():
    with pytest.raises(QueryError):
        ConjunctiveQuery((Atom("r", ("x",)),), free_variables=("z",))


def test_query_needs_atoms():
    with pytest.raises(QueryError):
        ConjunctiveQuery(())


def test_query_hypergraph_structure():
    query = ConjunctiveQuery(
        (Atom("r", ("x", "y")), Atom("s", ("y", "z")), Atom("r", ("z", "w"))),
        free_variables=("x",),
    )
    h = query.hypergraph()
    assert h.num_edges == 3
    assert h.vertices == {"x", "y", "z", "w"}
    # Two atoms over relation r must map to two distinct edges.
    assert len(set(h.edge_names)) == 3


def test_edge_atom_map_matches_hypergraph():
    query = ConjunctiveQuery(
        (Atom("r", ("x", "y")), Atom("r", ("y", "z")), Atom("s", ("z", "x")))
    )
    mapping = query.edge_atom_map()
    h = query.hypergraph()
    assert set(mapping) == set(h.edge_names)
    for edge_name, atom in mapping.items():
        assert h.edge_vertices(h.edge_index(edge_name)) == atom.variables


def test_query_str():
    query = ConjunctiveQuery((Atom("r", ("x", "y")),), free_variables=("x",))
    assert "ans(x)" in str(query)
    assert "r(x, y)" in str(query)


def test_parse_query_with_head():
    query = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z).")
    assert query.free_variables == ("x", "z")
    assert len(query.atoms) == 2
    assert query.atoms[0].relation == "r"


def test_parse_boolean_query():
    query = parse_conjunctive_query("r(x,y), s(y,x)")
    assert query.is_boolean
    assert len(query.atoms) == 2


def test_parse_empty_query_raises():
    with pytest.raises(ParseError):
        parse_conjunctive_query("   ")


def test_parse_query_without_atoms_raises():
    with pytest.raises(ParseError):
        parse_conjunctive_query("ans(x) :- ")


def test_csp_instance_hypergraph():
    csp = CSPInstance(
        constraints=(
            ("c1", ("x", "y"), ((1, 2), (2, 3))),
            ("c2", ("y", "z"), ((2, 1),)),
        )
    )
    h = csp.hypergraph()
    assert h.num_edges == 2
    assert h.vertices == {"x", "y", "z"}
    assert csp.variables == {"x", "y", "z"}


def test_csp_arity_mismatch_rejected():
    with pytest.raises(QueryError):
        CSPInstance(constraints=(("c", ("x", "y"), ((1,),)),))


def test_csp_empty_scope_rejected():
    with pytest.raises(QueryError):
        CSPInstance(constraints=(("c", (), ((),)),))


def test_csp_without_constraints_has_no_hypergraph():
    with pytest.raises(QueryError):
        CSPInstance().hypergraph()
