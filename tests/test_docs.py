"""Executable documentation: doctests, fenced examples and link checking.

Three guarantees, all tier-1:

* the doctest examples in the public-facade module docstrings run and pass
  (``repro``, the engine, the query workload, the serving layer, the LRU);
* every fenced ``python`` code block in ``docs/*.md`` and ``README.md``
  executes without error, so the documentation cannot drift from the code;
* every relative markdown link (including ``#anchors``) in those files
  resolves to an existing file/heading.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

DOCTEST_MODULES = [
    "repro",
    "repro.core.codec",
    "repro.lru",
    "repro.pipeline.engine",
    "repro.query.workload",
    "repro.service.service",
]


# --------------------------------------------------------------------------- #
# module doctests
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    import importlib

    module = importlib.import_module(module_name)
    outcome = doctest.testmod(module, verbose=False)
    assert outcome.attempted > 0, f"{module_name} has no doctest examples"
    assert outcome.failed == 0, f"{outcome.failed} doctest failure(s) in {module_name}"


# --------------------------------------------------------------------------- #
# fenced examples in the markdown docs
# --------------------------------------------------------------------------- #
# The language is the first word of the info string; attributes after it
# (```python title=x) must not make the opener unrecognisable, or the
# block's closing ``` would be taken for an opener and swallow the next
# real example silently.
_FENCE_OPEN = re.compile(r"^```(\w*)")


def _fenced_blocks(path: Path) -> list[tuple[int, str, str]]:
    """``(first line number, language, source)`` for each fenced block."""
    blocks = []
    language = None
    buffer: list[str] = []
    start = 0
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if language is None and line.startswith("```"):
            language = _FENCE_OPEN.match(line).group(1) or "text"
            buffer, start = [], number + 1
        elif language is not None and line.strip() == "```":
            blocks.append((start, language, "\n".join(buffer)))
            language = None
        elif language is not None:
            buffer.append(line)
    assert language is None, f"unterminated code fence in {path.name}"
    return blocks


def _python_examples():
    for path in DOC_FILES:
        for line, language, source in _fenced_blocks(path):
            if language == "python":
                yield pytest.param(path, line, source, id=f"{path.name}:L{line}")


@pytest.mark.parametrize("path,line,source", list(_python_examples()))
def test_fenced_python_examples_execute(path, line, source):
    code = compile(source, f"{path.name}:{line}", "exec")
    exec(code, {"__name__": f"doc_example_{path.stem}_{line}"})


def test_docs_actually_contain_examples():
    examples = list(_python_examples())
    assert len(examples) >= 8, "the docs lost their runnable examples"


# --------------------------------------------------------------------------- #
# dead-link check
# --------------------------------------------------------------------------- #
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _github_anchor(heading: str) -> str:
    anchor = heading.strip().lower()
    anchor = re.sub(r"[`*_]", "", anchor)
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def _anchors_of(path: Path) -> set[str]:
    return {_github_anchor(m.group(1)) for m in _HEADING.finditer(path.read_text())}


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_markdown_links_resolve(path):
    problems = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external links are not checked offline
        base, _, fragment = target.partition("#")
        destination = (path.parent / base).resolve() if base else path
        if not destination.exists():
            problems.append(f"{target}: {destination} does not exist")
            continue
        if fragment and destination.suffix == ".md":
            if _github_anchor(fragment) not in _anchors_of(destination):
                problems.append(f"{target}: no heading for anchor #{fragment}")
    assert not problems, f"dead links in {path.name}: " + "; ".join(problems)
