"""Unit tests for Yannakakis' algorithm over annotated join trees."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.query.relation import Relation
from repro.query.yannakakis import AnnotatedNode, full_reduce, semijoin_pass_count, yannakakis


def _chain_tree() -> AnnotatedNode:
    """R(a,b) - S(b,c) - T(c,d) as a path-shaped join tree."""
    t = AnnotatedNode(Relation("T", ("c", "d"), [(10, 100), (20, 200)]))
    s = AnnotatedNode(Relation("S", ("b", "c"), [(1, 10), (2, 20), (3, 30)]), [t])
    r = AnnotatedNode(Relation("R", ("a", "b"), [(7, 1), (8, 2), (9, 4)]), [s])
    return r


def test_full_reduce_removes_dangling_tuples():
    root = _chain_tree()
    full_reduce(root)
    # (9, 4) in R has no partner in S; (3, 30) in S has no partner in T.
    assert set(root.relation.tuples) == {(7, 1), (8, 2)}
    s = root.children[0]
    assert set(s.relation.tuples) == {(1, 10), (2, 20)}


def test_semijoin_pass_count():
    assert semijoin_pass_count(_chain_tree()) == 4


def test_yannakakis_full_enumeration():
    answers = yannakakis(_chain_tree(), ["a", "d"])
    assert set(answers.schema) == {"a", "d"}
    assert set(answers.tuples) == {(7, 100), (8, 200)}


def test_yannakakis_projection_subset():
    answers = yannakakis(_chain_tree(), ["a"])
    assert set(answers.tuples) == {(7,), (8,)}


def test_yannakakis_boolean():
    answers = yannakakis(_chain_tree(), [])
    assert answers.schema == ()
    assert len(answers) == 1


def test_yannakakis_boolean_unsatisfiable():
    t = AnnotatedNode(Relation("T", ("c",), []))
    r = AnnotatedNode(Relation("R", ("b", "c"), [(1, 2)]), [t])
    answers = yannakakis(r, [])
    assert len(answers) == 0


def test_yannakakis_empty_branch_empties_answers():
    root = _chain_tree()
    root.children[0].children[0].relation = Relation("T", ("c", "d"), [])
    answers = yannakakis(root, ["a"])
    assert answers.is_empty()


def test_yannakakis_unknown_output_variable():
    with pytest.raises(QueryError):
        yannakakis(_chain_tree(), ["zzz"])


def test_yannakakis_duplicate_output_variables():
    answers = yannakakis(_chain_tree(), ["a", "a"])
    assert answers.schema == ("a",)


def test_single_node_tree():
    node = AnnotatedNode(Relation("R", ("x", "y"), [(1, 2)]))
    answers = yannakakis(node, ["y"])
    assert set(answers.tuples) == {(2,)}
