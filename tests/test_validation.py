"""Unit tests for the HD / GHD / extended-HD validators."""

from __future__ import annotations

import pytest

from repro.decomp.decomposition import DecompositionNode, HypertreeDecomposition
from repro.decomp.extended import Comp, FragmentNode, full_comp
from repro.decomp.validation import (
    check_width,
    is_valid_ghd,
    is_valid_hd,
    validate_extended_hd,
    validate_ghd,
    validate_hd,
)
from repro.exceptions import ValidationError
from repro.hypergraph import Hypergraph, generators


@pytest.fixture
def triangle_host() -> Hypergraph:
    return Hypergraph({"a": ["x", "y"], "b": ["y", "z"], "c": ["z", "x"]})


def _valid_triangle_hd(host: Hypergraph) -> HypertreeDecomposition:
    root = DecompositionNode(bag={"x", "y", "z"}, cover={"a", "b"})
    root.add_child(DecompositionNode(bag={"z", "x"}, cover={"c"}))
    return HypertreeDecomposition(host, root)


def test_valid_hd_passes(triangle_host):
    hd = _valid_triangle_hd(triangle_host)
    validate_hd(hd)
    validate_ghd(hd)
    assert is_valid_hd(hd)
    assert is_valid_ghd(hd)


def test_missing_edge_coverage_detected(triangle_host):
    root = DecompositionNode(bag={"x", "y"}, cover={"a"})
    hd = HypertreeDecomposition(triangle_host, root)
    with pytest.raises(ValidationError, match="condition 1"):
        validate_ghd(hd)
    assert not is_valid_ghd(hd)


def test_connectedness_violation_detected(triangle_host):
    # x appears at the root and at a grandchild but not at the child in between.
    root = DecompositionNode(bag={"x", "y"}, cover={"a"})
    middle = root.add_child(DecompositionNode(bag={"y", "z"}, cover={"b"}))
    middle.add_child(DecompositionNode(bag={"z", "x"}, cover={"c"}))
    hd = HypertreeDecomposition(triangle_host, root)
    with pytest.raises(ValidationError, match="condition 2"):
        validate_ghd(hd)


def test_bag_not_covered_by_lambda_detected(triangle_host):
    root = DecompositionNode(bag={"x", "y", "z"}, cover={"a"})
    root.add_child(DecompositionNode(bag={"z", "x"}, cover={"c"}))
    root.add_child(DecompositionNode(bag={"y", "z"}, cover={"b"}))
    hd = HypertreeDecomposition(triangle_host, root)
    with pytest.raises(ValidationError, match="condition 3"):
        validate_ghd(hd)


def test_special_condition_violation_detected(triangle_host):
    # Root covers edge a but its bag omits y although y occurs below: the
    # GHD conditions hold, the HD special condition does not.
    root = DecompositionNode(bag={"x"}, cover={"a"})
    child = root.add_child(DecompositionNode(bag={"x", "y", "z"}, cover={"b", "c"}))
    child.add_child(DecompositionNode(bag={"x", "y"}, cover={"a"}))
    hd = HypertreeDecomposition(triangle_host, root)
    validate_ghd(hd)
    with pytest.raises(ValidationError, match="special condition"):
        validate_hd(hd)
    assert is_valid_ghd(hd)
    assert not is_valid_hd(hd)


def test_check_width(triangle_host):
    hd = _valid_triangle_hd(triangle_host)
    check_width(hd, 2)
    with pytest.raises(ValidationError):
        check_width(hd, 1)


def test_ghd_width_can_be_below_hw_only_with_subedges(triangle_host):
    # Sanity: a one-node "decomposition" whose bag is everything but whose
    # cover is a single edge is invalid.
    root = DecompositionNode(bag={"x", "y", "z"}, cover={"a"})
    hd = HypertreeDecomposition(triangle_host, root)
    with pytest.raises(ValidationError):
        validate_ghd(hd)


# --------------------------------------------------------------------------- #
# extended subhypergraph HDs (Definition 3.3)
# --------------------------------------------------------------------------- #
def test_validate_extended_hd_accepts_special_leaf():
    host = generators.cycle(4)
    special = host.vertices_to_mask(["x1", "x3"])
    comp = Comp(frozenset(), (special,))
    fragment = FragmentNode(chi=special, special=special)
    validate_extended_hd(host, comp, conn=0, fragment=fragment, k=2)


def test_validate_extended_hd_detects_missing_special():
    host = generators.cycle(4)
    special = host.vertices_to_mask(["x1", "x3"])
    comp = Comp(frozenset({0}), (special,))
    fragment = FragmentNode(chi=host.edge_bits(0), lam_edges=(0,))
    with pytest.raises(ValidationError, match="condition 2b"):
        validate_extended_hd(host, comp, conn=0, fragment=fragment)


def test_validate_extended_hd_detects_uncovered_edge():
    host = generators.cycle(4)
    comp = full_comp(host)
    fragment = FragmentNode(chi=host.edge_bits(0), lam_edges=(0,))
    with pytest.raises(ValidationError, match="condition 2a"):
        validate_extended_hd(host, comp, conn=0, fragment=fragment)


def test_validate_extended_hd_detects_conn_violation():
    host = generators.cycle(4)
    comp = Comp(frozenset({0}), ())
    fragment = FragmentNode(chi=host.edge_bits(0), lam_edges=(0,))
    conn = host.vertices_to_mask(["x3"])
    with pytest.raises(ValidationError, match="condition 6"):
        validate_extended_hd(host, comp, conn=conn, fragment=fragment)


def test_validate_extended_hd_detects_chi_not_covered():
    host = generators.cycle(4)
    comp = Comp(frozenset({0}), ())
    bad_chi = host.edge_bits(0) | host.vertices_to_mask(["x3"])
    fragment = FragmentNode(chi=bad_chi, lam_edges=(0,))
    with pytest.raises(ValidationError, match="condition 1a"):
        validate_extended_hd(host, comp, conn=0, fragment=fragment)


def test_validate_extended_hd_detects_special_leaf_with_children():
    host = generators.cycle(4)
    special = host.vertices_to_mask(["x1", "x2"])
    comp = Comp(frozenset({2}), (special,))
    leaf = FragmentNode(chi=special, special=special)
    # Edge 0 of the 4-cycle has exactly the special's vertices {x1, x2}, so the
    # appended child keeps connectedness intact and only condition 5 trips.
    leaf.children.append(FragmentNode(chi=host.edge_bits(0), lam_edges=(0,)))
    root = FragmentNode(chi=host.edge_bits(2), lam_edges=(2,), children=[leaf])
    with pytest.raises(ValidationError, match="condition 5"):
        validate_extended_hd(host, comp, conn=0, fragment=root)


def test_validate_extended_hd_width_check():
    host = generators.cycle(4)
    comp = Comp(frozenset({0, 1}), ())
    fragment = FragmentNode(
        chi=host.edge_bits(0) | host.edge_bits(1), lam_edges=(0, 1)
    )
    validate_extended_hd(host, comp, conn=0, fragment=fragment, k=2)
    with pytest.raises(ValidationError, match="width"):
        validate_extended_hd(host, comp, conn=0, fragment=fragment, k=1)


def test_validate_whole_hypergraph_as_extended(cycle6):
    from repro.core import LogKDecomposer

    result = LogKDecomposer().decompose(cycle6, 2)
    assert result.success

    def convert(node):
        lam = tuple(sorted(cycle6.edge_index(n) for n in node.cover))
        return FragmentNode(
            chi=cycle6.vertices_to_mask(node.bag),
            lam_edges=lam,
            children=[convert(c) for c in node.children],
        )

    fragment = convert(result.decomposition.root)
    validate_extended_hd(cycle6, full_comp(cycle6), conn=0, fragment=fragment, k=2)
