"""Unit tests for atom binding and the naive reference join."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.hypergraph.cq import Atom
from repro.query.database import Database
from repro.query.joins import atom_relation, join_all, naive_join_query
from repro.query.relation import Relation


@pytest.fixture
def db() -> Database:
    return Database(
        [
            Relation("r", ("a0", "a1"), [(1, 2), (2, 3), (5, 5)]),
            Relation("s", ("a0", "a1"), [(2, 7), (3, 8)]),
        ]
    )


def test_atom_relation_renames_schema(db):
    rel = atom_relation(db, Atom("r", ("x", "y")))
    assert rel.schema == ("x", "y")
    assert set(rel.tuples) == {(1, 2), (2, 3), (5, 5)}


def test_atom_relation_repeated_variable(db):
    rel = atom_relation(db, Atom("r", ("x", "x")))
    assert rel.schema == ("x",)
    assert set(rel.tuples) == {(5,)}


def test_atom_relation_arity_mismatch(db):
    with pytest.raises(QueryError):
        atom_relation(db, Atom("r", ("x", "y", "z")))


def test_join_all(db):
    rels = [
        atom_relation(db, Atom("r", ("x", "y"))),
        atom_relation(db, Atom("s", ("y", "z"))),
    ]
    joined = join_all(rels)
    assert set(joined.schema) == {"x", "y", "z"}
    assert len(joined) == 2


def test_join_all_empty_sequence():
    with pytest.raises(QueryError):
        join_all([])


def test_naive_join_query_projection(db):
    atoms = [Atom("r", ("x", "y")), Atom("s", ("y", "z"))]
    answers = naive_join_query(db, atoms, ["x", "z"])
    assert set(answers.schema) == {"x", "z"}
    assert len(answers) == 2


def test_naive_join_query_boolean(db):
    atoms = [Atom("r", ("x", "y")), Atom("s", ("y", "z"))]
    result = naive_join_query(db, atoms, [])
    assert result.schema == ()
    assert len(result) == 1  # satisfiable

    unsat_atoms = [Atom("r", ("x", "x")), Atom("s", ("x", "y"))]
    result = naive_join_query(db, unsat_atoms, [])
    assert len(result) == 0
