"""Unit tests for HD-guided CSP solving."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.hypergraph.cq import CSPInstance
from repro.query.csp import DecompositionCSPSolver, backtracking_solve, csp_to_query


def _cyclic_csp(satisfiable: bool = True) -> CSPInstance:
    triples = ((0, 1), (1, 2), (2, 0))
    last = triples if satisfiable else ((0, 0),)
    return CSPInstance(
        constraints=(
            ("c1", ("x", "y"), triples),
            ("c2", ("y", "z"), triples),
            ("c3", ("z", "x"), last),
        ),
        name="cyclic",
    )


def test_csp_to_query_structure():
    csp = _cyclic_csp()
    query, database = csp_to_query(csp)
    assert len(query.atoms) == 3
    assert set(query.free_variables) == {"x", "y", "z"}
    assert len(database) == 3


def test_csp_to_query_requires_constraints():
    with pytest.raises(QueryError):
        csp_to_query(CSPInstance())


def test_satisfiable_instance():
    solution = DecompositionCSPSolver().solve(_cyclic_csp(True))
    assert solution.satisfiable
    assert solution.assignment is not None
    assert solution.num_solutions_found == 3
    assert solution.width == 2
    # The witness must satisfy every constraint.
    assignment = solution.assignment
    for _, scope, tuples in _cyclic_csp(True).constraints:
        assert tuple(assignment[v] for v in scope) in tuples


def test_unsatisfiable_instance():
    solution = DecompositionCSPSolver().solve(_cyclic_csp(False))
    assert not solution.satisfiable
    assert solution.assignment is None
    assert solution.num_solutions_found == 0


def test_agreement_with_backtracking():
    for satisfiable in (True, False):
        csp = _cyclic_csp(satisfiable)
        hd_solution = DecompositionCSPSolver().solve(csp)
        bt_solution = backtracking_solve(csp)
        assert hd_solution.satisfiable == (bt_solution is not None)


def test_backtracking_requires_constraints():
    with pytest.raises(QueryError):
        backtracking_solve(CSPInstance())


def test_backtracking_respects_domains():
    csp = CSPInstance(
        domains={"x": (0, 1), "y": (1,)},
        constraints=(("c", ("x", "y"), ((0, 1), (5, 5))),),
    )
    solution = backtracking_solve(csp)
    assert solution == {"x": 0, "y": 1}


def test_acyclic_csp_uses_width_one():
    csp = CSPInstance(
        constraints=(
            ("c1", ("a", "b"), ((1, 2), (2, 3))),
            ("c2", ("b", "c"), ((2, 5), (3, 6))),
        ),
        name="chain",
    )
    solution = DecompositionCSPSolver().solve(csp)
    assert solution.satisfiable
    assert solution.width == 1
    assert solution.num_solutions_found == 2
