"""Unit tests for the HyperBench-like corpus."""

from __future__ import annotations

import pytest

from repro.bench.corpus import (
    SIZE_GROUPS,
    corpus_summary,
    generate_corpus,
    hb_large,
    size_group,
)
from repro.exceptions import QueryError, SolverError
from repro.hypergraph.cq import Atom, ConjunctiveQuery
from repro.query import QueryEngine, random_database_for_query


def test_size_groups():
    assert size_group(5) == "|E| <= 10"
    assert size_group(10) == "|E| <= 10"
    assert size_group(11) == "10 < |E| <= 50"
    assert size_group(50) == "10 < |E| <= 50"
    assert size_group(60) == "50 < |E| <= 75"
    assert size_group(80) == "75 < |E| <= 100"
    assert size_group(101) == "|E| > 100"
    assert set(SIZE_GROUPS) == {
        "|E| <= 10",
        "10 < |E| <= 50",
        "50 < |E| <= 75",
        "75 < |E| <= 100",
        "|E| > 100",
    }


def test_generate_corpus_is_deterministic():
    a = generate_corpus("tiny", seed=1)
    b = generate_corpus("tiny", seed=1)
    assert [i.name for i in a] == [i.name for i in b]
    assert all(x.hypergraph == y.hypergraph for x, y in zip(a, b))


def test_generate_corpus_unknown_scale():
    with pytest.raises(SolverError):
        generate_corpus("gigantic")


@pytest.mark.parametrize("scale", ["tiny", "small"])
def test_corpus_covers_both_origins_and_many_groups(scale):
    instances = generate_corpus(scale)
    origins = {i.origin for i in instances}
    assert origins == {"Application", "Synthetic"}
    groups = {i.group for i in instances}
    assert "|E| <= 10" in groups
    assert any(g.startswith("50 <") for g in groups)
    # The |E| > 100 group only occurs for synthetic instances, as in the paper.
    for instance in instances:
        if instance.group == "|E| > 100":
            assert instance.origin == "Synthetic"


def test_corpus_names_are_unique():
    instances = generate_corpus("small")
    names = [i.name for i in instances]
    assert len(names) == len(set(names))


def test_instance_properties():
    instance = generate_corpus("tiny")[0]
    assert instance.num_edges == instance.hypergraph.num_edges
    assert instance.num_vertices == instance.hypergraph.num_vertices
    assert instance.group == size_group(instance.num_edges)


def test_corpus_summary_counts_everything():
    instances = generate_corpus("tiny")
    summary = corpus_summary(instances)
    assert sum(summary.values()) == len(instances)


def test_hb_large_filter():
    instances = generate_corpus("tiny")
    large = hb_large(instances, min_edges=20)
    assert all(i.num_edges > 20 for i in large)
    assert len(large) < len(instances)


def test_medium_scale_is_larger_than_small():
    assert len(generate_corpus("medium")) > len(generate_corpus("small")) > len(
        generate_corpus("tiny")
    )


# --------------------------------------------------------------------------- #
# cross-executor mode agreement on the corpus (the SQL arm)
# --------------------------------------------------------------------------- #
def _corpus_query(instance) -> ConjunctiveQuery:
    """The corpus instance read as a conjunctive query (one atom per edge)."""
    atoms = tuple(
        Atom(name, tuple(sorted(vertices)))
        for name, vertices in sorted(instance.hypergraph.edges_as_dict().items())
    )
    variables = sorted({v for atom in atoms for v in atom.arguments})
    return ConjunctiveQuery(atoms, tuple(variables[:2]), name=instance.name)


@pytest.fixture(scope="module")
def corpus_sql_engine():
    return QueryEngine(algorithm="hybrid", max_width=10, timeout=18)


@pytest.mark.parametrize(
    "instance", generate_corpus("tiny"), ids=lambda instance: instance.name
)
def test_corpus_sql_answer_modes_agree(instance, corpus_sql_engine):
    # For every corpus instance the SQL arm's three answer modes must tell
    # one story: boolean == (len(enumerate) > 0) and count == len(enumerate).
    query = _corpus_query(instance)
    database = random_database_for_query(
        query, domain_size=3, tuples_per_relation=6, seed=instance.num_edges
    )
    try:
        enum = corpus_sql_engine.execute(query, database, "enumerate", executor="sql")
    except QueryError as error:
        # A few dense synthetic instances exceed the width/time budget.  The
        # refusal happens in the decomposition layer, *before* the executor
        # choice, so the arms must still agree — on the refusal itself.
        assert "no hypertree decomposition" in str(error)
        with pytest.raises(QueryError, match="no hypertree decomposition"):
            corpus_sql_engine.execute(query, database, "boolean", executor="columnar")
        return
    boolean = corpus_sql_engine.execute(query, database, "boolean", executor="sql")
    count = corpus_sql_engine.execute(query, database, "count", executor="sql")
    assert boolean.boolean == (len(enum.answers) > 0)
    assert count.count == len(enum.answers)
