"""Unit tests for the HyperBench-like corpus."""

from __future__ import annotations

import pytest

from repro.bench.corpus import (
    SIZE_GROUPS,
    corpus_summary,
    generate_corpus,
    hb_large,
    size_group,
)
from repro.exceptions import SolverError


def test_size_groups():
    assert size_group(5) == "|E| <= 10"
    assert size_group(10) == "|E| <= 10"
    assert size_group(11) == "10 < |E| <= 50"
    assert size_group(50) == "10 < |E| <= 50"
    assert size_group(60) == "50 < |E| <= 75"
    assert size_group(80) == "75 < |E| <= 100"
    assert size_group(101) == "|E| > 100"
    assert set(SIZE_GROUPS) == {
        "|E| <= 10",
        "10 < |E| <= 50",
        "50 < |E| <= 75",
        "75 < |E| <= 100",
        "|E| > 100",
    }


def test_generate_corpus_is_deterministic():
    a = generate_corpus("tiny", seed=1)
    b = generate_corpus("tiny", seed=1)
    assert [i.name for i in a] == [i.name for i in b]
    assert all(x.hypergraph == y.hypergraph for x, y in zip(a, b))


def test_generate_corpus_unknown_scale():
    with pytest.raises(SolverError):
        generate_corpus("gigantic")


@pytest.mark.parametrize("scale", ["tiny", "small"])
def test_corpus_covers_both_origins_and_many_groups(scale):
    instances = generate_corpus(scale)
    origins = {i.origin for i in instances}
    assert origins == {"Application", "Synthetic"}
    groups = {i.group for i in instances}
    assert "|E| <= 10" in groups
    assert any(g.startswith("50 <") for g in groups)
    # The |E| > 100 group only occurs for synthetic instances, as in the paper.
    for instance in instances:
        if instance.group == "|E| > 100":
            assert instance.origin == "Synthetic"


def test_corpus_names_are_unique():
    instances = generate_corpus("small")
    names = [i.name for i in instances]
    assert len(names) == len(set(names))


def test_instance_properties():
    instance = generate_corpus("tiny")[0]
    assert instance.num_edges == instance.hypergraph.num_edges
    assert instance.num_vertices == instance.hypergraph.num_vertices
    assert instance.group == size_group(instance.num_edges)


def test_corpus_summary_counts_everything():
    instances = generate_corpus("tiny")
    summary = corpus_summary(instances)
    assert sum(summary.values()) == len(instances)


def test_hb_large_filter():
    instances = generate_corpus("tiny")
    large = hb_large(instances, min_edges=20)
    assert all(i.num_edges > 20 for i in large)
    assert len(large) < len(instances)


def test_medium_scale_is_larger_than_small():
    assert len(generate_corpus("medium")) > len(generate_corpus("small")) > len(
        generate_corpus("tiny")
    )
