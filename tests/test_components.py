"""Unit tests for [U]-components of extended subhypergraphs (Definition 3.2)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.decomp.components import components, covered_items, separate
from repro.decomp.extended import Comp, full_comp
from repro.hypergraph import Hypergraph, generators


def _host() -> Hypergraph:
    return Hypergraph(
        {
            "a": ["1", "2"],
            "b": ["2", "3"],
            "c": ["3", "4"],
            "d": ["4", "5"],
            "e": ["5", "6"],
            "f": ["6", "1"],
        },
        name="hexagon",
    )


def test_empty_separator_yields_one_component():
    host = _host()
    comps = components(host, full_comp(host), 0)
    assert len(comps) == 1
    assert comps[0].edges == frozenset(range(6))


def test_separator_splits_cycle():
    host = _host()
    # Removing the vertices of edges a and d cuts the hexagon in two paths.
    separator = host.edge_bits(0) | host.edge_bits(3)
    comps = components(host, full_comp(host), separator)
    assert len(comps) == 2
    sizes = sorted(c.size for c in comps)
    assert sizes == [2, 2]


def test_covered_edges_do_not_appear_in_components():
    host = _host()
    separator = host.vertices_to_mask(["1", "2", "3"])
    comps, covered = separate(host, full_comp(host), separator)
    covered_names = {host.edge_name(i) for i in covered.edges}
    assert covered_names == {"a", "b"}
    for comp in comps:
        assert not (comp.edges & covered.edges)


def test_special_edges_participate_in_components():
    host = _host()
    special = host.vertices_to_mask(["3", "6"])
    comp = Comp(frozenset({1, 2}), (special,))  # edges b, c plus a special
    separator = host.vertices_to_mask(["3"])
    comps = components(host, comp, separator)
    # b = {2,3} has residue {2}; c = {3,4} residue {4}; special residue {6}:
    # no two items share a vertex outside the separator, so three components.
    assert len(comps) == 3
    assert sum(1 for c in comps if c.specials) == 1


def test_special_edge_covered_by_separator():
    host = _host()
    special = host.vertices_to_mask(["3", "6"])
    comp = Comp(frozenset(), (special,))
    comps = components(host, comp, host.vertices_to_mask(["3", "6"]))
    assert comps == []
    covered = covered_items(host, comp, host.vertices_to_mask(["3", "6"]))
    assert covered.specials == (special,)


def test_components_partition_items():
    host = generators.grid(3, 3)
    comp = full_comp(host)
    separator = host.vertices_to_mask(["v1_1"])
    comps = components(host, comp, separator)
    covered = covered_items(host, comp, separator)
    all_edges: set[int] = set(covered.edges)
    for c in comps:
        assert not (all_edges & c.edges)
        all_edges |= c.edges
    assert all_edges == comp.edges


def test_components_are_connected_internally():
    host = generators.cycle(8)
    separator = host.edge_bits(0) | host.edge_bits(4)
    comps = components(host, full_comp(host), separator)
    for comp in comps:
        # Within each component, every edge is reachable from every other via
        # shared vertices outside the separator.
        edges = sorted(comp.edges)
        reached = {edges[0]}
        frontier = [edges[0]]
        while frontier:
            current = frontier.pop()
            for other in edges:
                if other in reached:
                    continue
                shared = host.edge_bits(current) & host.edge_bits(other) & ~separator
                if shared:
                    reached.add(other)
                    frontier.append(other)
        assert reached == set(edges)


def test_deterministic_order():
    host = generators.cycle(9)
    separator = host.edge_bits(2) | host.edge_bits(6)
    first = components(host, full_comp(host), separator)
    second = components(host, full_comp(host), separator)
    assert [c.edges for c in first] == [c.edges for c in second]


@given(st.integers(min_value=3, max_value=10), st.integers(min_value=0, max_value=9))
def test_random_separator_partitions_cycle(length, edge_index):
    host = generators.cycle(length)
    edge_index %= length
    separator = host.edge_bits(edge_index)
    comps = components(host, full_comp(host), separator)
    covered = covered_items(host, full_comp(host), separator)
    total = sum(c.size for c in comps) + covered.size
    assert total == length
    # No component may contain a covered edge.
    for comp in comps:
        assert not (comp.edges & covered.edges)
