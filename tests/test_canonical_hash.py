"""Unit tests for Hypergraph.canonical_hash (engine cache keys)."""

from __future__ import annotations

from repro.hypergraph import Hypergraph, generators, read_hypergraph, write_hypergraph


def test_insensitive_to_edge_order():
    a = Hypergraph({"r": ["x", "y"], "s": ["y", "z"]})
    b = Hypergraph({"s": ["y", "z"], "r": ["x", "y"]})
    assert a.canonical_hash() == b.canonical_hash()


def test_insensitive_to_vertex_order_within_edges():
    a = Hypergraph({"r": ["x", "y", "z"]})
    b = Hypergraph({"r": ["z", "x", "y"]})
    assert a.canonical_hash() == b.canonical_hash()


def test_insensitive_to_instance_name():
    a = Hypergraph({"r": ["x", "y"]}, name="first")
    assert a.canonical_hash() == a.rename("second").canonical_hash()


def test_sensitive_to_edge_names():
    a = Hypergraph({"r": ["x", "y"]})
    b = Hypergraph({"q": ["x", "y"]})
    assert a.canonical_hash() != b.canonical_hash()


def test_sensitive_to_vertex_sets():
    a = Hypergraph({"r": ["x", "y"]})
    b = Hypergraph({"r": ["x", "z"]})
    assert a.canonical_hash() != b.canonical_hash()


def test_no_collision_from_separator_characters():
    # Structure characters inside names must not let distinct graphs collide.
    a = Hypergraph({"e(": ["x"]})
    b = Hypergraph({"e": ["(x"]})
    assert a.canonical_hash() != b.canonical_hash()


def test_distinct_small_graphs_hash_distinctly():
    graphs = [
        generators.cycle(4),
        generators.cycle(5),
        generators.path(4),
        generators.star(4),
        generators.grid(2, 3),
        generators.clique(4),
    ]
    hashes = {g.canonical_hash() for g in graphs}
    assert len(hashes) == len(graphs)


def test_memoised_and_stable():
    h = generators.cycle(6)
    assert h.canonical_hash() == h.canonical_hash()
    rebuilt = Hypergraph(h.edges_as_dict(), name=h.name)
    assert rebuilt.canonical_hash() == h.canonical_hash()


def test_round_trip_through_io(tmp_path):
    h = generators.with_chords(generators.cycle(9), 2, seed=1)
    path = tmp_path / "instance.hg"
    write_hypergraph(h, path)
    again = read_hypergraph(path)
    assert again.canonical_hash() == h.canonical_hash()
