"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph, generators


@pytest.fixture
def triangle() -> Hypergraph:
    """The triangle hypergraph (three binary edges, hw = 2)."""
    return generators.cycle(3)


@pytest.fixture
def cycle6() -> Hypergraph:
    """A 6-cycle of binary edges (hw = 2)."""
    return generators.cycle(6)


@pytest.fixture
def cycle10() -> Hypergraph:
    """A 10-cycle of binary edges (hw = 2); the paper's Appendix B example."""
    return generators.cycle(10)


@pytest.fixture
def path5() -> Hypergraph:
    """A path of 5 binary edges (acyclic, hw = 1)."""
    return generators.path(5)


@pytest.fixture
def grid23() -> Hypergraph:
    """A 2x3 grid (hw = 2)."""
    return generators.grid(2, 3)


@pytest.fixture
def clique5() -> Hypergraph:
    """The clique K5 as binary edges (hw = 3)."""
    return generators.clique(5)


@pytest.fixture
def simple_hypergraph() -> Hypergraph:
    """A tiny named hypergraph used by structural tests."""
    return Hypergraph(
        {
            "r": ["x", "y"],
            "s": ["y", "z", "w"],
            "t": ["w", "x"],
        },
        name="simple",
    )


#: Algorithm names exercised by the cross-cutting correctness tests.
HD_ALGORITHMS = ["logk", "logk-basic", "detk", "hybrid"]


@pytest.fixture(params=HD_ALGORITHMS)
def hd_algorithm(request) -> str:
    """Parametrised fixture iterating over all exact HD algorithms."""
    return request.param
