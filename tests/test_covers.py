"""Unit tests for λ-label enumeration (CoverEnumerator)."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.decomp.covers import CoverEnumerator, count_labels, label_union
from repro.hypergraph import Hypergraph, generators


@pytest.fixture
def host() -> Hypergraph:
    return generators.cycle(5)


def test_rejects_bad_width(host):
    with pytest.raises(ValueError):
        CoverEnumerator(host, 0)


def test_enumerates_all_labels_up_to_k(host):
    enumerator = CoverEnumerator(host, 2)
    labels = list(enumerator.labels())
    expected = {(i,) for i in range(5)} | set(combinations(range(5), 2))
    assert set(labels) == expected
    assert len(labels) == len(expected)


def test_labels_are_sorted_and_deterministic(host):
    enumerator = CoverEnumerator(host, 2)
    labels = list(enumerator.labels())
    assert labels == list(CoverEnumerator(host, 2).labels())
    assert all(tuple(sorted(label)) == label for label in labels)
    # Size-1 labels come before size-2 labels.
    sizes = [len(label) for label in labels]
    assert sizes == sorted(sizes)


def test_allowed_restriction(host):
    enumerator = CoverEnumerator(host, 2)
    labels = list(enumerator.labels(allowed=[1, 3]))
    assert set(labels) == {(1,), (3,), (1, 3)}


def test_require_from_restriction(host):
    enumerator = CoverEnumerator(host, 2)
    labels = list(enumerator.labels(require_from=frozenset({4})))
    assert all(4 in label for label in labels) is False or labels  # non-empty
    assert all(any(e == 4 for e in label) for label in labels)


def test_require_from_disjoint_pool_yields_nothing(host):
    enumerator = CoverEnumerator(host, 2)
    assert list(enumerator.labels(allowed=[0, 1], require_from=frozenset({4}))) == []


def test_overlap_with_restriction(host):
    enumerator = CoverEnumerator(host, 1)
    overlap = host.edge_bits(0)  # vertices x1, x2
    labels = list(enumerator.labels(overlap_with=overlap))
    # Only edges sharing x1 or x2 qualify: R1 itself, R2 (x2,x3), R5 (x5,x1).
    names = {host.edge_name(label[0]) for label in labels}
    assert names == {"R1", "R2", "R5"}


def test_cover_requirement(host):
    enumerator = CoverEnumerator(host, 2)
    conn = host.vertices_to_mask(["x1", "x3"])
    labels = list(enumerator.labels(cover=conn))
    assert labels
    for label in labels:
        assert conn & ~label_union(host, label) == 0


def test_cover_requirement_impossible():
    host = Hypergraph({"a": ["x", "y"], "b": ["y", "z"]})
    enumerator = CoverEnumerator(host, 1)
    # No single edge covers {x, z}.
    conn = host.vertices_to_mask(["x", "z"])
    assert list(enumerator.labels(cover=conn)) == []


def test_max_size_override(host):
    enumerator = CoverEnumerator(host, 3)
    labels = list(enumerator.labels(max_size=1))
    assert all(len(label) == 1 for label in labels)


def test_labels_with_union(host):
    enumerator = CoverEnumerator(host, 1)
    for label, union in enumerator.labels_with_union():
        assert union == label_union(host, label)


def test_partition_covers_pool(host):
    enumerator = CoverEnumerator(host, 2)
    parts = enumerator.partition_first_edges(None, 3)
    assert sorted(e for part in parts for e in part) == list(range(5))
    # Union of per-partition label streams equals the unpartitioned stream.
    union: set[tuple[int, ...]] = set()
    for part in parts:
        union |= set(enumerator.labels_for_partition(None, part))
    assert union == set(enumerator.labels())


def test_partition_single_worker(host):
    enumerator = CoverEnumerator(host, 2)
    parts = enumerator.partition_first_edges(None, 1)
    assert len(parts) == 1
    assert set(enumerator.labels_for_partition(None, parts[0])) == set(enumerator.labels())


def test_count_labels_matches_enumeration(host):
    enumerator = CoverEnumerator(host, 2)
    assert count_labels(5, 2) == len(list(enumerator.labels()))
    assert count_labels(5, 1) == 5


def test_label_union(host):
    assert label_union(host, ()) == 0
    assert label_union(host, (0,)) == host.edge_bits(0)
    assert label_union(host, (0, 2)) == host.edge_bits(0) | host.edge_bits(2)
