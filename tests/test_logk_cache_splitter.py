"""Additional tests: the log-k subproblem cache and the ComponentSplitter."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import LogKDecomposer
from repro.decomp import validate_hd
from repro.decomp.components import ComponentSplitter, components
from repro.decomp.extended import Comp, full_comp
from repro.hypergraph import Hypergraph, generators


# --------------------------------------------------------------------------- #
# ComponentSplitter
# --------------------------------------------------------------------------- #
def test_splitter_matches_module_function():
    host = generators.with_chords(generators.cycle(12), 3, seed=4)
    comp = full_comp(host)
    splitter = ComponentSplitter(host, comp)
    for index in range(host.num_edges):
        separator = host.edge_bits(index) | host.edge_bits((index + 5) % host.num_edges)
        expected = components(host, comp, separator)
        assert splitter.split(separator) == expected
        expected_largest = max((c.size for c in expected), default=0)
        assert splitter.largest_size(separator) == expected_largest


def test_splitter_with_specials():
    host = generators.cycle(8)
    special = host.vertices_to_mask(["x1", "x4"])
    comp = Comp(frozenset({1, 2, 5, 6}), (special,))
    splitter = ComponentSplitter(host, comp)
    separator = host.vertices_to_mask(["x4"])
    parts = splitter.split(separator)
    assert sum(part.size for part in parts) == comp.size
    assert splitter.largest_size(separator) == max(part.size for part in parts)


def test_splitter_everything_covered():
    host = generators.cycle(4)
    comp = full_comp(host)
    splitter = ComponentSplitter(host, comp)
    assert splitter.largest_size(host.all_vertices_mask) == 0
    assert splitter.split(host.all_vertices_mask) == []


_vertices = st.sampled_from([f"v{i}" for i in range(7)])
_hypergraphs = st.lists(
    st.frozensets(_vertices, min_size=1, max_size=3), min_size=1, max_size=6
).map(lambda edges: Hypergraph({f"e{i}": sorted(vs) for i, vs in enumerate(edges)}))


@given(_hypergraphs, st.sets(st.integers(0, 6), max_size=3))
@settings(max_examples=50)
def test_splitter_largest_size_matches_split(hypergraph, vertex_ids):
    separator = 0
    for vid in vertex_ids:
        if vid < hypergraph.num_vertices:
            separator |= 1 << vid
    splitter = ComponentSplitter(hypergraph, full_comp(hypergraph))
    parts = splitter.split(separator)
    assert splitter.largest_size(separator) == max((p.size for p in parts), default=0)


# --------------------------------------------------------------------------- #
# log-k subproblem cache
# --------------------------------------------------------------------------- #
def test_cache_does_not_change_answers():
    cases = [
        (generators.with_chords(generators.cycle(10), 2, seed=1), 2),
        (generators.grid(2, 4), 2),
        (generators.clique(5), 2),
        (generators.clique(5), 3),
    ]
    for hypergraph, k in cases:
        cached = LogKDecomposer().decompose(hypergraph, k)
        # Disabling the cache is done through the search class options; the
        # decomposer always enables it, so compare against the basic recipe of
        # building a fresh search with use_cache=False.
        from repro.core.base import SearchContext
        from repro.core.fragments import fragment_to_decomposition
        from repro.core.logk import LogKSearch

        context = SearchContext(hypergraph, k)
        uncached_fragment = LogKSearch(context, use_cache=False).search(
            full_comp(hypergraph), conn=0, allowed=frozenset(range(hypergraph.num_edges))
        )
        assert cached.success == (uncached_fragment is not None)
        if cached.success:
            validate_hd(cached.decomposition)
            validate_hd(fragment_to_decomposition(hypergraph, uncached_fragment))


def test_cache_hits_are_recorded_on_repetitive_instances():
    # A negative instance whose refutation revisits the same subcomponents
    # through many different (λp, λc) pairs.
    hypergraph = generators.with_chords(generators.cycle(30), 4, seed=2)
    result = LogKDecomposer().decompose(hypergraph, 2)
    assert not result.success
    stats = result.statistics
    assert stats.cache_misses > 0
    # The same subcomponents are reached via many (λp, λc) pairs, so at least
    # some reuse must happen on an instance of this size.
    assert stats.cache_hits > 0
