"""Differential tests for the branch-and-bound label enumerator.

The optimised :meth:`CoverEnumerator.labels` must emit the *byte-identical*
label sequence as the retained reference implementation
(:meth:`CoverEnumerator.labels_reference`) for every combination of
``(allowed, require_from, overlap_with, cover, k, max_size)`` — the pruning
may only skip branches that contain no emitted label.  A randomized corpus of
settings over random hypergraphs checks exactly that, plus the direct
partition-restricted generation and the width-safety invariant of subedge
domination.
"""

from __future__ import annotations

import random

from repro.core.base import SearchStatistics
from repro.decomp.covers import CoverEnumerator, label_union
from repro.hypergraph import Hypergraph, generators


def _random_host(rng: random.Random, trial: int) -> Hypergraph:
    kind = trial % 3
    if kind == 0:
        return generators.random_csp(
            rng.randint(4, 9), rng.randint(3, 9), arity=rng.choice([2, 3]), seed=trial
        )
    if kind == 1:
        return generators.cycle(rng.randint(3, 10))
    return generators.with_chords(
        generators.cycle(rng.randint(5, 10)), rng.randint(1, 3), seed=trial
    )


def _random_settings(rng: random.Random, host: Hypergraph, k: int) -> dict:
    m = host.num_edges
    allowed = None if rng.random() < 0.4 else sorted(rng.sample(range(m), rng.randint(1, m)))
    require = None if rng.random() < 0.5 else frozenset(rng.sample(range(m), rng.randint(0, m)))
    overlap = None
    if rng.random() < 0.5:
        overlap = 0
        for edge in rng.sample(range(m), rng.randint(1, max(1, m // 2))):
            overlap |= host.edge_bits(edge)
    cover = None
    if rng.random() < 0.5:
        cover = 0
        for edge in rng.sample(range(m), rng.randint(1, 2)):
            cover |= host.edge_bits(edge)
    max_size = None if rng.random() < 0.7 else rng.randint(1, k)
    return {
        "allowed": allowed,
        "require_from": require,
        "overlap_with": overlap,
        "cover": cover,
        "max_size": max_size,
    }


def test_label_sequence_matches_reference_across_random_corpus():
    rng = random.Random(20260726)
    for trial in range(150):
        host = _random_host(rng, trial)
        k = rng.randint(1, 4)
        enumerator = CoverEnumerator(host, k)
        settings = _random_settings(rng, host, k)
        new = list(enumerator.labels(**settings))
        old = list(enumerator.labels_reference(**settings))
        assert new == old, (trial, host, k, settings)


def test_partition_generation_matches_reference_filter():
    rng = random.Random(42)
    for trial in range(60):
        host = _random_host(rng, trial)
        k = rng.randint(1, 3)
        enumerator = CoverEnumerator(host, k)
        m = host.num_edges
        allowed = None if rng.random() < 0.5 else sorted(rng.sample(range(m), rng.randint(1, m)))
        require = None if rng.random() < 0.5 else frozenset(rng.sample(range(m), rng.randint(1, m)))
        parts = enumerator.partition_first_edges(allowed, rng.randint(1, 4))
        reference = [
            label
            for label in enumerator.labels_reference(allowed=allowed, require_from=require)
        ]
        streams = [
            list(enumerator.labels_for_partition(allowed, part, require_from=require))
            for part in parts
        ]
        # Each stream must be a subsequence of the reference order and the
        # streams together must partition the full label space.
        for part, stream in zip(parts, streams):
            firsts = set(part)
            assert stream == [label for label in reference if label[0] in firsts]
        merged = sorted(label for stream in streams for label in stream)
        assert merged == sorted(reference)


def test_domination_only_removes_replaceable_labels():
    # Width-safety invariant: for every label the full enumeration emits but
    # the dominated enumeration skips, there must be an emitted label of at
    # most the same size whose component-restricted union is a superset and
    # which still satisfies the progress rule.
    rng = random.Random(7)
    for trial in range(40):
        host = _random_host(rng, trial)
        k = rng.randint(1, 3)
        enumerator = CoverEnumerator(host, k)
        m = host.num_edges
        comp_edges = frozenset(rng.sample(range(m), rng.randint(2, m)))
        comp_vertices = 0
        for edge in comp_edges:
            comp_vertices |= host.edge_bits(edge)
        require = comp_edges if rng.random() < 0.7 else None
        full = list(enumerator.labels(require_from=require))
        dominated = list(
            enumerator.labels(require_from=require, component_vertices=comp_vertices)
        )
        kept = set(dominated)
        assert kept <= set(full)
        by_size: dict[int, list[tuple[tuple[int, ...], int]]] = {}
        for label in dominated:
            by_size.setdefault(len(label), []).append(
                (label, label_union(host, label) & comp_vertices)
            )
        for label in full:
            if label in kept:
                continue
            restricted = label_union(host, label) & comp_vertices
            replacement = any(
                restricted & ~candidate_union == 0
                for size in range(1, len(label) + 1)
                for _, candidate_union in by_size.get(size, [])
            )
            assert replacement, (trial, label)


def test_domination_skips_are_counted():
    # Two copies of the same edge: one must be dominated away.
    host = Hypergraph({"a": ["x", "y"], "b": ["x", "y"], "c": ["y", "z"]})
    enumerator = CoverEnumerator(host, 2)
    stats = SearchStatistics()
    enumerator.stats = stats
    labels = list(enumerator.labels(component_vertices=host.all_vertices_mask))
    assert stats.enum_domination_skips >= 1
    flattened = {edge for label in labels for edge in label}
    assert 0 in flattened and 1 not in flattened  # smallest index survives


def test_domination_never_drops_the_progress_witness():
    # Edge 1 dominates edge 0 within the component, but only edge 0 is a
    # "new" edge: the progress rule forbids dropping it.
    host = Hypergraph({"small": ["x", "y"], "big": ["x", "y", "z"]})
    enumerator = CoverEnumerator(host, 1)
    labels = list(
        enumerator.labels(
            require_from=frozenset({0}),
            component_vertices=host.all_vertices_mask,
        )
    )
    assert (0,) in labels


def test_pruning_off_restores_reference_behaviour():
    host = generators.cycle(6)
    enumerator = CoverEnumerator(host, 2)
    enumerator.pruning = False
    # Domination is ignored without pruning (the reference path measures the
    # pre-optimisation behaviour), and the sequence equals the reference.
    assert list(enumerator.labels(component_vertices=host.all_vertices_mask)) == list(
        enumerator.labels_reference()
    )
    parts = enumerator.partition_first_edges(None, 2)
    merged = sorted(
        label for part in parts for label in enumerator.labels_for_partition(None, part)
    )
    assert merged == sorted(enumerator.labels_reference())


class _CountingHost:
    """Hypergraph proxy counting ``edge_bits`` calls (hot-path regression guard)."""

    def __init__(self, host: Hypergraph) -> None:
        self._host = host
        self.edge_bits_calls = 0

    def __getattr__(self, name):
        return getattr(self._host, name)

    def edge_bits(self, index: int) -> int:
        self.edge_bits_calls += 1
        return self._host.edge_bits(index)


def test_no_constraint_path_does_no_per_label_recomputation():
    # The no-constraint enumeration must touch edge bitmasks only while
    # preparing the pool — O(pool) calls — never per emitted label; with
    # ~500 labels over 12 edges any per-label recomputation would show.
    host = generators.cycle(12)
    counting = _CountingHost(host)
    enumerator = CoverEnumerator(counting, 3)
    labels = list(enumerator.labels())
    assert len(labels) == 12 + 66 + 220
    assert counting.edge_bits_calls <= host.num_edges
