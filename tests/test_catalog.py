"""Tests for the durable decomposition catalog (the SQLite L2 tier).

Covers the acceptance criteria of the catalog subsystem: restart-warm
serving with zero recomputation, validate-on-load rejecting tampered rows,
two processes sharing one file with exactly-once row semantics, graceful
fallback to memory-only on a corrupt file, and namespace isolation.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import sqlite3

import pytest

from repro import DecompositionEngine, LogKDecomposer, validate_hd
from repro.catalog import DecompositionCatalog
from repro.core.codec import decomposition_to_json
from repro.hypergraph import generators
from repro.service import DecompositionService

#: The shared mixed workload: three positives and one negative decision.
WORKLOAD = (
    ("cycle6", 2, True),
    ("cycle8", 2, True),
    ("grid23", 2, True),
    ("cycle8", 1, False),
)


def _instance(tag):
    return {
        "cycle6": lambda: generators.cycle(6),
        "cycle8": lambda: generators.cycle(8),
        "grid23": lambda: generators.grid(2, 3),
    }[tag]()


def _run_workload(engine):
    decomposer = LogKDecomposer(engine=engine)
    results = []
    for tag, k, expect in WORKLOAD:
        result = decomposer.decompose(_instance(tag), k)
        assert result.success is expect
        if result.success:
            validate_hd(result.decomposition)
        results.append(result)
    return results


# --------------------------------------------------------------------------- #
# direct put/get API
# --------------------------------------------------------------------------- #
def test_put_get_roundtrip_with_provenance(tmp_path):
    from repro import hypertree_width

    h = generators.cycle(6)
    width, hd = hypertree_width(h)
    with DecompositionCatalog(tmp_path / "cat.db", synchronous_writes=True) as catalog:
        catalog.put(
            h,
            width,
            ("test-config",),
            algorithm="test",
            success=True,
            decomposition=hd,
            wall_seconds=0.25,
        )
        record = catalog.get(h, width, ("test-config",))
        assert record is not None and record.success
        assert record.algorithm == "test"
        assert record.wall_seconds == 0.25
        assert record.validated
        assert record.code_version
        assert record.created_at  # ISO timestamp
        restored = record.kind(h, record.root)
        validate_hd(restored)
        assert restored.width == hd.width
        assert len(catalog) == 1
        stats = catalog.stats()
        assert stats.hits == 1 and stats.stores == 1 and stats.validate_rejects == 0


def test_negative_entries_roundtrip(tmp_path):
    h = generators.cycle(8)
    with DecompositionCatalog(tmp_path / "cat.db", synchronous_writes=True) as catalog:
        catalog.put(h, 1, ("cfg",), algorithm="test", success=False, decomposition=None)
        record = catalog.get(h, 1, ("cfg",))
        assert record is not None
        assert record.success is False and record.root is None


def test_catalog_refuses_to_store_invalid_certificates(tmp_path):
    from repro.decomp import DecompositionNode, HypertreeDecomposition

    h = generators.cycle(6)
    # A structurally fine but semantically invalid HD: nothing is covered.
    bogus = HypertreeDecomposition(h, DecompositionNode(frozenset(), frozenset()))
    with DecompositionCatalog(tmp_path / "cat.db", synchronous_writes=True) as catalog:
        catalog.put(h, 2, ("cfg",), algorithm="test", success=True, decomposition=bogus)
        assert len(catalog) == 0
        assert catalog.stats().errors == 1


# --------------------------------------------------------------------------- #
# engine integration: read-through, write-behind, restart-warm
# --------------------------------------------------------------------------- #
def test_restart_warm_engine_recomputes_nothing(tmp_path):
    path = str(tmp_path / "cat.db")

    cold = DecompositionEngine(catalog=path)
    _run_workload(cold)
    cold.catalog.flush()
    cold_stats = cold.catalog.stats()
    assert cold_stats.stores == len(WORKLOAD)
    assert cold_stats.hits == 0
    cold.catalog.close()

    # A fresh engine on the same file: the previous process's warm set.
    warm = DecompositionEngine(catalog=path)
    results = _run_workload(warm)
    warm_stats = warm.catalog.stats()
    assert warm_stats.hits == len(WORKLOAD)
    assert warm_stats.misses == 0
    assert warm_stats.stores == 0  # nothing recomputed, nothing re-stored
    assert warm_stats.validate_rejects == 0
    for result in results:
        # The decompose stage never ran: every answer came from the catalog.
        assert "decompose" not in result.statistics.stage_seconds
    warm.catalog.close()


def test_restart_warm_service_recomputes_nothing(tmp_path):
    path = str(tmp_path / "cat.db")

    engine = DecompositionEngine(catalog=path)
    with DecompositionService(num_workers=2, engine=engine) as service:
        for tag, k, expect in WORKLOAD:
            assert service.submit(_instance(tag), k).result(timeout=60).success is expect
    engine.catalog.flush()
    engine.catalog.close()

    # "Kill and restart": a fresh engine and service over the same file.
    engine = DecompositionEngine(catalog=path)
    with DecompositionService(num_workers=2, engine=engine) as service:
        for tag, k, expect in WORKLOAD:
            result = service.submit(_instance(tag), k).result(timeout=60)
            assert result.success is expect
            if result.success:
                validate_hd(result.decomposition)
            assert "decompose" not in result.statistics.stage_seconds
        stats = service.stats()
    assert stats.catalog is not None
    assert stats.catalog.hits == len(WORKLOAD)
    assert stats.catalog.stores == 0
    assert stats.catalog.validate_rejects == 0
    assert stats.catalog.as_dict()["hits"] == len(WORKLOAD)
    engine.catalog.close()


def test_l2_hit_promotes_into_l1(tmp_path):
    path = str(tmp_path / "cat.db")
    cold = DecompositionEngine(catalog=path)
    LogKDecomposer(engine=cold).decompose(generators.cycle(6), 2)
    cold.catalog.close()

    warm = DecompositionEngine(catalog=path)
    decomposer = LogKDecomposer(engine=warm)
    decomposer.decompose(generators.cycle(6), 2)  # L1 miss, L2 hit, promote
    decomposer.decompose(generators.cycle(6), 2)  # pure L1 hit
    assert warm.catalog.stats().hits == 1  # the catalog was probed only once
    assert warm.cache.statistics.hits == 1
    warm.catalog.close()


def test_timeouts_never_reach_the_catalog(tmp_path):
    path = str(tmp_path / "cat.db")
    engine = DecompositionEngine(catalog=path)
    decomposer = LogKDecomposer(engine=engine, timeout=0.0)
    result = decomposer.decompose(generators.clique(7), 2)
    assert result.timed_out
    engine.catalog.flush()
    assert len(engine.catalog) == 0
    engine.catalog.close()


# --------------------------------------------------------------------------- #
# namespaces
# --------------------------------------------------------------------------- #
def test_namespace_isolation(tmp_path):
    path = tmp_path / "cat.db"
    h = generators.cycle(6)
    from repro import hypertree_width

    width, hd = hypertree_width(h)
    with DecompositionCatalog(path, namespace="tenant-a", synchronous_writes=True) as a:
        a.put(h, width, ("cfg",), algorithm="test", success=True, decomposition=hd)
        assert a.get(h, width, ("cfg",)) is not None
        with DecompositionCatalog(path, namespace="tenant-b") as b:
            assert b.get(h, width, ("cfg",)) is None  # invisible across namespaces
            assert len(b) == 0
            assert b.namespaces() == ["tenant-a"]
            assert [r.namespace for r in b.entries("tenant-a")] == ["tenant-a"]
        # Eviction is namespace-scoped too.
        assert a.evict("tenant-b") == 0
        assert a.evict() == 1
        assert len(a) == 0


def test_invalid_namespace_rejected(tmp_path):
    from repro.exceptions import ReproError

    with pytest.raises(ReproError):
        DecompositionCatalog(tmp_path / "cat.db", namespace="")
    with pytest.raises(ReproError):
        DecompositionCatalog(tmp_path / "cat.db", namespace="has space")


# --------------------------------------------------------------------------- #
# corruption and tampering
# --------------------------------------------------------------------------- #
def test_corrupt_file_falls_back_to_memory_with_warning(tmp_path, caplog):
    path = tmp_path / "garbage.db"
    path.write_bytes(b"this is definitely not a sqlite database" * 64)
    with caplog.at_level(logging.WARNING, logger="repro.catalog"):
        engine = DecompositionEngine(catalog=str(path))
    assert any("memory-only" in message for message in caplog.messages)
    assert engine.catalog.stats().memory_fallback

    # Serving keeps working, merely without durability.
    result = LogKDecomposer(engine=engine).decompose(generators.cycle(6), 2)
    assert result.success
    engine.catalog.flush()
    assert len(engine.catalog) == 1  # stored in the in-memory fallback
    engine.catalog.close()
    assert path.read_bytes().startswith(b"this is definitely not")  # untouched


def test_tampered_row_is_validate_rejected_and_recomputed(tmp_path):
    path = str(tmp_path / "cat.db")
    cold = DecompositionEngine(catalog=path)
    LogKDecomposer(engine=cold).decompose(generators.cycle(6), 2)
    cold.catalog.flush()
    cold.catalog.close()

    # Tamper: a well-formed payload that is not a valid HD of the instance.
    bogus = json.dumps(
        {
            "format": "repro-decomposition/1",
            "kind": "hd",
            "root": {"bag": [], "cover": [], "children": []},
        }
    )
    connection = sqlite3.connect(path)
    connection.execute("UPDATE entries SET certificate = ?", (bogus,))
    connection.commit()
    connection.close()

    warm = DecompositionEngine(catalog=path)
    result = LogKDecomposer(engine=warm).decompose(generators.cycle(6), 2)
    assert result.success
    validate_hd(result.decomposition)  # the answer is correct regardless
    stats = warm.catalog.stats()
    assert stats.validate_rejects == 1  # the row was rejected, not trusted
    assert "decompose" in result.statistics.stage_seconds  # the search re-ran
    warm.catalog.flush()
    assert warm.catalog.stats().stores == 1  # and the row was re-stored

    # The healed row is served (and validates) on the next probe.
    fresh = DecompositionEngine(catalog=path)
    again = LogKDecomposer(engine=fresh).decompose(generators.cycle(6), 2)
    assert again.success and "decompose" not in again.statistics.stage_seconds
    assert fresh.catalog.stats().validate_rejects == 0
    fresh.catalog.close()
    warm.catalog.close()


def test_garbage_certificate_text_is_rejected(tmp_path):
    path = str(tmp_path / "cat.db")
    cold = DecompositionEngine(catalog=path)
    LogKDecomposer(engine=cold).decompose(generators.cycle(6), 2)
    cold.catalog.flush()
    cold.catalog.close()

    connection = sqlite3.connect(path)
    connection.execute("UPDATE entries SET certificate = 'torn write %$#'")
    connection.commit()
    connection.close()

    warm = DecompositionEngine(catalog=path)
    result = LogKDecomposer(engine=warm).decompose(generators.cycle(6), 2)
    assert result.success
    assert warm.catalog.stats().validate_rejects == 1
    warm.catalog.close()


# --------------------------------------------------------------------------- #
# cross-process sharing
# --------------------------------------------------------------------------- #
def _process_workload(path, barrier):
    # Runs in a child process: both children decompose the same instances
    # against one shared catalog file, racing their write-behind inserts.
    from repro import DecompositionEngine, LogKDecomposer
    from repro.hypergraph import generators as gen

    barrier.wait(timeout=30)
    engine = DecompositionEngine(catalog=path)
    decomposer = LogKDecomposer(engine=engine)
    decomposer.decompose(gen.cycle(6), 2)
    decomposer.decompose(gen.cycle(8), 1)
    engine.catalog.close()


def test_two_processes_share_one_catalog_exactly_once(tmp_path):
    path = str(tmp_path / "shared.db")
    context = multiprocessing.get_context("spawn")
    barrier = context.Barrier(2)
    processes = [
        context.Process(target=_process_workload, args=(path, barrier))
        for _ in range(2)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0

    # INSERT OR IGNORE on the primary key: exactly one row per decided key,
    # no matter how the two processes interleaved.
    with DecompositionCatalog(path) as catalog:
        records = catalog.entries()
        assert len(records) == 2
        keys = {(r.canonical_hash, r.k) for r in records}
        assert len(keys) == 2
        for record in records:
            if record.success:
                validate_hd(record.kind(record.hypergraph, record.root))


# --------------------------------------------------------------------------- #
# maintenance API and CLI
# --------------------------------------------------------------------------- #
def test_evict_filters_and_vacuum(tmp_path):
    path = str(tmp_path / "cat.db")
    engine = DecompositionEngine(catalog=path)
    _run_workload(engine)
    engine.catalog.flush()
    catalog = engine.catalog
    assert len(catalog) == len(WORKLOAD)
    assert catalog.evict(k=1) == 1  # the negative entry
    remaining = catalog.entries()
    assert len(remaining) == len(WORKLOAD) - 1
    prefix = remaining[0].canonical_hash[:8]
    assert catalog.evict(hash_prefix=prefix) >= 1
    catalog.vacuum()
    engine.catalog.close()


def test_catalog_cli(tmp_path, capsys):
    from repro.catalog.__main__ import main

    path = str(tmp_path / "cat.db")
    engine = DecompositionEngine(catalog=path)
    LogKDecomposer(engine=engine).decompose(generators.cycle(6), 2)
    engine.catalog.flush()
    target = engine.catalog.entries()[0].canonical_hash
    engine.catalog.close()

    assert main(["list", path]) == 0
    out = capsys.readouterr().out
    assert target[:12] in out and "1 entry" in out

    assert main(["show", path, target[:10]]) == 0
    out = capsys.readouterr().out
    assert "log-k-decomp" in out and '"edge"' in out and "λ=" in out

    assert main(["show", path, "ffff-no-such-hash"]) == 1
    capsys.readouterr()

    assert main(["evict", path, "--hash", target[:10]]) == 0
    assert "evicted 1" in capsys.readouterr().out
    assert main(["vacuum", path]) == 0
    capsys.readouterr()
    assert main(["list", path]) == 0
    assert "0 entries" in capsys.readouterr().out


def test_serialized_configuration_key_is_stable():
    # cache_key() tuples may contain frozensets whose iteration order is
    # nondeterministic; the catalog's rendering must not depend on it.
    from repro.catalog import configuration_text

    a = configuration_text(("algo", frozenset({"x", "y", "z"}), ("k", 2)))
    b = configuration_text(("algo", frozenset({"z", "y", "x"}), ("k", 2)))
    assert a == b
    assert configuration_text(("algo", frozenset({"x"}))) != configuration_text(
        ("algo", frozenset({"y"}))
    )


# --------------------------------------------------------------------------- #
# resilience: retry, circuit breaker, re-attach, writer supervision
# --------------------------------------------------------------------------- #
def test_transient_error_is_retried_invisibly(tmp_path):
    from repro import faults
    from repro import hypertree_width

    h = generators.cycle(6)
    width, hd = hypertree_width(h)
    with DecompositionCatalog(tmp_path / "cat.db", synchronous_writes=True) as catalog:
        catalog.put(h, width, ("cfg",), algorithm="test", success=True, decomposition=hd)
        rule = faults.FaultRule(
            point="catalog.get", error=sqlite3.OperationalError("disk I/O error"), times=1
        )
        with faults.injected(rule):
            record = catalog.get(h, width, ("cfg",))
        assert record is not None and record.success  # the caller never noticed
        stats = catalog.stats()
        assert stats.retries == 1
        assert stats.circuit_state == "closed"
        assert not stats.memory_fallback


def test_mid_run_corruption_opens_circuit_then_reattaches(tmp_path, caplog):
    from repro import faults

    path = str(tmp_path / "cat.db")
    catalog = DecompositionCatalog(path, reset_interval=3600.0)
    engine = DecompositionEngine(catalog=catalog)
    decomposer = LogKDecomposer(engine=engine)

    # Warm start: one decided instance in L1 and (after flush) in the file.
    assert decomposer.decompose(generators.cycle(6), 2).success
    catalog.flush()

    # Mid-run corruption: reads and writes against the file now fail
    # persistently.  (Not ``catalog.*``: that would also hit the
    # ``catalog.writer`` fault point and drop the write before it reaches
    # the shadow database this test asserts the replay of.)
    rules = [
        faults.FaultRule(
            point=point,
            error=sqlite3.OperationalError("database disk image is malformed"),
            times=50,
        )
        for point in ("catalog.get", "catalog.put", "catalog.query")
    ]
    with caplog.at_level(logging.WARNING, logger="repro.catalog"):
        with faults.injected(*rules):
            # An L1 hit never touches the broken catalog.
            warm = decomposer.decompose(generators.cycle(6), 2)
            assert warm.success
            assert "decompose" not in warm.statistics.stage_seconds
            # An L1 miss drives the retry ladder until the circuit opens,
            # then computes and stores into the in-memory shadow.
            fresh = decomposer.decompose(generators.cycle(8), 2)
            assert fresh.success
            validate_hd(fresh.decomposition)
            catalog.flush()
            mid = catalog.stats()
            assert mid.circuit_state == "open"
            assert mid.memory_fallback
            assert mid.circuit_opens >= 1
            assert mid.retries >= 1
            # L1 keeps answering correctly the whole time the circuit is open.
            again = decomposer.decompose(generators.cycle(8), 2)
            assert again.success
            assert "decompose" not in again.statistics.stage_seconds
    assert any("memory-only" in message for message in caplog.messages)

    # Faults gone: a forced probe re-attaches and replays the shadow rows.
    assert catalog.probe()
    healed = catalog.stats()
    assert healed.circuit_state == "closed"
    assert not healed.memory_fallback
    assert healed.circuit_reattaches >= 1
    assert healed.reattach_replays >= 1  # the cycle8 row written while degraded
    catalog.close()

    # The replayed row is durable: a fresh handle serves it from the file.
    fresh_engine = DecompositionEngine(catalog=path)
    served = LogKDecomposer(engine=fresh_engine).decompose(generators.cycle(8), 2)
    assert served.success
    assert "decompose" not in served.statistics.stage_seconds
    fresh_engine.catalog.close()


class _WriterKill(BaseException):
    """Escapes the writer loop's ``except Exception`` — kills the thread."""


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_dead_writer_flush_raises_and_next_put_respawns(tmp_path):
    from repro import faults, hypertree_width
    from repro.exceptions import CatalogError

    h6, h8, g23 = generators.cycle(6), generators.cycle(8), generators.grid(2, 3)
    width, hd6 = hypertree_width(h6)
    _, hd8 = hypertree_width(h8)
    _, hdg = hypertree_width(g23)
    with DecompositionCatalog(tmp_path / "cat.db") as catalog:
        # The first write sleeps long enough for the others to queue behind
        # it, then raises a BaseException that escapes the writer loop.
        rule = faults.FaultRule(
            point="catalog.writer", delay=0.3, error=_WriterKill("killed"), times=1
        )
        with faults.injected(rule):
            catalog.put(h6, width, ("a",), algorithm="t", success=True, decomposition=hd6)
            catalog.put(h8, width, ("b",), algorithm="t", success=True, decomposition=hd8)
            catalog.put(g23, width, ("c",), algorithm="t", success=True, decomposition=hdg)
            with pytest.raises(CatalogError, match="write-behind writer died"):
                catalog.flush()
        stats = catalog.stats()
        assert stats.lost_writes >= 1  # the stranded queue was accounted
        assert stats.circuit_state == "open"  # an unexplained death trips it

        # The next put respawns the writer; the catalog heals.
        assert catalog.probe()
        catalog.put(h6, width, ("d",), algorithm="t", success=True, decomposition=hd6)
        assert catalog.flush()
        stats = catalog.stats()
        assert stats.writer_respawns == 1
        assert stats.stores >= 1
        assert catalog.get(h6, width, ("d",)) is not None


def test_ordinary_writer_exception_loses_one_write_not_the_thread(tmp_path):
    from repro import faults, hypertree_width

    h6, h8 = generators.cycle(6), generators.cycle(8)
    width, hd6 = hypertree_width(h6)
    _, hd8 = hypertree_width(h8)
    with DecompositionCatalog(tmp_path / "cat.db") as catalog:
        rule = faults.FaultRule(
            point="catalog.writer", error=RuntimeError("serialization bug"), times=1
        )
        with faults.injected(rule):
            catalog.put(h6, width, ("a",), algorithm="t", success=True, decomposition=hd6)
            catalog.put(h8, width, ("b",), algorithm="t", success=True, decomposition=hd8)
            assert catalog.flush()  # the writer survived and drained
        stats = catalog.stats()
        assert stats.lost_writes == 1
        assert stats.writer_respawns == 0
        assert stats.stores == 1  # the second write landed
