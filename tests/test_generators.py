"""Unit tests for the hypergraph generators."""

from __future__ import annotations

import pytest

from repro.exceptions import HypergraphError
from repro.hypergraph import generators
from repro.hypergraph.properties import is_alpha_acyclic, is_connected


def test_cycle_structure():
    h = generators.cycle(6)
    assert h.num_edges == 6
    assert h.num_vertices == 6
    assert all(len(h.edge_vertices(i)) == 2 for i in range(6))
    assert is_connected(h)


def test_cycle_invalid_length():
    with pytest.raises(HypergraphError):
        generators.cycle(0)


def test_path_is_acyclic():
    h = generators.path(7)
    assert h.num_edges == 7
    assert is_alpha_acyclic(h)


def test_star_is_acyclic():
    h = generators.star(5, ray_arity=3)
    assert h.num_edges == 5
    assert is_alpha_acyclic(h)
    assert "c" in h.vertices


def test_star_validation():
    with pytest.raises(HypergraphError):
        generators.star(0)
    with pytest.raises(HypergraphError):
        generators.star(3, ray_arity=1)


def test_chain_query_overlap():
    h = generators.chain_query(5, arity=3, overlap=1)
    assert h.num_edges == 5
    assert is_alpha_acyclic(h)
    # Consecutive atoms share exactly `overlap` variables.
    shared = h.edge_vertices(0) & h.edge_vertices(1)
    assert len(shared) == 1


def test_chain_query_invalid_overlap():
    with pytest.raises(HypergraphError):
        generators.chain_query(3, arity=3, overlap=3)


def test_snowflake_is_acyclic():
    h = generators.snowflake_query(4, branch_length=2)
    assert is_alpha_acyclic(h)
    assert h.num_edges == 1 + 4 * 2


def test_grid_structure():
    h = generators.grid(3, 4)
    # 3 rows x 4 cols: horizontal edges 3*3, vertical 2*4.
    assert h.num_edges == 3 * 3 + 2 * 4
    assert h.num_vertices == 12
    assert not is_alpha_acyclic(h)


def test_grid_single_cell():
    h = generators.grid(1, 1)
    assert h.num_edges == 1


def test_clique_structure():
    h = generators.clique(5)
    assert h.num_edges == 10
    assert h.num_vertices == 5
    with pytest.raises(HypergraphError):
        generators.clique(1)


def test_triangle_cascade():
    h = generators.triangle_cascade(3)
    assert h.num_edges == 9
    assert not is_alpha_acyclic(h)


def test_hypercycle():
    h = generators.hypercycle(4, arity=3)
    assert h.num_edges == 4
    assert all(len(h.edge_vertices(i)) == 3 for i in range(4))
    with pytest.raises(HypergraphError):
        generators.hypercycle(2, arity=3)


def test_with_chords_adds_edges():
    base = generators.cycle(8)
    chorded = generators.with_chords(base, 3, seed=1)
    assert chorded.num_edges == base.num_edges + 3
    assert chorded.vertices == base.vertices


def test_with_chords_deterministic():
    base = generators.cycle(8)
    a = generators.with_chords(base, 3, seed=7)
    b = generators.with_chords(base, 3, seed=7)
    assert a == b


def test_random_csp_deterministic():
    a = generators.random_csp(10, 8, seed=3)
    b = generators.random_csp(10, 8, seed=3)
    assert a == b
    assert a.num_edges == 8
    assert all(len(a.edge_vertices(i)) == 3 for i in range(8))


def test_random_csp_validation():
    with pytest.raises(HypergraphError):
        generators.random_csp(2, 5, arity=3)
    with pytest.raises(HypergraphError):
        generators.random_csp(5, 0)


def test_random_query_deterministic_and_bounded():
    a = generators.random_query(15, 12, seed=9)
    b = generators.random_query(15, 12, seed=9)
    assert a == b
    assert a.num_edges == 15
    assert all(2 <= len(a.edge_vertices(i)) <= 4 for i in range(a.num_edges))


def test_random_query_validation():
    with pytest.raises(HypergraphError):
        generators.random_query(0, 10)
    with pytest.raises(HypergraphError):
        generators.random_query(3, 10, acyclic_bias=1.5)


def test_family_helper():
    graphs = generators.family("cycle", [4, 6])
    assert [g.num_edges for g in graphs] == [4, 6]
    with pytest.raises(HypergraphError):
        generators.family("unknown", [3])
