"""Differential tests: all exact HD algorithms must agree with each other.

Beyond the analytically known families, these tests generate small random
hypergraphs and check that log-k-decomp (both variants), det-k-decomp, the
hybrid and the optimal solver produce consistent answers, and that every
produced decomposition passes the independent validator.
"""

from __future__ import annotations

import pytest

from repro.core import (
    DetKDecomposer,
    HybridDecomposer,
    LogKBasicDecomposer,
    LogKDecomposer,
    OptimalHDSolver,
)
from repro.decomp import validate_hd
from repro.hypergraph import generators


EXACT_DECOMPOSERS = {
    "logk": LogKDecomposer,
    "logk-basic": LogKBasicDecomposer,
    "detk": DetKDecomposer,
    "hybrid": lambda: HybridDecomposer(metric="EdgeCount", threshold=3),
}


def _answers(hypergraph, k):
    results = {}
    for name, factory in EXACT_DECOMPOSERS.items():
        result = factory().decompose(hypergraph, k)
        if result.success:
            validate_hd(result.decomposition)
            assert result.decomposition.width <= k
        results[name] = result.success
    return results


@pytest.mark.parametrize("seed", range(8))
def test_random_csp_instances_agree(seed):
    hypergraph = generators.random_csp(7, 6, arity=3, seed=seed)
    for k in (1, 2, 3):
        answers = _answers(hypergraph, k)
        assert len(set(answers.values())) == 1, (seed, k, answers)


@pytest.mark.parametrize("seed", range(8))
def test_random_query_instances_agree(seed):
    hypergraph = generators.random_query(8, 8, seed=seed, acyclic_bias=0.4)
    for k in (1, 2):
        answers = _answers(hypergraph, k)
        assert len(set(answers.values())) == 1, (seed, k, answers)


@pytest.mark.parametrize("seed", range(6))
def test_chorded_cycles_agree(seed):
    base = generators.cycle(7)
    hypergraph = generators.with_chords(base, 2, seed=seed)
    for k in (1, 2, 3):
        answers = _answers(hypergraph, k)
        assert len(set(answers.values())) == 1, (seed, k, answers)


@pytest.mark.parametrize("seed", range(5))
def test_optimal_solver_agrees_with_iterative_deepening(seed):
    hypergraph = generators.random_csp(7, 6, arity=3, seed=100 + seed)
    outcome = OptimalHDSolver(max_width=4).solve(hypergraph)
    assert outcome.solved
    validate_hd(outcome.decomposition)
    # The parametrised algorithms must confirm the optimum.
    assert LogKDecomposer().decompose(hypergraph, outcome.width).success
    if outcome.width > 1:
        assert not LogKDecomposer().decompose(hypergraph, outcome.width - 1).success
        assert not DetKDecomposer().decompose(hypergraph, outcome.width - 1).success


@pytest.mark.parametrize("seed", range(6))
def test_subedge_domination_preserves_answers(seed):
    # The width-safe subedge domination of the label enumerator may only
    # shrink the search space, never flip an answer (module docstring of
    # repro.decomp.covers); check it end-to-end per algorithm.
    hypergraph = generators.random_csp(8, 7, arity=3, seed=200 + seed)
    for k in (1, 2, 3):
        for factory in (
            LogKDecomposer,
            DetKDecomposer,
            lambda **kw: HybridDecomposer(metric="EdgeCount", threshold=4, **kw),
        ):
            on = factory(subedge_domination=True, use_engine=False).decompose(hypergraph, k)
            off = factory(subedge_domination=False, use_engine=False).decompose(hypergraph, k)
            assert on.success == off.success, (seed, k, factory)
            if on.success:
                validate_hd(on.decomposition)
                assert on.decomposition.width <= k


def test_monotonicity_in_k():
    # If an HD of width k exists then HDs of every larger width exist as well.
    hypergraph = generators.triangle_cascade(3)
    results = [LogKDecomposer().decompose(hypergraph, k).success for k in (1, 2, 3, 4)]
    first_success = results.index(True)
    assert all(results[first_success:])


# --------------------------------------------------------------------------- #
# Certificate validation across algorithm *configurations*
# --------------------------------------------------------------------------- #
# Beyond the default configurations above, every ablation/engine configuration
# must emit certificates that pass the independent validate_hd oracle.  The
# seeds 5000/5007 instances are the ones on which the pre-fix hybrid (det-k
# delegation ignoring the allowed-edge set) and log-k-basic (no allowed-edge
# exclusion at all) used to emit condition-4-violating trees; see ROADMAP.md.
CERTIFICATE_CONFIGS = {
    "logk": lambda: LogKDecomposer(use_engine=False),
    "logk-nobalance": lambda: LogKDecomposer(use_engine=False, require_balanced=False),
    "logk-basic": lambda: LogKBasicDecomposer(use_engine=False),
    "detk": lambda: DetKDecomposer(use_engine=False),
    "detk-nocache": lambda: DetKDecomposer(use_engine=False, use_cache=False),
    "hybrid-edgecount": lambda: HybridDecomposer(
        metric="EdgeCount", threshold=4, use_engine=False
    ),
    "hybrid-weighted": lambda: HybridDecomposer(
        metric="WeightedCount", threshold=8, use_engine=False
    ),
}


@pytest.mark.parametrize("seed", [5000, 5007])
def test_all_configurations_emit_valid_certificates(seed):
    hypergraph = generators.random_csp(9, 10, arity=3, seed=seed)
    for k in (2, 3):
        answers = {}
        for name, factory in CERTIFICATE_CONFIGS.items():
            result = factory().decompose(hypergraph, k)
            answers[name] = result.success
            if result.success:
                validate_hd(result.decomposition)
                assert result.decomposition.width <= k
        assert len(set(answers.values())) == 1, (seed, k, answers)
