"""Unit tests for the Hypergraph data structure."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import HypergraphError
from repro.hypergraph import Hypergraph


def test_construction_from_mapping(simple_hypergraph):
    assert simple_hypergraph.num_edges == 3
    assert simple_hypergraph.num_vertices == 4
    assert set(simple_hypergraph.edge_names) == {"r", "s", "t"}
    assert simple_hypergraph.vertices == {"x", "y", "z", "w"}


def test_construction_from_iterable():
    h = Hypergraph([["a", "b"], ["b", "c"]])
    assert h.edge_names == ("e0", "e1")
    assert h.edge_vertices(0) == {"a", "b"}


def test_empty_edge_rejected():
    with pytest.raises(HypergraphError):
        Hypergraph({"r": []})


def test_duplicate_edge_names_via_items():
    class DuplicatingMapping(dict):
        def items(self):
            return [("r", ["a", "b"]), ("r", ["b", "c"])]

    with pytest.raises(HypergraphError):
        Hypergraph(DuplicatingMapping())


def test_edge_lookup(simple_hypergraph):
    index = simple_hypergraph.edge_index("s")
    assert simple_hypergraph.edge_name(index) == "s"
    assert simple_hypergraph.edge_vertices(index) == {"y", "z", "w"}


def test_unknown_edge_raises(simple_hypergraph):
    with pytest.raises(HypergraphError):
        simple_hypergraph.edge_index("nope")


def test_unknown_vertex_raises(simple_hypergraph):
    with pytest.raises(HypergraphError):
        simple_hypergraph.vertex_id("nope")


def test_vertex_mask_roundtrip(simple_hypergraph):
    mask = simple_hypergraph.vertices_to_mask(["x", "z"])
    assert simple_hypergraph.mask_to_vertices(mask) == {"x", "z"}


def test_edge_bits_consistent_with_vertices(simple_hypergraph):
    for index in range(simple_hypergraph.num_edges):
        names = simple_hypergraph.mask_to_vertices(simple_hypergraph.edge_bits(index))
        assert names == simple_hypergraph.edge_vertices(index)


def test_edges_to_mask(simple_hypergraph):
    mask = simple_hypergraph.edges_to_mask([0, 1])
    expected = simple_hypergraph.edge_vertices(0) | simple_hypergraph.edge_vertices(1)
    assert simple_hypergraph.mask_to_vertices(mask) == expected


def test_all_vertices_mask(simple_hypergraph):
    assert (
        simple_hypergraph.mask_to_vertices(simple_hypergraph.all_vertices_mask)
        == simple_hypergraph.vertices
    )


def test_edges_containing(simple_hypergraph):
    containing = simple_hypergraph.edges_containing("y")
    names = {simple_hypergraph.edge_name(i) for i in containing}
    assert names == {"r", "s"}


def test_subhypergraph(simple_hypergraph):
    sub = simple_hypergraph.subhypergraph([0, 2])
    assert set(sub.edge_names) == {"r", "t"}
    assert sub.vertices == {"x", "y", "w"}


def test_primal_graph_edges(simple_hypergraph):
    pairs = simple_hypergraph.primal_graph_edges()
    assert ("x", "y") in pairs
    assert ("w", "y") in pairs or ("y", "w") in pairs  # from edge s
    assert all(a < b for a, b in pairs)


def test_container_protocol(simple_hypergraph):
    assert len(simple_hypergraph) == 3
    assert "r" in simple_hypergraph
    assert "missing" not in simple_hypergraph
    assert sorted(simple_hypergraph) == ["r", "s", "t"]


def test_equality_and_hash():
    a = Hypergraph({"r": ["x", "y"], "s": ["y", "z"]})
    b = Hypergraph({"s": ["z", "y"], "r": ["y", "x"]})
    assert a == b
    assert hash(a) == hash(b)
    c = Hypergraph({"r": ["x", "y"]})
    assert a != c
    assert a != "not a hypergraph"


def test_rename(simple_hypergraph):
    renamed = simple_hypergraph.rename("other")
    assert renamed.name == "other"
    assert renamed == simple_hypergraph


def test_repr_contains_counts(simple_hypergraph):
    text = repr(simple_hypergraph)
    assert "|V|=4" in text and "|E|=3" in text


_edge_strategy = st.lists(
    st.sets(st.sampled_from("abcdefgh"), min_size=1, max_size=4), min_size=1, max_size=8
)


@given(_edge_strategy)
def test_vertices_are_union_of_edges(edges):
    h = Hypergraph(edges)
    union = set()
    for e in edges:
        union |= e
    assert h.vertices == union
    assert h.num_edges == len(edges)


@given(_edge_strategy)
def test_bitmask_view_matches_name_view(edges):
    h = Hypergraph(edges)
    for index in range(h.num_edges):
        assert h.mask_to_vertices(h.edge_bits(index)) == h.edge_vertices(index)
        assert h.edge_bits(index).bit_count() == len(h.edge_vertices(index))
