"""Three-way differential tests pinning the SQL pushdown executor.

A third executor triples the surface where answers can silently diverge, so
this suite is the contract: on generated acyclic and bounded-width CQs with
random databases, ``eager`` == ``columnar`` == ``sql`` — byte-identical
answers across all three answer modes, including empty relations, repeated
variables and single-atom queries, for in-memory *and* on-disk (SQLite
file) sources.  The satellite units cover program caching, store reuse,
cancellation and the path-shipping codec branch.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import codec
from repro.exceptions import QueryError, TimeoutExceeded
from repro.hypergraph.cq import Atom, ConjunctiveQuery, parse_conjunctive_query
from repro.query import (
    Database,
    QueryEngine,
    Relation,
    SQLDatabase,
    SQLStore,
    compile_sql,
    dump_database,
    evaluate_query,
    execute_plan_sql,
    naive_join_query,
    random_database_for_query,
)
from repro.query.sqlgen import SQLExecutor

# --------------------------------------------------------------------------- #
# strategies: random CQs with matching random databases
# --------------------------------------------------------------------------- #
_VARIABLES = [f"v{i}" for i in range(6)]
#: Mixed-type values: SQL must agree with Python across ints, strings and
#: None (null-safe ``IS`` joins) — not just on a dense integer domain.
_VALUES = st.one_of(st.integers(0, 3), st.sampled_from(["a", "b"]), st.none())


@st.composite
def _query_and_database(draw, values=st.integers(0, 3)):
    num_atoms = draw(st.integers(1, 4))
    atoms = []
    for index in range(num_atoms):
        arity = draw(st.integers(1, 3))
        # Variables may repeat inside an atom (repeated-variable binding).
        arguments = tuple(draw(st.sampled_from(_VARIABLES)) for _ in range(arity))
        atoms.append(Atom(f"rel{index}", arguments))
    variables = sorted({v for atom in atoms for v in atom.arguments})
    # Output may be empty (Boolean query) or any subset of the variables.
    free = tuple(draw(st.lists(st.sampled_from(variables), unique=True, max_size=3)))
    query = ConjunctiveQuery(tuple(atoms), free)

    database = Database()
    for atom in atoms:
        schema = [f"a{i}" for i in range(len(atom.arguments))]
        # Relations may be empty.
        rows = draw(
            st.lists(st.tuples(*[values for _ in atom.arguments]), max_size=10)
        )
        database.add(Relation(atom.relation, schema, rows))
    return query, database


def _assert_three_way(query, database, sql_database=None):
    """eager == columnar == sql on every answer mode, byte-identical."""
    eager = evaluate_query(query, database, executor="eager")
    target = database if sql_database is None else sql_database
    for mode in ("enumerate", "boolean", "count"):
        columnar = evaluate_query(query, database, mode=mode, executor="columnar")
        sql = evaluate_query(query, target, mode=mode, executor="sql")
        assert sql.boolean_answer == columnar.boolean_answer == (len(eager.answers) > 0), mode
        assert sql.count == columnar.count, mode
        if mode == "enumerate":
            assert sql.answers.as_dicts() == eager.answers.as_dicts()
            assert columnar.answers.as_dicts() == eager.answers.as_dicts()
            assert sql.count == len(eager.answers)
        elif mode == "count":
            assert sql.count == len(eager.answers)


@given(_query_and_database())
@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_three_way_differential_in_memory(case):
    _assert_three_way(*case)


@given(_query_and_database(values=_VALUES))
@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_three_way_differential_mixed_types(case):
    # Strings and None flow through interning and the null-safe IS joins.
    _assert_three_way(*case)


@given(case=_query_and_database())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_three_way_differential_on_disk(tmp_path_factory, case):
    # The same query answered against the database dumped to a SQLite file:
    # the SQL arm reads the file in place, eager/columnar load it lazily.
    query, database = case
    path = tmp_path_factory.mktemp("sqldb") / "facts.sqlite"
    on_disk = dump_database(database, path)
    _assert_three_way(query, database, sql_database=on_disk)


# --------------------------------------------------------------------------- #
# directed edge cases (the classes the generator can only hit by luck)
# --------------------------------------------------------------------------- #
def _sql_all_modes(query, database):
    naive = naive_join_query(database, query.atoms, query.free_variables)
    results = {}
    for mode in ("enumerate", "boolean", "count"):
        report = evaluate_query(query, database, mode=mode, executor="sql")
        results[mode] = report
        assert report.boolean_answer == (len(naive) > 0), mode
    assert results["enumerate"].answers.as_dicts() == naive.as_dicts()
    assert results["count"].count == len(naive)
    return results


def test_empty_relation_early_exit():
    query = ConjunctiveQuery((Atom("r", ("x", "y")), Atom("s", ("y", "z"))), ("x",))
    database = Database(
        [Relation("r", ["a0", "a1"], []), Relation("s", ["a0", "a1"], [(1, 2)])]
    )
    results = _sql_all_modes(query, database)
    assert len(results["enumerate"].answers) == 0


def test_repeated_variables_inside_atoms():
    query = ConjunctiveQuery(
        (Atom("r", ("x", "x", "y")), Atom("s", ("y", "y"))), ("x", "y")
    )
    database = Database(
        [
            Relation("r", ["a0", "a1", "a2"], [(1, 1, 2), (1, 2, 2), (3, 3, 3)]),
            Relation("s", ["a0", "a1"], [(2, 2), (3, 1), (3, 3)]),
        ]
    )
    results = _sql_all_modes(query, database)
    assert results["enumerate"].answers.as_dicts() == {
        frozenset({("x", 1), ("y", 2)}),
        frozenset({("x", 3), ("y", 3)}),
    }


def test_single_atom_query():
    query = ConjunctiveQuery((Atom("r", ("x", "y")),), ("y",))
    database = Database([Relation("r", ["a0", "a1"], [(1, 2), (3, 2), (4, 5)])])
    results = _sql_all_modes(query, database)
    assert results["enumerate"].answers.as_dicts() == {
        frozenset({("y", 2)}),
        frozenset({("y", 5)}),
    }


def test_none_joins_with_itself():
    # SQL NULL never equals NULL under `=`; the generator must use `IS`.
    query = ConjunctiveQuery((Atom("r", ("x", "y")), Atom("s", ("y", "z"))), ("x", "z"))
    database = Database(
        [
            Relation("r", ["a0", "a1"], [(1, None)]),
            Relation("s", ["a0", "a1"], [(None, 7)]),
        ]
    )
    results = _sql_all_modes(query, database)
    assert results["count"].count == 1


# --------------------------------------------------------------------------- #
# engine integration: caching, stores, cancellation
# --------------------------------------------------------------------------- #
def test_sql_program_and_plan_are_cached():
    query = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z).")
    database = random_database_for_query(query, seed=11)
    engine = QueryEngine()
    first = engine.execute(query, database, "count", executor="sql")
    second = engine.execute(query, database, "count", executor="sql")
    assert second.plan_cached and not first.plan_cached
    assert first.count == second.count
    # One persistent store per database: connection and loaded tables reused.
    assert engine.sql_store_for(database) is engine.sql_store_for(database)
    planned, _ = engine.plan(query, "count")
    store = engine.sql_store_for(database)
    assert engine.sql_program(query, planned, store) is engine.sql_program(
        query, planned, store
    )


def test_sql_executor_rejects_unknown_name():
    query = parse_conjunctive_query("ans(x) :- r(x,y).")
    database = random_database_for_query(query, seed=1)
    with pytest.raises(QueryError):
        QueryEngine().execute(query, database, executor="no-such-arm")
    with pytest.raises(QueryError):
        evaluate_query(query, database, executor="no-such-arm")


def test_sql_store_database_mismatch_rejected():
    query = parse_conjunctive_query("ans(x) :- r(x,y).")
    db1 = random_database_for_query(query, seed=1)
    db2 = random_database_for_query(query, seed=2)
    engine = QueryEngine()
    planned, _ = engine.plan(query, "enumerate")
    with pytest.raises(QueryError):
        execute_plan_sql(planned.plan, db1, SQLStore(db2))


def test_cancel_event_preempts_execution():
    query = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z).")
    database = random_database_for_query(query, seed=3)
    event = threading.Event()
    event.set()
    with pytest.raises(TimeoutExceeded, match="cancelled"):
        QueryEngine().execute(query, database, executor="sql", cancel_event=event)


def test_deadline_preempts_execution():
    query = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z).")
    database = random_database_for_query(query, seed=3)
    with pytest.raises(TimeoutExceeded, match="time budget"):
        QueryEngine().execute(query, database, executor="sql", timeout=-1.0)


def test_mid_flight_interrupt_leaves_store_reusable():
    # A cross-product large enough to outlive the cancel delay; afterwards
    # the same store must serve the next query (temp objects cleaned up).
    n = 200
    rows = {(i, j) for i in range(n) for j in range(3)}
    database = Database(
        [
            Relation("r", ["a0", "a1"], rows),
            Relation("s", ["a0", "a1"], rows),
            Relation("t", ["a0", "a1"], rows),
        ]
    )
    query = parse_conjunctive_query("ans(x, y, z, w) :- r(x,y), s(z,w), t(x,w).")
    engine = QueryEngine()
    event = threading.Event()
    timer = threading.Timer(0.1, event.set)
    timer.start()
    try:
        engine.execute(query, database, "enumerate", executor="sql", cancel_event=event)
    except TimeoutExceeded:
        pass  # expected on any non-glacial host; completion is also legal
    finally:
        timer.cancel()
    result = engine.execute(query, database, "count", executor="sql")
    assert result.count == (n * 3) ** 2  # t allows every (x, w) pair


# --------------------------------------------------------------------------- #
# on-disk handles and the wire format
# --------------------------------------------------------------------------- #
def test_sql_database_handle(tmp_path):
    query = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z).")
    database = random_database_for_query(query, seed=5)
    handle = dump_database(database, tmp_path / "facts.sqlite")
    assert set(handle.relation_names()) == set(database.relation_names())
    assert handle.total_tuples() == database.total_tuples()
    assert "r" in handle and "zzz" not in handle
    assert handle.get("r").as_dicts() == database.get("r").as_dicts()
    with pytest.raises(QueryError):
        handle.add(Relation("extra", ["a0"], [(1,)]))
    with pytest.raises(QueryError):
        handle.get("zzz")
    reopened = SQLDatabase(tmp_path / "facts.sqlite")
    assert reopened.table_columns("r") == ("a0", "a1")


def test_dump_database_rejects_non_scalars(tmp_path):
    database = Database([Relation("r", ["a0"], [((1, 2),)])])
    with pytest.raises(QueryError):
        dump_database(database, tmp_path / "bad.sqlite")


def test_codec_ships_sql_database_as_path(tmp_path):
    # The process backend's ship-once payload for an on-disk database is the
    # *path* token — rows never cross the pipe.
    query = parse_conjunctive_query("ans(x) :- r(x,y).")
    database = random_database_for_query(query, seed=9)
    handle = dump_database(database, tmp_path / "facts.sqlite")
    payload = codec.database_to_dict(handle)
    assert payload == {"format": codec.DATABASE_FORMAT, "path": handle.path}
    rebuilt = codec.database_from_dict(payload)
    assert isinstance(rebuilt, SQLDatabase)
    assert rebuilt.get("r").as_dicts() == database.get("r").as_dicts()


def test_query_request_round_trips_executor():
    query = parse_conjunctive_query("ans(x) :- r(x,y).")
    payload = codec.query_request_to_dict(
        query=query, mode="count", database="db-1", timeout=None, executor="sql"
    )
    decoded = codec.service_request_from_dict(payload)
    assert decoded["executor"] == "sql"
    # Payloads from older senders default to the columnar arm.
    del payload["executor"]
    assert codec.service_request_from_dict(payload)["executor"] == "columnar"


def test_compile_sql_program_shape():
    query = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z).")
    database = random_database_for_query(query, seed=2)
    engine = QueryEngine()
    planned, _ = engine.plan(query, "count")
    store = SQLStore(database)
    program = compile_sql(planned.plan, store.catalog_for(planned.plan))
    script = program.describe()
    assert "CREATE TEMP TABLE bag_0" in script
    assert "DELETE FROM bag_" in script and "NOT EXISTS" in script
    assert program.answer_kind == "count" and "COUNT(*)" in program.answer
    assert all(stmt.startswith("DROP") for stmt in program.cleanup)
    # Executing the compiled program directly matches the engine result.
    result = SQLExecutor(store).execute(planned.plan, program)
    assert result.count == engine.execute(query, database, "count", executor="sql").count
