"""Unit tests for the hybrid log-k-decomp / det-k-decomp strategy."""

from __future__ import annotations

import pytest

from repro.core import HybridDecomposer, LogKDecomposer
from repro.core.hybrid import EdgeCountMetric, WeightedCountMetric, make_metric
from repro.decomp import validate_hd
from repro.decomp.extended import full_comp
from repro.exceptions import SolverError
from repro.hypergraph import Hypergraph, generators


def test_metric_factory():
    assert isinstance(make_metric("EdgeCount"), EdgeCountMetric)
    assert isinstance(make_metric("edgecount"), EdgeCountMetric)
    assert isinstance(make_metric("WeightedCount"), WeightedCountMetric)
    assert isinstance(make_metric("weighted"), WeightedCountMetric)
    with pytest.raises(SolverError):
        make_metric("bogus")


def test_edge_count_metric_value():
    h = generators.cycle(8)
    metric = EdgeCountMetric()
    assert metric.value(h, full_comp(h), 3) == 8.0


def test_weighted_count_metric_value():
    h = generators.cycle(8)  # 8 binary edges: average size 2
    metric = WeightedCountMetric()
    assert metric.value(h, full_comp(h), 3) == pytest.approx(8 * 3 / 2)
    empty = full_comp(h).difference(full_comp(h))
    assert metric.value(h, empty, 3) == 0.0


def test_hybrid_accepts_metric_instances():
    decomposer = HybridDecomposer(metric=EdgeCountMetric(), threshold=5)
    result = decomposer.decompose(generators.cycle(8), 2)
    assert result.success
    validate_hd(result.decomposition)


def test_hybrid_rejects_unknown_metric():
    with pytest.raises(SolverError):
        HybridDecomposer(metric="nope")


@pytest.mark.parametrize("threshold", [0.0, 5.0, 1000.0])
def test_hybrid_answers_do_not_depend_on_threshold(threshold):
    for hypergraph, k, expected in [
        (generators.cycle(9), 1, False),
        (generators.cycle(9), 2, True),
        (generators.grid(2, 4), 2, True),
        (generators.clique(5), 2, False),
    ]:
        result = HybridDecomposer(threshold=threshold).decompose(hypergraph, k)
        assert result.success == expected
        if expected:
            validate_hd(result.decomposition)
            assert result.decomposition.width <= k


def test_threshold_zero_never_delegates():
    result = HybridDecomposer(threshold=0.0).decompose(generators.cycle(12), 2)
    assert result.success
    assert result.statistics.subproblems_delegated == 0


def test_large_threshold_delegates_immediately():
    result = HybridDecomposer(threshold=1e9).decompose(generators.cycle(12), 2)
    assert result.success
    assert result.statistics.subproblems_delegated >= 1


def test_intermediate_threshold_mixes_the_engines():
    # With a threshold between the full size and the base-case size the search
    # starts with balanced separators and finishes with det-k-decomp.
    h = generators.cycle(16)
    result = HybridDecomposer(metric="EdgeCount", threshold=6).decompose(h, 2)
    assert result.success
    assert result.statistics.subproblems_delegated >= 1
    validate_hd(result.decomposition)


def test_hybrid_agrees_with_logk_on_medium_instances():
    cases = [generators.triangle_cascade(4), generators.grid(3, 3), generators.hypercycle(5, 3)]
    for hypergraph in cases:
        for k in (1, 2, 3):
            hybrid = HybridDecomposer(metric="EdgeCount", threshold=4).decompose(hypergraph, k)
            logk = LogKDecomposer().decompose(hypergraph, k)
            assert hybrid.success == logk.success, (hypergraph.name, k)


def test_hybrid_timeout():
    result = HybridDecomposer(timeout=0.0).decompose(generators.clique(7), 3)
    assert result.timed_out


#: random_csp(9, 10, arity=3, seed=5007): the instance from ROADMAP.md on
#: which the hybrid decomposer used to emit an HD violating condition 4 (the
#: special condition) — the det-k leaf engine ignored log-k's allowed-edge
#: set, so an "up" fragment above a stitched separator could put an edge of
#: the component below into a λ-label.
CONDITION4_REGRESSION_EDGES = {
    "c0": ["x2", "x4", "x5"], "c1": ["x3", "x5", "x8"], "c2": ["x2", "x3", "x1"],
    "c3": ["x2", "x4", "x3"], "c4": ["x2", "x6", "x1"], "c5": ["x7", "x4", "x3"],
    "c6": ["x2", "x3", "x8"], "c7": ["x7", "x2", "x5"], "c8": ["x0", "x2", "x6"],
    "c9": ["x0", "x7", "x5"],
}


@pytest.mark.parametrize("use_engine", [False, True])
def test_detk_delegation_respects_allowed_edges(use_engine):
    h = Hypergraph(CONDITION4_REGRESSION_EDGES)
    result = HybridDecomposer(
        metric="EdgeCount", threshold=4, use_engine=use_engine
    ).decompose(h, 2)
    assert result.success
    validate_hd(result.decomposition)
    assert result.decomposition.width <= 2
