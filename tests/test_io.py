"""Unit tests for hypergraph parsing and serialisation."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.hypergraph import from_hif, parse_hypergraph, read_hypergraph, to_hif, write_hypergraph
from repro.hypergraph.io import to_hyperbench_format, to_pace_format


HYPERBENCH_TEXT = """
% a toy instance
r1(x1,x2),
r2(x2,x3),
r3(x3,x1).
"""

PACE_TEXT = """
p htd 4 3
1 2
2 3
3 4 1
"""


def test_parse_hyperbench_format():
    h = parse_hypergraph(HYPERBENCH_TEXT, name="toy")
    assert h.name == "toy"
    assert h.num_edges == 3
    assert h.edge_vertices(h.edge_index("r2")) == {"x2", "x3"}


def test_parse_pace_format():
    h = parse_hypergraph(PACE_TEXT)
    assert h.num_edges == 3
    assert h.num_vertices == 4
    assert h.edge_vertices(h.edge_index("e3")) == {"v1", "v3", "v4"}


def test_parse_empty_raises():
    with pytest.raises(ParseError):
        parse_hypergraph("   \n  ")


def test_parse_comments_only_raises():
    with pytest.raises(ParseError):
        parse_hypergraph("% nothing here\n# still nothing\n")


def test_parse_malformed_statement_raises():
    with pytest.raises(ParseError):
        parse_hypergraph("r1(x1,x2), garbage, r2(x2).")


def test_parse_unbalanced_parentheses_raises():
    with pytest.raises(ParseError):
        parse_hypergraph("r1(x1,x2.")


def test_parse_edge_without_vertices_raises():
    with pytest.raises(ParseError):
        parse_hypergraph("r1().")


def test_parse_pace_bad_header_raises():
    with pytest.raises(ParseError):
        parse_hypergraph("p htd x y\n1 2\n")


def test_parse_pace_wrong_edge_count_raises():
    with pytest.raises(ParseError):
        parse_hypergraph("p htd 3 2\n1 2\n")


def test_parse_pace_vertex_out_of_range_raises():
    with pytest.raises(ParseError):
        parse_hypergraph("p htd 2 1\n1 5\n")


def test_duplicate_edge_names_get_disambiguated():
    h = parse_hypergraph("r(x,y),\nr(y,z).")
    assert h.num_edges == 2
    assert len(set(h.edge_names)) == 2


def test_hyperbench_roundtrip(simple_hypergraph):
    text = to_hyperbench_format(simple_hypergraph)
    parsed = parse_hypergraph(text)
    assert parsed == simple_hypergraph


def test_pace_roundtrip_structure(simple_hypergraph):
    text = to_pace_format(simple_hypergraph)
    parsed = parse_hypergraph(text)
    # PACE renames vertices and edges but must preserve the structure sizes.
    assert parsed.num_edges == simple_hypergraph.num_edges
    assert parsed.num_vertices == simple_hypergraph.num_vertices
    assert sorted(len(parsed.edge_vertices(i)) for i in range(parsed.num_edges)) == sorted(
        len(simple_hypergraph.edge_vertices(i)) for i in range(simple_hypergraph.num_edges)
    )


def test_file_roundtrip(tmp_path, simple_hypergraph):
    path = tmp_path / "simple.hg"
    write_hypergraph(simple_hypergraph, path)
    loaded = read_hypergraph(path)
    assert loaded == simple_hypergraph
    assert loaded.name == "simple"


def test_hyperbench_format_ends_with_period(simple_hypergraph):
    text = to_hyperbench_format(simple_hypergraph).strip()
    assert text.endswith(".")
    assert text.count(",\n") == simple_hypergraph.num_edges - 1 or simple_hypergraph.num_edges == 1


def test_parse_accepts_qualified_names():
    h = parse_hypergraph("db.table-1(a,b),\nns:rel(b,c).")
    assert h.num_edges == 2
    assert "db.table-1" in h


# --------------------------------------------------------------------------- #
# HIF (Hypergraph Interchange Format)
# --------------------------------------------------------------------------- #
def test_hif_roundtrip(simple_hypergraph):
    document = to_hif(simple_hypergraph)
    restored = from_hif(document)
    assert restored == simple_hypergraph
    assert restored.canonical_hash() == simple_hypergraph.canonical_hash()


def test_hif_roundtrip_through_json_text(simple_hypergraph):
    import json

    text = json.dumps(to_hif(simple_hypergraph))
    assert from_hif(text) == simple_hypergraph
    # parse_hypergraph auto-detects HIF input by its leading brace.
    assert parse_hypergraph(text) == simple_hypergraph


def test_hif_document_shape(simple_hypergraph):
    document = to_hif(simple_hypergraph)
    assert document["network-type"] == "undirected"
    assert {entry["node"] for entry in document["nodes"]} == simple_hypergraph.vertices
    assert [entry["edge"] for entry in document["edges"]] == list(
        simple_hypergraph.edge_names
    )
    assert len(document["incidences"]) == sum(
        len(simple_hypergraph.edge_vertices(i))
        for i in range(simple_hypergraph.num_edges)
    )


def test_hif_metadata_carries_the_name():
    h = parse_hypergraph("r(x,y),\ns(y,z).", name="named")
    document = to_hif(h)
    assert document["metadata"]["name"] == "named"
    assert from_hif(document).name == "named"
    assert from_hif(document, name="override").name == "override"


def test_hif_edge_order_follows_edges_array():
    document = {
        "edges": [{"edge": "b"}, {"edge": "a"}],
        "incidences": [
            {"edge": "a", "node": "x"},
            {"edge": "a", "node": "y"},
            {"edge": "b", "node": "y"},
            {"edge": "b", "node": "z"},
        ],
    }
    h = from_hif(document)
    assert list(h.edge_names) == ["b", "a"]


def test_hif_rejects_garbage():
    with pytest.raises(ParseError):
        from_hif("not json {")
    with pytest.raises(ParseError):
        from_hif("[1, 2, 3]")
    with pytest.raises(ParseError):
        from_hif({"nodes": []})  # missing incidences
    with pytest.raises(ParseError):
        from_hif({"incidences": [{"edge": "e"}]})  # incidence without node
    with pytest.raises(ParseError):
        from_hif({"incidences": []})  # no edges at all


def test_hif_rejects_edges_without_incidences():
    with pytest.raises(ParseError, match="without incidences"):
        from_hif(
            {
                "edges": [{"edge": "e1"}, {"edge": "empty"}],
                "incidences": [{"edge": "e1", "node": "x"}],
            }
        )


def test_hif_rejects_isolated_nodes():
    with pytest.raises(ParseError, match="isolated"):
        from_hif(
            {
                "nodes": [{"node": "x"}, {"node": "lonely"}],
                "incidences": [{"edge": "e1", "node": "x"}],
            }
        )
