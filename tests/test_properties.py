"""Unit tests for structural hypergraph properties."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.hypergraph import Hypergraph, generators
from repro.hypergraph.properties import (
    connected_components,
    degree,
    gyo_reduction,
    intersection_width,
    is_alpha_acyclic,
    is_connected,
    rank,
    statistics,
)


def test_rank_and_degree(simple_hypergraph):
    assert rank(simple_hypergraph) == 3  # edge s has 3 vertices
    assert degree(simple_hypergraph) == 2  # every vertex occurs in exactly 2 edges


def test_intersection_width(simple_hypergraph):
    assert intersection_width(simple_hypergraph) == 1


def test_intersection_width_larger():
    h = Hypergraph({"a": ["x", "y", "z"], "b": ["y", "z", "w"]})
    assert intersection_width(h) == 2


def test_acyclic_families():
    assert is_alpha_acyclic(generators.path(6))
    assert is_alpha_acyclic(generators.star(4))
    assert is_alpha_acyclic(generators.chain_query(5))
    assert is_alpha_acyclic(generators.snowflake_query(3))


def test_cyclic_families():
    assert not is_alpha_acyclic(generators.cycle(3))
    assert not is_alpha_acyclic(generators.cycle(8))
    assert not is_alpha_acyclic(generators.grid(2, 3))
    assert not is_alpha_acyclic(generators.clique(4))


def test_gyo_reduction_residual_empty_for_acyclic():
    assert gyo_reduction(generators.path(4)) == [] or len(gyo_reduction(generators.path(4))) <= 1


def test_gyo_reduction_residual_nonempty_for_cycle():
    assert len(gyo_reduction(generators.cycle(5))) > 1


def test_single_edge_is_acyclic():
    assert is_alpha_acyclic(Hypergraph({"e": ["a", "b", "c"]}))


def test_two_overlapping_edges_are_acyclic():
    assert is_alpha_acyclic(Hypergraph({"e": ["a", "b"], "f": ["b", "c"]}))


def test_connected_components_single(simple_hypergraph):
    assert len(connected_components(simple_hypergraph)) == 1
    assert is_connected(simple_hypergraph)


def test_connected_components_multiple():
    h = Hypergraph({"a": ["x", "y"], "b": ["y", "z"], "c": ["p", "q"]})
    components = connected_components(h)
    assert len(components) == 2
    sizes = sorted(len(c) for c in components)
    assert sizes == [1, 2]
    assert not is_connected(h)


def test_statistics_bundle(simple_hypergraph):
    stats = statistics(simple_hypergraph)
    assert stats.num_edges == 3
    assert stats.num_vertices == 4
    assert stats.rank == 3
    assert stats.degree == 2
    # r, s, t form a cycle on {x, y, w} once the ear vertex z is removed.
    assert stats.alpha_acyclic is False


@given(st.integers(min_value=3, max_value=12))
def test_cycles_are_never_acyclic(length):
    assert not is_alpha_acyclic(generators.cycle(length))


@given(st.integers(min_value=1, max_value=12))
def test_paths_are_always_acyclic(length):
    assert is_alpha_acyclic(generators.path(length))
