"""Unit tests for the width-preserving simplifier and its lifting."""

from __future__ import annotations

import pytest

from repro.core import DetKDecomposer, LogKDecomposer
from repro.decomp import validate_hd
from repro.decomp.validation import check_width
from repro.hypergraph import Hypergraph, generators
from repro.pipeline import (
    CollapsedVertices,
    SimplificationTrace,
    lift_decomposition,
    simplify,
)


def test_irreducible_instance_is_returned_unchanged(cycle10):
    trace = simplify(cycle10)
    assert not trace.reduced_anything
    assert trace.reduced is cycle10  # no copy when nothing reduces
    assert trace.rounds == 0


def test_subsumed_edge_removal():
    h = Hypergraph({"big": ["a", "b", "c"], "sub": ["a", "b"], "other": ["c", "d"]})
    trace = simplify(h)
    removed = trace.removed_edges
    assert [r.name for r in removed] == ["sub"]
    assert removed[0].witness == "big"
    assert set(trace.reduced.edge_names) == {"big", "other"}
    # The original hypergraph object is untouched.
    assert h.num_edges == 3


def test_duplicate_edges_keep_smaller_name():
    h = Hypergraph({"b": ["x", "y"], "a": ["y", "x"], "c": ["y", "z"]})
    trace = simplify(h)
    assert "a" in trace.reduced
    assert "b" not in trace.reduced
    assert {r.name for r in trace.removed_edges} == {"b"}


def test_degree_one_vertices_collapse_to_one_representative():
    # p1/p2/p3 occur only in "tail": they are interchangeable and collapse
    # onto p1; the final private vertex must survive (removing it is not
    # liftable through the special condition).
    h = Hypergraph({"core": ["x", "y"], "tail": ["y", "p1", "p2", "p3"]})
    trace = simplify(h)
    collapsed = trace.collapsed_vertices
    assert collapsed == [CollapsedVertices(representative="p1", removed=("p2", "p3"))]
    assert trace.reduced.vertices == {"x", "y", "p1"}
    assert trace.reduced.num_edges == 2


def test_identical_membership_vertices_collapse_across_edges():
    # u and v occur in exactly {e1, e2}: interchangeable even at degree 2.
    h = Hypergraph({"e1": ["u", "v", "w"], "e2": ["u", "v", "z"], "e3": ["w", "z"]})
    trace = simplify(h)
    assert any(
        step.representative == "u" and step.removed == ("v",)
        for step in trace.collapsed_vertices
    )


def test_reductions_cascade_to_fixpoint():
    # Collapsing {b1, b2} makes "small" equal to a subset of "large", which
    # only the next round can remove.
    h = Hypergraph(
        {
            "large": ["a", "b1", "b2", "c"],
            "small": ["b1", "b2"],
            "anchor": ["a", "c", "d"],
        }
    )
    trace = simplify(h)
    assert trace.rounds >= 1
    assert "small" not in trace.reduced
    assert simplify(trace.reduced).reduced is trace.reduced  # idempotent


def test_simplify_is_idempotent_on_corpus_samples():
    for seed in range(4):
        h = generators.random_query(12, 10, seed=seed, acyclic_bias=0.5)
        reduced = simplify(h).reduced
        assert not simplify(reduced).reduced_anything


def test_max_rounds_limits_work():
    h = Hypergraph(
        {
            "large": ["a", "b1", "b2", "c"],
            "small": ["b1", "b2"],
            "anchor": ["a", "c", "d"],
        }
    )
    trace = simplify(h, max_rounds=0)
    assert not trace.reduced_anything
    assert trace.reduced is h


def test_trace_summary_mentions_sizes():
    h = Hypergraph({"big": ["a", "b", "c"], "sub": ["a", "b"]})
    summary = simplify(h).summary()
    assert "2->1 edges" in summary


@pytest.mark.parametrize("decomposer_cls", [LogKDecomposer, DetKDecomposer])
def test_lift_produces_valid_hd_on_original(decomposer_cls):
    h = Hypergraph(
        {
            "big": ["a", "b", "c", "d"],
            "sub": ["a", "b"],
            "dup": ["d", "c", "b", "a"],
            "tail": ["d", "p1", "p2"],
            "bridge": ["c", "e"],
            "loop1": ["e", "f"],
            "loop2": ["f", "g"],
            "loop3": ["g", "e"],
        },
        name="messy",
    )
    trace = simplify(h)
    assert trace.reduced_anything
    result = decomposer_cls(use_engine=False).decompose(trace.reduced, 2)
    assert result.success
    lifted = lift_decomposition(trace, result.decomposition)
    assert lifted.hypergraph is h
    validate_hd(lifted)
    check_width(lifted, 2)
    assert lifted.width == result.decomposition.width


def test_lift_restores_transitively_collapsed_vertices():
    # Hand-built trace with a representative chain: x collapsed onto r in an
    # early step, r itself collapsed onto s later.  The lift must replay the
    # steps in reverse (restore r wherever s is, then x wherever r is).
    original = Hypergraph({"e": ["s", "r", "x", "w"], "f": ["w", "v"]})
    reduced = Hypergraph({"e": ["s", "w"], "f": ["w", "v"]})
    trace = SimplificationTrace(
        original=original,
        reduced=reduced,
        steps=[
            CollapsedVertices(representative="r", removed=("x",)),
            CollapsedVertices(representative="s", removed=("r",)),
        ],
        rounds=2,
    )
    result = LogKDecomposer(use_engine=False).decompose(reduced, 1)
    assert result.success
    lifted = lift_decomposition(trace, result.decomposition)
    validate_hd(lifted)
    for node in lifted.nodes():
        if "s" in node.bag:
            assert {"r", "x"} <= node.bag
    covered = set()
    for node in lifted.nodes():
        covered |= node.bag
    assert covered == original.vertices


def test_collapse_and_subsumption_interact_in_one_pass():
    # Removing the subsumed "sub" edge makes q interchangeable with the
    # private tail vertices; everything collapses onto p1 in the same pass.
    h = Hypergraph(
        {
            "core": ["x", "y"],
            "tail": ["y", "p1", "p2", "q"],
            "sub": ["q", "y"],
        }
    )
    trace = simplify(h)
    assert {r.name for r in trace.removed_edges} == {"sub"}
    assert trace.collapsed_vertices == [
        CollapsedVertices(representative="p1", removed=("p2", "q"))
    ]
    result = LogKDecomposer(use_engine=False).decompose(trace.reduced, 1)
    assert result.success
    lifted = lift_decomposition(trace, result.decomposition)
    validate_hd(lifted)
    covered = set()
    for node in lifted.nodes():
        covered |= node.bag
    assert covered == h.vertices


def test_width_decision_is_preserved_by_simplification():
    # hw(reduced) == hw(original) in both directions, checked per k.
    cases = [
        Hypergraph({"big": ["a", "b", "c"], "sub": ["a", "b"], "e": ["c", "d"]}),
        generators.with_chords(generators.cycle(8), 2, seed=3),
        Hypergraph({"t1": ["x", "u1", "u2"], "t2": ["x", "y"], "t3": ["y", "z"]}),
    ]
    for h in cases:
        trace = simplify(h)
        for k in (1, 2, 3):
            raw = LogKDecomposer(use_engine=False).decompose(h, k).success
            red = LogKDecomposer(use_engine=False).decompose(trace.reduced, k).success
            assert raw == red, (h.edges_as_dict(), k)
