"""Unit tests for the det-k-decomp baseline."""

from __future__ import annotations

from repro.core import DetKDecomposer
from repro.core.base import SearchContext
from repro.core.detk import DetKSearch
from repro.decomp import validate_hd
from repro.decomp.extended import Comp
from repro.decomp.validation import validate_extended_hd
from repro.hypergraph import Hypergraph, generators


def test_positive_and_negative_answers(cycle10):
    assert DetKDecomposer().decompose(cycle10, 2).success
    assert not DetKDecomposer().decompose(cycle10, 1).success


def test_produces_valid_hd(grid23):
    result = DetKDecomposer().decompose(grid23, 2)
    assert result.success
    validate_hd(result.decomposition)
    assert result.decomposition.width <= 2


def test_acyclic_width_one(path5):
    result = DetKDecomposer().decompose(path5, 1)
    assert result.success
    validate_hd(result.decomposition)


def test_cache_is_used(cycle10):
    cached = DetKDecomposer(use_cache=True).decompose(cycle10, 2)
    uncached = DetKDecomposer(use_cache=False).decompose(cycle10, 2)
    assert cached.success and uncached.success
    # With caching enabled at least some subproblems should be reused on
    # instances with repeated structure.
    assert cached.statistics.cache_misses > 0
    assert uncached.statistics.cache_hits == 0


def test_cache_does_not_change_answers():
    for hypergraph in (generators.cycle(7), generators.grid(2, 3), generators.clique(4)):
        for k in (1, 2, 3):
            with_cache = DetKDecomposer(use_cache=True).decompose(hypergraph, k).success
            without_cache = DetKDecomposer(use_cache=False).decompose(hypergraph, k).success
            assert with_cache == without_cache


def test_recursion_depth_grows_linearly_on_cycles():
    # det-k-decomp constructs the HD strictly top-down, so its recursion depth
    # on a cycle grows linearly — the contrast to Theorem 4.1 for log-k-decomp.
    depths = {}
    for length in (8, 16, 32):
        result = DetKDecomposer().decompose(generators.cycle(length), 2)
        assert result.success
        depths[length] = result.statistics.max_recursion_depth
    assert depths[16] > depths[8]
    assert depths[32] > depths[16]
    assert depths[32] >= 32 / 2


def test_search_on_extended_subhypergraph_with_specials():
    # The hybrid hands subproblems with special edges to det-k-decomp; check
    # that the fragments it returns are valid HDs of the extended
    # subhypergraph (Definition 3.3).
    host = generators.cycle(8)
    special = host.vertices_to_mask(["x1", "x5"])
    comp = Comp(frozenset(range(1, 5)), (special,))
    conn = host.vertices_to_mask(["x1", "x2"])
    context = SearchContext(host, 2)
    fragment = DetKSearch(context).search(comp, conn)
    assert fragment is not None
    validate_extended_hd(host, comp, conn, fragment, k=2)


def test_search_refuses_impossible_specials():
    host = generators.cycle(6)
    specials = (
        host.vertices_to_mask(["x1", "x3"]),
        host.vertices_to_mask(["x4", "x6"]),
    )
    comp = Comp(frozenset(), specials)
    context = SearchContext(host, 2)
    assert DetKSearch(context).search(comp, conn=0) is None


def test_single_node_base_case():
    h = Hypergraph({"a": ["x", "y"], "b": ["y", "z"]})
    result = DetKDecomposer().decompose(h, 2)
    assert result.success
    assert len(result.decomposition) == 1


def test_timeouts_are_reported():
    result = DetKDecomposer(timeout=0.0).decompose(generators.clique(7), 3)
    assert result.timed_out


def test_cached_fragments_are_copied():
    # Cache hits must not alias fragment objects between different positions
    # in the final decomposition (the tree would become a DAG otherwise).
    host = generators.triangle_cascade(4)
    result = DetKDecomposer().decompose(host, 2)
    assert result.success
    nodes = list(result.decomposition.nodes())
    assert len({id(node) for node in nodes}) == len(nodes)
    validate_hd(result.decomposition)
