"""Unit tests for balanced separators, cov() and Lemma 3.10."""

from __future__ import annotations

from repro.core import LogKDecomposer, decompose
from repro.decomp.components import components
from repro.decomp.extended import Comp, FragmentNode, full_comp
from repro.decomp.separators import (
    cov,
    cov_subtree,
    find_balanced_separator,
    is_balanced_label,
    is_balanced_separator_node,
    largest_component_size,
    subtree_cov_sizes,
)
from repro.hypergraph import generators


def _fragment_for(hypergraph, k=2) -> FragmentNode:
    """Obtain a concrete HD of the hypergraph as a fragment tree.

    We rebuild a fragment from the node structure of a computed decomposition,
    which keeps these tests independent of the decomposer internals.
    """
    result = decompose(hypergraph, k, algorithm="detk")
    assert result.success

    def convert(node) -> FragmentNode:
        lam = tuple(sorted(hypergraph.edge_index(name) for name in node.cover))
        return FragmentNode(
            chi=hypergraph.vertices_to_mask(node.bag),
            lam_edges=lam,
            children=[convert(child) for child in node.children],
        )

    return convert(result.decomposition.root)


def test_cov_covers_every_edge_exactly_once():
    h = generators.cycle(8)
    fragment = _fragment_for(h)
    comp = full_comp(h)
    table = cov(h, comp, fragment)
    seen: set[object] = set()
    for items in table.values():
        assert not (seen & items)
        seen |= items
    assert seen == set(range(h.num_edges))


def test_cov_respects_ancestors():
    h = generators.cycle(6)
    fragment = _fragment_for(h)
    comp = full_comp(h)
    table = cov(h, comp, fragment)
    # The root covers its own bag's edges; they may not reappear deeper down.
    root_items = table[id(fragment)]
    for node in fragment.nodes():
        if node is fragment:
            continue
        assert not (table[id(node)] & root_items)


def test_find_balanced_separator_satisfies_definition():
    for h in [generators.cycle(10), generators.grid(2, 4), generators.triangle_cascade(4)]:
        fragment = _fragment_for(h)
        comp = full_comp(h)
        separator = find_balanced_separator(h, comp, fragment)
        assert is_balanced_separator_node(h, comp, fragment, separator)


def test_balanced_separator_always_exists_lemma_3_10():
    # Lemma 3.10: every HD of an extended subhypergraph has a balanced separator.
    for length in range(3, 14):
        h = generators.cycle(length)
        fragment = _fragment_for(h)
        comp = full_comp(h)
        separator = find_balanced_separator(h, comp, fragment)
        assert separator is not None
        assert is_balanced_separator_node(h, comp, fragment, separator)


def test_root_not_always_balanced():
    # A path decomposed strictly top-down by det-k has an unbalanced root for
    # long cycles: the root's single child subtree covers almost everything.
    h = generators.cycle(12)
    fragment = _fragment_for(h)
    comp = full_comp(h)
    if not is_balanced_separator_node(h, comp, fragment, fragment):
        separator = find_balanced_separator(h, comp, fragment)
        assert separator is not fragment


def test_is_balanced_label():
    h = generators.cycle(8)
    comp = full_comp(h)
    # A single edge cannot balance an 8-cycle (the rest stays connected).
    assert not is_balanced_label(h, comp, h.edge_bits(0))
    # Two opposite edges split it into two halves of 3 <= 4.
    separator = h.edge_bits(0) | h.edge_bits(4)
    assert is_balanced_label(h, comp, separator)
    assert largest_component_size(h, comp, separator) == 3


def test_largest_component_size_empty():
    h = generators.cycle(4)
    comp = Comp(frozenset(), ())
    assert largest_component_size(h, comp, 0) == 0


def test_logk_decomposition_contains_balanced_separator_nodes():
    # The decompositions produced by log-k-decomp are built around balanced
    # separators; check the definition holds for the fragment of the whole
    # hypergraph at the top level.
    h = generators.cycle(9)
    result = LogKDecomposer().decompose(h, 2)
    assert result.success

    def convert(node) -> FragmentNode:
        lam = tuple(sorted(h.edge_index(name) for name in node.cover))
        return FragmentNode(
            chi=h.vertices_to_mask(node.bag),
            lam_edges=lam,
            children=[convert(child) for child in node.children],
        )

    fragment = convert(result.decomposition.root)
    comp = full_comp(h)
    separator = find_balanced_separator(h, comp, fragment)
    assert is_balanced_separator_node(h, comp, fragment, separator)


def test_subtree_cov_sizes_match_set_computation():
    # The single post-order pass must agree with the set-union definition of
    # cov(T_u) at every node of the fragment.
    for h in [generators.cycle(9), generators.grid(2, 4), generators.triangle_cascade(4)]:
        fragment = _fragment_for(h)
        comp = full_comp(h)
        table = cov(h, comp, fragment)
        sizes = subtree_cov_sizes(h, comp, fragment, table=table)
        for node in fragment.nodes():
            assert sizes[id(node)] == len(cov_subtree(h, comp, fragment, node, table=table))
        # The root subtree covers every item of the component exactly once.
        assert sizes[id(fragment)] == comp.size


def test_is_balanced_separator_accepts_shared_sizes_table():
    h = generators.cycle(10)
    fragment = _fragment_for(h)
    comp = full_comp(h)
    sizes = subtree_cov_sizes(h, comp, fragment)
    for node in fragment.nodes():
        assert is_balanced_separator_node(h, comp, fragment, node, sizes=sizes) == (
            is_balanced_separator_node(h, comp, fragment, node)
        )


def test_balance_check_matches_components():
    h = generators.grid(2, 3)
    comp = full_comp(h)
    for index in range(h.num_edges):
        separator = h.edge_bits(index)
        expected = largest_component_size(h, comp, separator) <= comp.size / 2
        assert is_balanced_label(h, comp, separator) == expected
        comps = components(h, comp, separator)
        assert largest_component_size(h, comp, separator) == max(
            (c.size for c in comps), default=0
        )
