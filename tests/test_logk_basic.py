"""Unit tests for the basic log-k-decomp (Algorithm 1)."""

from __future__ import annotations

import math

from repro.core import LogKBasicDecomposer, LogKDecomposer
from repro.decomp import validate_hd
from repro.hypergraph import Hypergraph, generators


def test_positive_instance(cycle10):
    result = LogKBasicDecomposer().decompose(cycle10, 2)
    assert result.success
    validate_hd(result.decomposition)
    assert result.decomposition.width <= 2


def test_negative_instance(cycle10):
    assert not LogKBasicDecomposer().decompose(cycle10, 1).success


def test_acyclic_instance(path5):
    result = LogKBasicDecomposer().decompose(path5, 1)
    assert result.success
    validate_hd(result.decomposition)


def test_triangle(triangle):
    result = LogKBasicDecomposer().decompose(triangle, 2)
    assert result.success
    validate_hd(result.decomposition)


def test_small_base_case():
    # Algorithm 1 always guesses a root label first, so even a two-edge
    # hypergraph may yield a two-node HD; only validity and width matter.
    h = Hypergraph({"a": ["x", "y"], "b": ["y", "z"]})
    result = LogKBasicDecomposer().decompose(h, 2)
    assert result.success
    assert result.decomposition.width <= 2
    validate_hd(result.decomposition)


def test_agrees_with_optimised_variant_on_small_instances():
    cases = [
        (generators.cycle(5), 1),
        (generators.cycle(5), 2),
        (generators.grid(2, 3), 2),
        (generators.triangle_cascade(2), 2),
        (generators.star(4), 1),
        (generators.hypercycle(4, 3), 2),
    ]
    for hypergraph, k in cases:
        basic = LogKBasicDecomposer().decompose(hypergraph, k)
        optimised = LogKDecomposer().decompose(hypergraph, k)
        assert basic.success == optimised.success, (hypergraph.name, k)
        if basic.success:
            validate_hd(basic.decomposition)


def test_recursion_depth_is_logarithmic():
    for length in (8, 16):
        result = LogKBasicDecomposer().decompose(generators.cycle(length), 2)
        assert result.success
        bound = 3 * math.log2(length) + 4
        assert result.statistics.max_recursion_depth <= bound


def test_timeout_reported():
    result = LogKBasicDecomposer(timeout=0.0).decompose(generators.clique(6), 3)
    assert result.timed_out


def test_disconnected_instance():
    h = Hypergraph({"a": ["x", "y"], "b": ["p", "q"], "c": ["q", "r"], "d": ["r", "p"]})
    result = LogKBasicDecomposer().decompose(h, 2)
    assert result.success
    validate_hd(result.decomposition)
