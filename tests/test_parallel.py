"""Unit tests for the parallel search-space-partitioning backend."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import LogKDecomposer, ParallelLogKDecomposer
from repro.core.logk import LogKSearch
from repro.core.base import SearchContext
from repro.core.fragments import fragment_to_decomposition
from repro.core.parallel import _worker_search
from repro.decomp import validate_hd
from repro.decomp.covers import CoverEnumerator
from repro.decomp.extended import full_comp
from repro.exceptions import SolverError, TimeoutExceeded
from repro.hypergraph import generators


def test_rejects_bad_configuration():
    with pytest.raises(SolverError):
        ParallelLogKDecomposer(num_workers=0)
    with pytest.raises(SolverError):
        ParallelLogKDecomposer(backend="gpu")


def test_single_worker_falls_back_to_sequential(cycle10):
    result = ParallelLogKDecomposer(num_workers=1).decompose(cycle10, 2)
    assert result.success
    validate_hd(result.decomposition)


@pytest.mark.parametrize("backend", ["process", "thread"])
def test_parallel_positive_instance(backend, cycle10):
    decomposer = ParallelLogKDecomposer(num_workers=2, backend=backend, hybrid=False)
    result = decomposer.decompose(cycle10, 2)
    assert result.success
    assert result.decomposition is not None
    validate_hd(result.decomposition)
    assert result.decomposition.width <= 2


@pytest.mark.parametrize("backend", ["process", "thread"])
def test_parallel_negative_instance(backend, cycle6):
    decomposer = ParallelLogKDecomposer(num_workers=2, backend=backend)
    result = decomposer.decompose(cycle6, 1)
    assert not result.success
    assert not result.timed_out


def test_parallel_hybrid_mode(grid23):
    decomposer = ParallelLogKDecomposer(num_workers=2, hybrid=True, threshold=4)
    result = decomposer.decompose(grid23, 2)
    assert result.success
    validate_hd(result.decomposition)


def test_parallel_agrees_with_sequential():
    cases = [
        (generators.cycle(8), 1),
        (generators.cycle(8), 2),
        (generators.triangle_cascade(3), 2),
        (generators.clique(5), 2),
    ]
    for hypergraph, k in cases:
        sequential = LogKDecomposer().decompose(hypergraph, k).success
        parallel = ParallelLogKDecomposer(num_workers=3, hybrid=False).decompose(
            hypergraph, k
        )
        assert parallel.success == sequential


def test_partitioned_search_is_complete_unionwise(cycle10):
    """The union of the per-partition searches equals the full search.

    Worker i only explores top-level child labels whose smallest edge lies in
    partition i; here we check directly that for a positive instance at least
    one partition succeeds and for a negative one all partitions fail.
    """
    k_positive, k_negative = 2, 1
    enumerator = CoverEnumerator(cycle10, k_positive)
    partitions = enumerator.partition_first_edges(None, 3)

    def run(partition, k):
        context = SearchContext(cycle10, k)
        search = LogKSearch(context, root_partition=partition)
        fragment = search.search(
            full_comp(cycle10), conn=0, allowed=frozenset(range(cycle10.num_edges))
        )
        return fragment

    positives = [run(p, k_positive) for p in partitions]
    assert any(fragment is not None for fragment in positives)
    for fragment in positives:
        if fragment is not None:
            validate_hd(fragment_to_decomposition(cycle10, fragment))

    negatives = [run(p, k_negative) for p in partitions]
    assert all(fragment is None for fragment in negatives)


def test_worker_statistics_are_merged(cycle10):
    result = ParallelLogKDecomposer(num_workers=2, hybrid=False).decompose(cycle10, 2)
    assert result.statistics.recursive_calls > 0


# --------------------------------------------------------------------------- #
# cooperative cancellation (thread backend)
# --------------------------------------------------------------------------- #
def test_search_context_honours_cancel_event(cycle10):
    event = threading.Event()
    context = SearchContext(cycle10, 2, cancel_event=event)
    for _ in range(200):
        context.check_timeout()  # not set: never raises
    event.set()
    with pytest.raises(TimeoutExceeded):
        context.force_timeout_check()
    with pytest.raises(TimeoutExceeded):
        for _ in range(200):  # throttled check trips within one stride
            context.check_timeout()


def test_cancelled_worker_aborts_quickly():
    # A refutation on a large chorded cycle takes far longer than 0.5 s; a
    # pre-set cancellation event must make the worker bail out almost
    # immediately, reporting "no answer" (timed_out) rather than a refutation.
    hard = generators.with_chords(generators.cycle(60), 5, seed=4)
    event = threading.Event()
    event.set()
    start = time.monotonic()
    timed_out, success, fragment, _stats = _worker_search(
        hard.edges_as_dict(),
        hard.name,
        2,
        list(range(hard.num_edges)),
        None,
        False,
        "WeightedCount",
        400.0,
        cancel_event=event,
    )
    assert time.monotonic() - start < 0.5
    assert timed_out and not success and fragment is None


def test_thread_backend_sets_cancel_event_on_success(cycle10, monkeypatch):
    # Observe the cancellation event the coordinator hands to its workers.
    from repro.core import parallel as parallel_module

    seen: list[threading.Event] = []
    original = parallel_module._worker_search

    def spy(*args, cancel_event=None, **kwargs):
        if cancel_event is not None:
            seen.append(cancel_event)
        return original(*args, cancel_event=cancel_event, **kwargs)

    monkeypatch.setattr(parallel_module, "_worker_search", spy)
    # use_engine=False: the engine's result cache could otherwise answer from
    # an earlier test without ever starting workers.
    decomposer = ParallelLogKDecomposer(
        num_workers=2, backend="thread", hybrid=False, use_engine=False
    )
    result = decomposer.decompose(cycle10, 2)
    assert result.success
    assert seen and all(event is seen[0] for event in seen)
    assert seen[0].is_set()


# --------------------------------------------------------------------------- #
# worker supervision: crash detection, respawn, abandonment
# --------------------------------------------------------------------------- #
def test_killed_process_worker_is_respawned_and_run_succeeds(cycle10):
    from repro import faults

    # Every first-attempt worker is OOM-killed at startup; the supervisor
    # must detect the silent deaths, respawn each partition once, and the
    # replacements (attempt 1 no longer matches the rule) decide the run.
    rule = faults.FaultRule(point="parallel.worker", kill=True, where={"attempt": 0})
    decomposer = ParallelLogKDecomposer(num_workers=2, hybrid=False, use_engine=False)
    with faults.injected(rule):
        result = decomposer.decompose_raw(cycle10, 2)
    assert result.success
    assert not result.timed_out
    validate_hd(result.decomposition)
    assert result.statistics.worker_respawns == 2


def test_respawn_budget_exhausted_degrades_to_undecided(cycle10):
    from repro import faults
    from repro.core.parallel import ParallelLogKDecomposer as P

    # Every attempt dies: after the per-slot budget the partitions are
    # abandoned and the run reports undecided (timed out), not a wrong "no".
    rule = faults.FaultRule(point="parallel.worker", kill=True)
    decomposer = ParallelLogKDecomposer(num_workers=2, hybrid=False, use_engine=False)
    with faults.injected(rule):
        result = decomposer.decompose_raw(cycle10, 2)
    assert not result.success
    assert result.timed_out
    assert result.statistics.worker_respawns == 2 * P._MAX_RESPAWNS_PER_SLOT
