"""Unit tests for extended subhypergraphs, Comp records and fragment nodes."""

from __future__ import annotations

import pytest

from repro.decomp.extended import Comp, ExtendedSubhypergraph, FragmentNode, full_comp
from repro.exceptions import DecompositionError
from repro.hypergraph import Hypergraph


@pytest.fixture
def host() -> Hypergraph:
    return Hypergraph(
        {"a": ["x", "y"], "b": ["y", "z"], "c": ["z", "w"], "d": ["w", "x"]},
        name="square",
    )


def test_full_comp(host):
    comp = full_comp(host)
    assert comp.edges == frozenset(range(4))
    assert comp.specials == ()
    assert comp.size == 4
    assert not comp.is_empty


def test_comp_specials_are_sorted():
    comp = Comp(frozenset({0}), (5, 3, 9))
    assert comp.specials == (3, 5, 9)


def test_comp_with_special(host):
    comp = full_comp(host)
    extended = comp.with_special(0b11)
    assert extended.specials == (0b11,)
    assert extended.size == 5
    # the original is unchanged (immutability)
    assert comp.specials == ()


def test_comp_difference(host):
    comp = Comp(frozenset({0, 1, 2}), (0b1, 0b10))
    other = Comp(frozenset({1}), (0b1,))
    diff = comp.difference(other)
    assert diff.edges == frozenset({0, 2})
    assert diff.specials == (0b10,)


def test_comp_difference_with_duplicate_specials():
    comp = Comp(frozenset(), (0b1, 0b1))
    diff = comp.difference(Comp(frozenset(), (0b1,)))
    assert diff.specials == (0b1,)


def test_comp_vertices(host):
    comp = Comp(frozenset({0, 1}), (host.vertices_to_mask(["w"]),))
    names = host.mask_to_vertices(comp.vertices(host))
    assert names == {"x", "y", "z", "w"}


def test_comp_hashable(host):
    a = Comp(frozenset({0, 1}), (3,))
    b = Comp(frozenset({1, 0}), (3,))
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_extended_subhypergraph_whole(host):
    ext = ExtendedSubhypergraph.whole(host)
    assert ext.edges == frozenset(host.edge_names)
    assert ext.size == 4
    assert ext.vertices == host.vertices


def test_extended_subhypergraph_roundtrip(host):
    ext = ExtendedSubhypergraph(
        host,
        frozenset({"a", "b"}),
        frozenset({frozenset({"w", "x"})}),
        frozenset({"y"}),
    )
    comp = ext.to_comp()
    assert comp.edges == {host.edge_index("a"), host.edge_index("b")}
    assert len(comp.specials) == 1
    back = ExtendedSubhypergraph.from_comp(host, comp, ext.conn_mask())
    assert back.edges == ext.edges
    assert back.specials == ext.specials
    assert back.conn == ext.conn


def test_extended_subhypergraph_validation(host):
    with pytest.raises(DecompositionError):
        ExtendedSubhypergraph(host, frozenset({"zz"}))
    with pytest.raises(DecompositionError):
        ExtendedSubhypergraph(host, frozenset({"a"}), frozenset({frozenset()}))
    with pytest.raises(DecompositionError):
        ExtendedSubhypergraph(host, frozenset({"a"}), conn=frozenset({"nope"}))
    with pytest.raises(DecompositionError):
        ExtendedSubhypergraph(
            host, frozenset({"a"}), frozenset({frozenset({"unknown"})})
        )


def test_fragment_node_basics(host):
    special = host.vertices_to_mask(["x", "y"])
    leaf = FragmentNode(chi=special, special=special)
    assert leaf.is_special_leaf
    assert leaf.width == 1
    node = FragmentNode(chi=host.edge_bits(0), lam_edges=(0,), children=[leaf])
    assert not node.is_special_leaf
    assert node.width == 1
    assert len(list(node.nodes())) == 2
    assert node.special_leaves() == [leaf]
    assert node.max_width() == 1


def test_fragment_node_invalid_combinations(host):
    with pytest.raises(DecompositionError):
        FragmentNode(chi=1, lam_edges=(0,), special=1)
    with pytest.raises(DecompositionError):
        FragmentNode(chi=3, special=1)


def test_fragment_copy_is_deep(host):
    leaf = FragmentNode(chi=1, special=1)
    node = FragmentNode(chi=host.edge_bits(0), lam_edges=(0,), children=[leaf])
    clone = node.copy()
    clone.children[0].chi = 2
    clone.children[0].special = 2
    assert leaf.chi == 1


def test_fragment_describe_mentions_edges(host):
    node = FragmentNode(chi=host.edge_bits(0), lam_edges=(0,))
    text = node.describe(host)
    assert "a" in text
    assert "χ" in text


def test_fragment_lambda_union(host):
    node = FragmentNode(chi=host.edge_bits(0), lam_edges=(0, 1))
    assert node.lambda_union(host) == host.edge_bits(0) | host.edge_bits(1)
    leaf = FragmentNode(chi=5, special=5)
    assert leaf.lambda_union(host) == 5
