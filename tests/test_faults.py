"""Unit tests for the fault-injection framework and resilience primitives."""

import pickle
import sqlite3
import threading
import time

import pytest

from repro import faults
from repro.exceptions import ServiceError
from repro.faults import CircuitBreaker, FaultInjector, FaultRule, RetryPolicy
from repro.hypergraph.cq import parse_conjunctive_query
from repro.pipeline.engine import DecompositionEngine
from repro.query import QueryEngine, random_database_for_query
from repro.query.database import Database
from repro.service import DecompositionService


# --------------------------------------------------------------------------- #
# FaultRule
# --------------------------------------------------------------------------- #
def test_rule_requires_an_action():
    with pytest.raises(ValueError):
        FaultRule(point="x")


def test_rule_rejects_bad_probability():
    with pytest.raises(ValueError):
        FaultRule(point="x", error=RuntimeError, probability=1.5)


def test_rule_glob_matching():
    rule = FaultRule(point="catalog.*", error=RuntimeError)
    assert rule.matches("catalog.get", {})
    assert rule.matches("catalog.put", {})
    assert not rule.matches("service.worker", {})


def test_rule_where_context_filter():
    rule = FaultRule(
        point="parallel.worker", error=RuntimeError, where={"slot": 0, "attempt": 0}
    )
    assert rule.matches("parallel.worker", {"slot": 0, "attempt": 0})
    assert not rule.matches("parallel.worker", {"slot": 1, "attempt": 0})
    assert not rule.matches("parallel.worker", {"slot": 0, "attempt": 1})
    assert not rule.matches("parallel.worker", {})


# --------------------------------------------------------------------------- #
# FaultInjector
# --------------------------------------------------------------------------- #
def test_injector_raises_fresh_twin_of_error_instance():
    template = RuntimeError("boom")
    injector = FaultInjector([FaultRule(point="p", error=template)])
    with pytest.raises(RuntimeError, match="boom") as first:
        injector.fire("p")
    with pytest.raises(RuntimeError, match="boom") as second:
        injector.fire("p")
    assert first.value is not template
    assert first.value is not second.value  # every firing gets its own twin


def test_injector_error_class_gets_descriptive_message():
    injector = FaultInjector([FaultRule(point="p", error=ValueError)])
    with pytest.raises(ValueError, match="injected fault at 'p'"):
        injector.fire("p")


def test_times_bounds_the_schedule():
    injector = FaultInjector([FaultRule(point="p", error=RuntimeError, times=2)])
    for _ in range(2):
        with pytest.raises(RuntimeError):
            injector.fire("p")
    injector.fire("p")  # schedule exhausted: recovery path runs
    assert injector.injected_counts() == {"p": 2}
    assert injector.point_hits() == {"p": 3}


def test_skip_lets_early_hits_pass():
    injector = FaultInjector([FaultRule(point="p", error=RuntimeError, skip=2, times=1)])
    injector.fire("p")
    injector.fire("p")
    with pytest.raises(RuntimeError):
        injector.fire("p")
    injector.fire("p")
    assert injector.total_injected() == 1


def test_probability_is_seed_deterministic():
    def decisions(seed):
        injector = FaultInjector(
            [FaultRule(point="p", error=RuntimeError, probability=0.5)], seed=seed
        )
        outcome = []
        for _ in range(32):
            try:
                injector.fire("p")
                outcome.append(False)
            except RuntimeError:
                outcome.append(True)
        return outcome

    assert decisions(7) == decisions(7)
    assert any(decisions(7)) and not all(decisions(7))
    assert decisions(7) != decisions(8)


def test_disabled_global_fire_is_a_no_op():
    assert faults.installed() is None
    faults.fire("anything.at.all", context=1)  # must not raise


def test_injected_context_manager_installs_and_restores():
    rule = FaultRule(point="p", error=RuntimeError, times=1)
    with faults.injected(rule) as injector:
        assert faults.installed() is injector
        with pytest.raises(RuntimeError):
            faults.fire("p")
        # Nested blocks restore the outer injector, not None.
        with faults.injected(FaultRule(point="q", error=ValueError)) as inner:
            assert faults.installed() is inner
        assert faults.installed() is injector
    assert faults.installed() is None


def test_spec_round_trip_is_picklable_and_equivalent():
    rules = (
        FaultRule(point="a.*", error=RuntimeError("x"), times=1),
        FaultRule(point="b", delay=0.001, probability=0.5, where={"slot": 1}),
    )
    injector = FaultInjector(rules, seed=42)
    spec = pickle.loads(pickle.dumps(injector.spec()))
    clone = FaultInjector.from_spec(spec)
    assert clone.seed == 42
    # Exception instances compare by identity, so compare rule fields.
    first, second = clone.rules
    assert (first.point, type(first.error), first.error.args, first.times) == (
        "a.*",
        RuntimeError,
        ("x",),
        1,
    )
    assert (second.point, second.delay, second.probability, second.where) == (
        "b",
        0.001,
        0.5,
        (("slot", 1),),
    )


def test_current_spec_none_when_disabled():
    assert faults.current_spec() is None
    faults.install_spec(None)  # no-op
    assert faults.installed() is None


# --------------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------------- #
def test_retry_delays_are_capped_exponential_and_deterministic():
    policy = RetryPolicy(max_retries=4, backoff_base=0.1, backoff_cap=0.3, jitter=0.0)
    assert list(policy.delays()) == [0.1, 0.2, 0.3, 0.3]
    jittered = RetryPolicy(max_retries=3, backoff_base=0.1, backoff_cap=10.0, jitter=0.5)
    first, second = list(jittered.delays()), list(jittered.delays())
    assert first == second  # seeded jitter reproduces
    for attempt, delay in enumerate(first):
        base = 0.1 * 2**attempt
        assert base <= delay <= base * 1.5


def test_retry_call_retries_then_raises():
    policy = RetryPolicy(max_retries=2, backoff_base=0.0, jitter=0.0)
    attempts = []

    def flaky():
        attempts.append(1)
        raise OSError("transient")

    slept = []
    with pytest.raises(OSError):
        policy.call(flaky, retry_on=(OSError,), sleep=slept.append)
    assert len(attempts) == 3  # initial try + 2 retries
    assert len(slept) == 2


def test_retry_call_recovers_mid_sequence():
    policy = RetryPolicy(max_retries=3, backoff_base=0.0, jitter=0.0)
    state = {"left": 2}

    def flaky():
        if state["left"]:
            state["left"] -= 1
            raise OSError("transient")
        return "ok"

    assert policy.call(flaky, retry_on=(OSError,), sleep=lambda _t: None) == "ok"


# --------------------------------------------------------------------------- #
# CircuitBreaker
# --------------------------------------------------------------------------- #
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_opens_after_threshold_and_probes_after_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, reset_interval=10.0, clock=clock)
    assert breaker.state == "closed"
    assert not breaker.record_failure()
    assert not breaker.record_failure()
    assert breaker.record_failure()  # third consecutive failure opens
    assert breaker.state == "open"
    assert not breaker.allow()  # cooldown not elapsed
    clock.now = 11.0
    assert breaker.allow()  # the half-open probe
    assert breaker.state == "half_open"
    assert not breaker.allow()  # concurrent callers refused mid-probe
    breaker.record_success()
    assert breaker.state == "closed"
    snapshot = breaker.as_dict()
    assert snapshot["opens"] == 1
    assert snapshot["probes"] == 1
    assert snapshot["reattaches"] == 1


def test_breaker_success_resets_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=2, reset_interval=10.0, clock=FakeClock())
    breaker.record_failure()
    breaker.record_success()
    assert not breaker.record_failure()  # count restarted
    assert breaker.state == "closed"


def test_breaker_half_open_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_interval=5.0, clock=clock)
    breaker.record_failure()
    clock.now = 6.0
    assert breaker.allow()
    assert breaker.record_failure()  # probe failed: straight back to open
    assert breaker.state == "open"
    clock.now = 7.0
    assert not breaker.allow()  # cooldown was re-stamped at the failed probe


def test_breaker_force_probe_bypasses_cooldown():
    breaker = CircuitBreaker(failure_threshold=1, reset_interval=1e9, clock=FakeClock())
    breaker.trip()
    assert not breaker.allow()
    assert breaker.allow(force_probe=True)
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.as_dict()["reattaches"] == 1


def test_breaker_trip_is_idempotent():
    breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
    breaker.trip()
    breaker.trip()
    assert breaker.as_dict()["opens"] == 1
    assert breaker.state == "open"


# --------------------------------------------------------------------------- #
# SQL pushdown fault points (sqlgen.connect / sqlgen.exec)
# --------------------------------------------------------------------------- #
_SQL_QUERY = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z), t(z,x).")


def _sql_database():
    return random_database_for_query(
        _SQL_QUERY, domain_size=4, tuples_per_relation=12, seed=3
    )


def _fresh_engine():
    return QueryEngine(engine=DecompositionEngine(cache=False))


def test_sql_transient_exec_faults_are_retried_invisibly():
    # Every statement runs on an autocommit connection, so a failed one
    # changed nothing and the per-statement retry hides transient errors.
    database = _sql_database()
    expected = _fresh_engine().execute(_SQL_QUERY, database, "enumerate", executor="columnar")
    rule = FaultRule(
        point="sqlgen.exec", error=sqlite3.OperationalError("disk I/O error"), times=2
    )
    with faults.injected(rule) as injector:
        result = _fresh_engine().execute(_SQL_QUERY, database, "enumerate", executor="sql")
    assert injector.total_injected() == 2
    assert result.answers.as_dicts() == expected.answers.as_dicts()


def test_sql_transient_connect_fault_is_retried_invisibly():
    database = _sql_database()
    expected = _fresh_engine().execute(_SQL_QUERY, database, "count", executor="columnar")
    rule = FaultRule(
        point="sqlgen.connect",
        error=sqlite3.OperationalError("unable to open database file"),
        times=1,
    )
    with faults.injected(rule) as injector:
        result = _fresh_engine().execute(_SQL_QUERY, database, "count", executor="sql")
    assert injector.total_injected() == 1
    assert result.count == expected.count


def test_sql_exec_fault_outlasting_retries_surfaces():
    # Three attempts (initial + 2 retries) all injected: the error escapes.
    database = _sql_database()
    rule = FaultRule(
        point="sqlgen.exec", error=sqlite3.OperationalError("disk I/O error"), times=5
    )
    with faults.injected(rule) as injector:
        with pytest.raises(sqlite3.OperationalError, match="disk I/O error"):
            _fresh_engine().execute(_SQL_QUERY, database, "boolean", executor="sql")
    assert injector.injected_counts()["sqlgen.exec"] == 3


class _GatedRelation:
    """Relation double whose tuples block until released.

    ``Database.add`` only reads ``name``; the SQL store reads ``tuples``
    when it first bulk-loads the base table, which happens inside the
    running execution — so a service query against this relation is
    reliably *started* (and inside the SQL executor) while gated.
    """

    def __init__(self, inner, started: threading.Event, release: threading.Event):
        self._inner = inner
        self._started = started
        self._release = release
        self.name = inner.name
        self.schema = inner.schema

    @property
    def tuples(self):
        self._started.set()
        assert self._release.wait(timeout=30)
        return self._inner.tuples


def test_sql_interrupt_during_query_counts_cancelled_running():
    # Cancelling a running SQL execution goes through the connection's
    # interrupt handle and must book exactly one ``cancelled_running``.
    started, release = threading.Event(), threading.Event()
    real = _sql_database()
    database = Database()
    database.add(_GatedRelation(real.get("r"), started, release))
    for name in ("s", "t"):
        database.add(real.get(name))
    svc = DecompositionService(num_workers=2, engine=DecompositionEngine(cache=False))
    try:
        ticket = svc.submit_query(_SQL_QUERY, database, "enumerate", executor="sql")
        assert started.wait(timeout=10)  # execution is inside the bulk load
        assert ticket.cancel() is True
        release.set()  # the executor resumes, then sees the event and aborts
        with pytest.raises(ServiceError):
            ticket.result(timeout=30)
        deadline = time.monotonic() + 10
        while svc.stats().cancelled == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        stats = svc.stats()
        assert stats.cancelled == 1
        assert stats.cancelled_running == 1  # aborted mid-execution, not queued
        # The store stays usable: the same service keeps answering afterwards.
        again = svc.submit_query(_SQL_QUERY, real, "boolean", executor="sql")
        assert again.result(timeout=30).boolean in (True, False)
    finally:
        svc.shutdown(wait=True, cancel_pending=True)
