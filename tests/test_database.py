"""Unit tests for the relation catalogue and random database generation."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.hypergraph.cq import parse_conjunctive_query
from repro.query.database import Database, random_database_for_query
from repro.query.relation import Relation


def test_add_and_get():
    db = Database([Relation("r", ("a",), [(1,)])])
    assert "r" in db
    assert len(db) == 1
    assert db.get("r").name == "r"
    assert db.relation_names() == ["r"]
    assert db.total_tuples() == 1


def test_duplicate_relation_rejected():
    db = Database([Relation("r", ("a",), [])])
    with pytest.raises(QueryError):
        db.add(Relation("r", ("b",), []))


def test_unknown_relation_raises():
    with pytest.raises(QueryError):
        Database().get("missing")


def test_random_database_matches_query_schema():
    query = parse_conjunctive_query("ans(x) :- r(x,y), s(y,z,w), r(z,x).")
    db = random_database_for_query(query, domain_size=3, tuples_per_relation=5, seed=1)
    assert "r" in db and "s" in db
    assert len(db.get("s").schema) == 3
    assert len(db.get("r").schema) == 2
    assert all(len(db.get(name)) <= 5 for name in db.relation_names())


def test_random_database_is_deterministic():
    query = parse_conjunctive_query("r(x,y), s(y,z).")
    a = random_database_for_query(query, seed=5)
    b = random_database_for_query(query, seed=5)
    assert a.get("r") == b.get("r")
    assert a.get("s") == b.get("s")


def test_random_database_with_domains():
    query = parse_conjunctive_query("r(x,y).")
    db = random_database_for_query(
        query, seed=0, domains={"x": ["a", "b"], "y": [1]}
    )
    for row in db.get("r"):
        assert row[0] in {"a", "b"}
        assert row[1] == 1
