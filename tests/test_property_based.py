"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import DetKDecomposer, LogKDecomposer
from repro.decomp import validate_hd
from repro.decomp.components import components, covered_items
from repro.decomp.extended import full_comp
from repro.hypergraph import Hypergraph
from repro.hypergraph.properties import is_alpha_acyclic
from repro.pipeline import DecompositionEngine, ResultCache, lift_decomposition, simplify
from repro.query.relation import Relation


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
_vertices = st.sampled_from([f"v{i}" for i in range(8)])

_small_hypergraphs = st.lists(
    st.frozensets(_vertices, min_size=1, max_size=3), min_size=1, max_size=7
).map(lambda edges: Hypergraph({f"e{i}": sorted(vs) for i, vs in enumerate(edges)}))

_relation_rows = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12
)


# --------------------------------------------------------------------------- #
# components
# --------------------------------------------------------------------------- #
@given(_small_hypergraphs, st.sets(st.integers(0, 7), max_size=4))
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_components_partition_the_uncovered_edges(hypergraph, vertex_ids):
    separator = 0
    for vid in vertex_ids:
        if vid < hypergraph.num_vertices:
            separator |= 1 << vid
    comp = full_comp(hypergraph)
    parts = components(hypergraph, comp, separator)
    covered = covered_items(hypergraph, comp, separator)
    seen: set[int] = set(covered.edges)
    for part in parts:
        assert not (seen & part.edges), "components must be disjoint"
        seen |= part.edges
    assert seen == comp.edges
    # Each component's vertices outside the separator are disjoint from the
    # other components' vertices (otherwise they would be [U]-connected).
    outside = [part.vertices(hypergraph) & ~separator for part in parts]
    for i, a in enumerate(outside):
        for b in outside[i + 1:]:
            assert a & b == 0


# --------------------------------------------------------------------------- #
# decomposition correctness on random hypergraphs
# --------------------------------------------------------------------------- #
@given(_small_hypergraphs)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_logk_results_are_always_valid_hds(hypergraph):
    result = LogKDecomposer().decompose(hypergraph, 2)
    if result.success:
        validate_hd(result.decomposition)
        assert result.decomposition.width <= 2


@given(_small_hypergraphs)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_logk_and_detk_agree(hypergraph):
    for k in (1, 2):
        assert (
            LogKDecomposer().decompose(hypergraph, k).success
            == DetKDecomposer().decompose(hypergraph, k).success
        )


@given(_small_hypergraphs)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_acyclicity_matches_width_one(hypergraph):
    # GYO acyclicity and hw = 1 are equivalent characterisations.
    assert is_alpha_acyclic(hypergraph) == DetKDecomposer().decompose(hypergraph, 1).success


@given(_small_hypergraphs)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_success_is_monotone_in_k(hypergraph):
    previous = False
    for k in (1, 2, 3):
        current = LogKDecomposer().decompose(hypergraph, k).success
        assert current or not previous  # once True it must stay True
        previous = current or previous


# --------------------------------------------------------------------------- #
# pipeline: simplification, lifting, engine equivalence
# --------------------------------------------------------------------------- #
@given(_small_hypergraphs)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_simplify_decompose_lift_yields_valid_hd_on_original(hypergraph):
    trace = simplify(hypergraph)
    for k in (1, 2):
        reduced_result = LogKDecomposer(use_engine=False).decompose(trace.reduced, k)
        raw_result = LogKDecomposer(use_engine=False).decompose(hypergraph, k)
        # Simplification is width-preserving: same yes/no answer at every k.
        assert reduced_result.success == raw_result.success
        if reduced_result.success:
            lifted = lift_decomposition(trace, reduced_result.decomposition)
            assert lifted.hypergraph is hypergraph
            validate_hd(lifted)
            assert lifted.width <= k


@given(_small_hypergraphs)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_engine_agrees_with_raw_search(hypergraph):
    engine = DecompositionEngine(cache=ResultCache())
    for k in (1, 2):
        on = LogKDecomposer(engine=engine).decompose(hypergraph, k)
        off = LogKDecomposer(use_engine=False).decompose(hypergraph, k)
        assert on.success == off.success
        if on.success:
            validate_hd(on.decomposition)
            assert on.decomposition.hypergraph is hypergraph


@given(_small_hypergraphs)
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_canonical_hash_is_edge_order_invariant(hypergraph):
    edges = list(hypergraph.edges_as_dict().items())
    permuted = Hypergraph(dict(reversed(edges)), name="permuted")
    assert permuted.canonical_hash() == hypergraph.canonical_hash()


# --------------------------------------------------------------------------- #
# relation algebra
# --------------------------------------------------------------------------- #
@given(_relation_rows, _relation_rows)
@settings(max_examples=60)
def test_join_commutativity(rows_a, rows_b):
    a = Relation("a", ("x", "y"), rows_a)
    b = Relation("b", ("y", "z"), rows_b)
    assert a.natural_join(b).as_dicts() == b.natural_join(a).as_dicts()


@given(_relation_rows, _relation_rows)
@settings(max_examples=60)
def test_semijoin_is_projection_of_join(rows_a, rows_b):
    a = Relation("a", ("x", "y"), rows_a)
    b = Relation("b", ("y", "z"), rows_b)
    reduced = a.semijoin(b)
    joined = a.natural_join(b)
    expected = joined.project(["x", "y"]) if len(joined) else Relation("e", ("x", "y"), [])
    assert reduced.as_dicts() == expected.as_dicts()


@given(_relation_rows)
@settings(max_examples=40)
def test_projection_idempotent(rows):
    a = Relation("a", ("x", "y"), rows)
    once = a.project(["x"])
    twice = once.project(["x"])
    assert once.as_dicts() == twice.as_dicts()
    assert len(once) <= len(a)
