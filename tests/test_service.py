"""Tests for the concurrent serving layer (:mod:`repro.service`)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.base import Decomposer, SearchContext
from repro.decomp import validate_hd
from repro.exceptions import ServiceError, TimeoutExceeded
from repro.hypergraph import generators
from repro.hypergraph.cq import parse_conjunctive_query
from repro.pipeline.engine import DecompositionEngine
from repro.pipeline.registry import registry
from repro.query import evaluate_query, random_database_for_query
from repro.service import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    DecompositionService,
)


@pytest.fixture
def service():
    svc = DecompositionService(num_workers=4, engine=DecompositionEngine())
    yield svc
    svc.shutdown(wait=True, cancel_pending=True)


class _BlockingDecomposer(Decomposer):
    """Test double: blocks on a gate, honouring cancellation, then succeeds."""

    name = "blocking-test"

    def __init__(self, gate, log, timeout=None, tag="", **engine_options):
        super().__init__(timeout=timeout, **engine_options)
        self.gate = gate
        self.log = log
        self.tag = tag

    def _run(self, context: SearchContext):
        while not self.gate.wait(0.005):
            context.force_timeout_check()  # raises on cancel or deadline
        self.log.append(self.tag)
        from repro.core.detk import DetKDecomposer

        return DetKDecomposer(use_engine=False).decompose_raw(
            context.host, context.k
        ).decomposition


@pytest.fixture
def blocking_algorithm():
    """Registers the blocking decomposer; yields (gate, completion log)."""
    gate = threading.Event()
    log: list[str] = []
    registry.register(
        "blocking-test",
        factory=lambda **options: _BlockingDecomposer(gate, log, **options),
    )
    try:
        yield gate, log
    finally:
        gate.set()
        registry.unregister("blocking-test")


# --------------------------------------------------------------------------- #
# basic serving behaviour
# --------------------------------------------------------------------------- #
def test_submit_returns_valid_decomposition(service, cycle10):
    result = service.submit(cycle10, 2).result(timeout=30)
    assert result.success
    assert result.decomposition.hypergraph is cycle10
    validate_hd(result.decomposition)


def test_negative_answer_served(service, cycle10):
    assert service.submit(cycle10, 1).result(timeout=30).success is False


def test_map_preserves_order(service):
    instances = [generators.cycle(n) for n in (4, 6, 8, 10)]
    results = service.map(instances, 2)
    assert [r.hypergraph for r in results] == instances
    assert all(r.success for r in results)


def test_repeat_submission_hits_fast_path(service, cycle10):
    first = service.submit(cycle10, 2)
    first.result(timeout=30)
    second = service.submit(cycle10, 2)
    assert second.done()  # served from the completed-result memo at submit
    assert second.result().success
    stats = service.stats()
    assert stats.fast_path_hits >= 1
    assert stats.computations_by_kind.get("decompose") == 1


def test_object_valued_options_are_never_shared(service, cycle10):
    # configuration_key collapses object values to their type name, so two
    # differently-parameterized metric instances would collide; the service
    # must bypass dedup/memoization for such requests.
    from repro.core.hybrid import EdgeCountMetric

    first = service.submit(cycle10, 2, algorithm="hybrid", metric=EdgeCountMetric())
    second = service.submit(cycle10, 2, algorithm="hybrid", metric=EdgeCountMetric())
    assert first.result(timeout=30).success and second.result(timeout=30).success
    stats = service.stats()
    assert stats.computations_by_kind["decompose"] == 2  # no sharing
    assert stats.coalesced == 0 and stats.fast_path_hits == 0


def test_submit_query_modes_agree(service):
    query = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z), t(z,x).")
    database = random_database_for_query(query, domain_size=6, tuples_per_relation=30)
    enum = service.submit_query(query, database, "enumerate").result(timeout=30)
    boolean = service.submit_query(query, database, "boolean").result(timeout=30)
    count = service.submit_query(query, database, "count").result(timeout=30)
    reference = evaluate_query(query, database, executor="eager")
    assert enum.answers.as_dicts() == reference.answers.as_dicts()
    assert count.count == len(reference.answers)
    assert boolean.boolean == (len(reference.answers) > 0)


def test_query_priorities_by_mode(service):
    query = parse_conjunctive_query("ans(x) :- r(x,y), s(y,x).")
    database = random_database_for_query(query)
    bulk = service.submit_query(query, database, "enumerate")
    urgent = service.submit_query(query, database, "boolean")
    assert bulk._task.priority == PRIORITY_BULK
    assert urgent._task.priority == PRIORITY_INTERACTIVE
    bulk.result(timeout=30), urgent.result(timeout=30)


def test_submit_after_shutdown_raises(cycle6):
    svc = DecompositionService(num_workers=1, engine=DecompositionEngine())
    svc.shutdown(wait=True)
    with pytest.raises(ServiceError):
        svc.submit(cycle6, 2)


# --------------------------------------------------------------------------- #
# dedup, scheduling, cancellation, timeouts
# --------------------------------------------------------------------------- #
def test_concurrent_duplicates_computed_exactly_once(blocking_algorithm, cycle6):
    gate, log = blocking_algorithm
    svc = DecompositionService(
        num_workers=4, engine=DecompositionEngine(cache=False), algorithm="blocking-test"
    )
    try:
        tickets = [svc.submit(cycle6, 2) for _ in range(12)]
        assert svc.stats().coalesced == 11
        gate.set()
        results = [t.result(timeout=30) for t in tickets]
        assert len(set(id(r) for r in results)) == 1  # one shared outcome
        assert results[0].success
        validate_hd(results[0].decomposition)
        assert len(log) == 1  # the search ran exactly once
        assert svc.stats().computations == 1
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


def test_priority_queue_orders_pending_work(blocking_algorithm):
    gate, log = blocking_algorithm
    svc = DecompositionService(
        num_workers=1, engine=DecompositionEngine(cache=False), algorithm="blocking-test"
    )
    try:
        blocker = svc.submit(generators.cycle(4), 2, tag="blocker")
        # Wait until the single worker is busy on the blocker so the next
        # submissions queue up behind it.
        deadline = time.monotonic() + 5
        while svc.stats().computations == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        bulk = svc.submit(generators.cycle(6), 2, priority=PRIORITY_BULK, tag="bulk")
        urgent = svc.submit(
            generators.cycle(8), 2, priority=PRIORITY_INTERACTIVE, tag="urgent"
        )
        gate.set()
        for ticket in (blocker, bulk, urgent):
            assert ticket.result(timeout=30).success
        assert log == ["blocker", "urgent", "bulk"]
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


def test_coalescing_escalates_priority_of_queued_task(blocking_algorithm):
    gate, log = blocking_algorithm
    svc = DecompositionService(
        num_workers=1, engine=DecompositionEngine(cache=False), algorithm="blocking-test"
    )
    try:
        blocker = svc.submit(generators.cycle(4), 2, tag="blocker")
        deadline = time.monotonic() + 5
        while svc.stats().computations == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        slow = svc.submit(generators.cycle(6), 2, priority=PRIORITY_BULK, tag="slow")
        other = svc.submit(generators.cycle(8), 2, priority=PRIORITY_BULK, tag="other")
        # An interactive caller joins the queued "slow" task: it must be
        # escalated ahead of "other" instead of inheriting bulk service.
        joined = svc.submit(
            generators.cycle(6), 2, priority=PRIORITY_INTERACTIVE, tag="slow"
        )
        assert joined._task is slow._task  # coalesced, not a new task
        gate.set()
        for ticket in (blocker, slow, other, joined):
            assert ticket.result(timeout=30).success
        assert log == ["blocker", "slow", "other"]
        # The stale queue entry from the escalation must not rerun the task.
        assert svc.stats().computations == 3
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


def test_cancel_aborts_running_search(blocking_algorithm, cycle6):
    gate, log = blocking_algorithm
    svc = DecompositionService(
        num_workers=2, engine=DecompositionEngine(cache=False), algorithm="blocking-test"
    )
    try:
        ticket = svc.submit(cycle6, 2)
        deadline = time.monotonic() + 5
        while svc.stats().computations == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert ticket.cancel() is True
        with pytest.raises(ServiceError):
            ticket.result(timeout=30)
        # The worker must come back without the gate ever opening: the
        # cancellation event aborted the blocked search.
        deadline = time.monotonic() + 10
        while svc.stats().cancelled == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        stats = svc.stats()
        assert stats.cancelled == 1
        assert stats.cancelled_running == 1  # aborted mid-search, not queued
        assert stats.as_dict()["cancelled_running"] == 1
        assert log == []  # the search never completed
        # The service keeps serving afterwards (fresh key, real algorithm).
        result = svc.submit(generators.cycle(6), 2, algorithm="detk").result(timeout=30)
        assert result.success
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


def test_cancel_while_owner_blocks_in_result_raises(blocking_algorithm, cycle6):
    # Cancelling from another thread while the owner is blocked in result()
    # must surface ServiceError, never a bare None.
    gate, _log = blocking_algorithm
    svc = DecompositionService(
        num_workers=1, engine=DecompositionEngine(cache=False), algorithm="blocking-test"
    )
    try:
        ticket = svc.submit(cycle6, 2)
        outcome: list[object] = []

        def owner():
            try:
                outcome.append(ticket.result(timeout=30))
            except ServiceError as exc:
                outcome.append(exc)

        thread = threading.Thread(target=owner)
        thread.start()
        time.sleep(0.05)  # let the owner block on the wait
        assert ticket.cancel() is True
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert len(outcome) == 1 and isinstance(outcome[0], ServiceError)
    finally:
        gate.set()
        svc.shutdown(wait=True, cancel_pending=True)


def test_cancel_of_one_coalesced_ticket_keeps_others_running(
    blocking_algorithm, cycle6
):
    gate, log = blocking_algorithm
    svc = DecompositionService(
        num_workers=2, engine=DecompositionEngine(cache=False), algorithm="blocking-test"
    )
    try:
        first = svc.submit(cycle6, 2)
        second = svc.submit(cycle6, 2)
        assert first.cancel() is True
        gate.set()
        assert second.result(timeout=30).success  # unaffected by the cancel
        with pytest.raises(ServiceError):
            first.result()
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


def test_algorithm_override_does_not_inherit_foreign_options(cycle6):
    # threshold is a hybrid option; overriding the algorithm per request
    # must not forward it to a decomposer that cannot accept it.
    svc = DecompositionService(
        num_workers=1, engine=DecompositionEngine(), algorithm="hybrid", threshold=0.5
    )
    try:
        assert svc.submit(cycle6, 2).result(timeout=30).success  # hybrid w/ option
        assert svc.submit(cycle6, 2, algorithm="detk").result(timeout=30).success
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


def test_out_of_range_priority_is_rejected(service, cycle6):
    # A priority sorting behind the shutdown sentinels would leave the
    # ticket unresolvable; reject it at submission time.
    with pytest.raises(ServiceError):
        service.submit(cycle6, 2, priority=1 << 31)
    with pytest.raises(ServiceError):
        service.submit(cycle6, 2, priority="urgent")


def test_service_level_timeout_option_is_accepted():
    # timeout is a natural Decomposer option: passing it at service level
    # (or inside per-request **options) must become the default request
    # timeout instead of colliding with the explicit keyword downstream.
    svc = DecompositionService(
        num_workers=1, engine=DecompositionEngine(), timeout=0.05
    )
    try:
        assert svc.default_timeout == 0.05
        hard = svc.submit(generators.clique(7), 3)  # inherits the default
        assert hard.result(timeout=30).timed_out
        easy = svc.submit(generators.cycle(6), 2, timeout=30.0)  # override
        assert easy.result(timeout=30).success
        via_options = svc.submit(generators.cycle(8), 2, **{"timeout": 30.0})
        assert via_options.result(timeout=30).success
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


def test_per_request_timeout_times_out_and_is_not_memoized(service):
    hard = generators.clique(7)
    result = service.submit(hard, 3, timeout=0.05).result(timeout=30)
    assert result.timed_out
    # Timeouts are never memoized: resubmitting computes again.
    again = service.submit(hard, 3, timeout=0.05).result(timeout=30)
    assert again.timed_out
    assert service.stats().computations_by_kind["decompose"] == 2
    assert service.stats().fast_path_hits == 0


def test_ticket_wait_timeout_raises(blocking_algorithm, cycle6):
    gate, _log = blocking_algorithm
    svc = DecompositionService(
        num_workers=1, engine=DecompositionEngine(cache=False), algorithm="blocking-test"
    )
    try:
        ticket = svc.submit(cycle6, 2)
        with pytest.raises(TimeoutExceeded):
            ticket.result(timeout=0.05)
        gate.set()
        assert ticket.result(timeout=30).success  # still resolvable afterwards
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


def test_shutdown_drain_skips_stale_escalation_entries(blocking_algorithm, cycle6):
    # A priority escalation re-enqueues a queued task, leaving its original
    # queue entry behind as a stale duplicate; the shutdown drain must
    # finalize such a task exactly once (a double finalize would count it
    # as cancelled twice and republish the outcome).
    gate, _log = blocking_algorithm
    svc = DecompositionService(
        num_workers=1, engine=DecompositionEngine(cache=False), algorithm="blocking-test"
    )
    blocker = svc.submit(generators.cycle(4), 2)
    deadline = time.monotonic() + 5
    while svc.stats().computations == 0 and time.monotonic() < deadline:
        time.sleep(0.005)
    queued = svc.submit(cycle6, 2, priority=PRIORITY_BULK)
    joined = svc.submit(cycle6, 2, priority=PRIORITY_INTERACTIVE)  # escalates
    assert joined._task is queued._task
    # The queue now holds two entries for one task; drain both.
    svc.shutdown(wait=True, cancel_pending=True)
    for ticket in (queued, joined):
        with pytest.raises(ServiceError):
            ticket.result(timeout=30)
    stats = svc.stats()
    # Counters are per ticket: the drained task carried two coalesced
    # tickets and was finalized exactly once despite the stale entry (a
    # double finalize would count four).
    assert stats.cancelled == 2
    assert stats.cancelled_running == 0  # drained while queued, never ran
    # The running blocker was asked to cancel and resolves as timed out.
    assert blocker.result(timeout=30).timed_out
    # Every submitted request is accounted for exactly once.
    assert stats.submitted == stats.completed + stats.failed + stats.cancelled


def test_shutdown_cancel_pending_fails_queued_requests(blocking_algorithm, cycle6):
    gate, _log = blocking_algorithm
    svc = DecompositionService(
        num_workers=1, engine=DecompositionEngine(cache=False), algorithm="blocking-test"
    )
    running = svc.submit(cycle6, 2)
    queued = svc.submit(generators.cycle(8), 2)
    deadline = time.monotonic() + 5
    while svc.stats().computations == 0 and time.monotonic() < deadline:
        time.sleep(0.005)
    svc.shutdown(wait=False, cancel_pending=True)
    with pytest.raises(ServiceError):
        queued.result(timeout=30)
    # The running task was asked to cancel; its ticket resolves either way
    # (to a timed-out result) instead of deadlocking.
    outcome = running.result(timeout=30)
    assert outcome.timed_out
    for worker in svc._workers:
        worker.join(timeout=30)
        assert not worker.is_alive()


def test_shutdown_wait_after_nonwaiting_shutdown_joins_workers(
    blocking_algorithm, cycle6
):
    gate, _log = blocking_algorithm
    svc = DecompositionService(
        num_workers=2, engine=DecompositionEngine(cache=False), algorithm="blocking-test"
    )
    ticket = svc.submit(cycle6, 2)
    svc.shutdown(wait=False)
    gate.set()
    # A later waiting shutdown (e.g. the implicit one from a with-block)
    # must still block until the pool has wound down.
    svc.shutdown(wait=True)
    for worker in svc._workers:
        assert not worker.is_alive()
    assert ticket.result(timeout=30).success


def test_engine_accepts_legacy_decompose_raw_override(cycle6):
    # decompose_raw is an established override point; subclasses with the
    # pre-cancellation three-parameter signature must keep working through
    # the engine (the keyword is only passed when a cancel event exists).
    from repro.core.base import DecompositionResult
    from repro.core.detk import DetKDecomposer

    class LegacyDecomposer(DetKDecomposer):
        name = "legacy-signature"

        def decompose_raw(self, hypergraph, k, timeout=None) -> DecompositionResult:
            return super().decompose_raw(hypergraph, k, timeout=timeout)

    engine = DecompositionEngine(cache=False)
    result = engine.decompose(LegacyDecomposer(), cycle6, 2)
    assert result.success
    validate_hd(result.decomposition)

    # The same override must also survive the serving path, which always
    # supplies a cancellation event (the engine detects the legacy
    # signature and withholds the keyword).
    registry.register("legacy-signature", factory=LegacyDecomposer)
    try:
        svc = DecompositionService(
            num_workers=1, engine=DecompositionEngine(), algorithm="legacy-signature"
        )
        try:
            served = svc.submit(cycle6, 2).result(timeout=30)
            assert served.success
            validate_hd(served.decomposition)
        finally:
            svc.shutdown(wait=True, cancel_pending=True)
    finally:
        registry.unregister("legacy-signature")


def test_stats_exposes_search_counters():
    # The stats snapshot aggregates the kernel counters of every computed
    # decomposition; cached/coalesced requests add nothing.  A fresh
    # hypergraph guarantees an incidence-mask table build is recorded.
    svc = DecompositionService(num_workers=1, engine=DecompositionEngine())
    try:
        assert svc.stats().search_counters == {}
        result = svc.submit(generators.cycle(6), 2).result(timeout=30)
        assert result.success
        counters = svc.stats().search_counters
        assert counters["labels_tried"] > 0
        assert counters["mask_table_builds"] > 0
        # A repeat of the same request is memo-served: no new kernel work.
        svc.submit(generators.cycle(6), 2).result(timeout=30)
        assert svc.stats().search_counters == counters
        assert svc.stats().as_dict()["search_counters"] == counters
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


# --------------------------------------------------------------------------- #
# the full concurrent stress scenario (>= 8 client threads, mixed workload)
# --------------------------------------------------------------------------- #
def test_concurrent_stress_selftest():
    """The serve selftest is the stress test: 8 clients, duplicate-heavy
    mixed decomposition + boolean/count/enumerate workload, asserting
    validated certificates, exactly-once computation for coalesced keys and
    bounded (deadlock-free) shutdown."""
    from repro.serve import run_selftest

    ok, report, stats = run_selftest(workers=4, clients=8, repeats=3)
    assert ok, report
    assert stats["coalesced"] + stats["fast_path_hits"] > 0


# --------------------------------------------------------------------------- #
# resilience: traceback fidelity, worker supervision, poison quarantine
# --------------------------------------------------------------------------- #
def _worker_frame_names(exc):
    import traceback

    return [frame.name for frame in traceback.extract_tb(exc.__traceback__)]


def test_failed_ticket_reraises_with_worker_traceback(service):
    def explode(_cancel_event):
        raise RuntimeError("worker-side failure")

    ticket = service._admit(("test-explode",), explode, 0.0, memoize=False, priority=1)
    with pytest.raises(RuntimeError, match="worker-side failure") as info:
        ticket.result(timeout=10)
    # The frames that actually failed — the worker's _execute/explode — must
    # be visible from the caller, not just the result() re-raise frame.
    assert "explode" in _worker_frame_names(info.value)
    assert "_execute" in _worker_frame_names(info.value)


def test_coalesced_waiters_do_not_accumulate_reraise_frames(service, blocking_algorithm):
    gate, _log = blocking_algorithm

    def explode(_cancel_event):
        raise RuntimeError("shared failure")

    ticket = service._admit(("test-shared",), explode, 0.0, memoize=False, priority=1)
    with pytest.raises(RuntimeError) as first:
        ticket.result(timeout=10)
    with pytest.raises(RuntimeError) as second:
        ticket.result(timeout=10)
    gate.set()
    # Same instance, but each raise restores the pinned worker traceback
    # instead of stacking result() frames onto the shared exception.
    assert first.value is second.value
    assert _worker_frame_names(first.value) == _worker_frame_names(second.value)
    assert _worker_frame_names(second.value).count("result") <= 1


def test_worker_crash_is_requeued_and_answer_still_served(cycle6):
    from repro import faults

    # The first dispatch of the task crashes its worker (an exception on the
    # service.worker fault point escapes _execute); the supervisor requeues
    # the task and revives the worker, and the retry answers correctly.
    rule = faults.FaultRule(
        point="service.worker", error=RuntimeError("dispatch bug"), where={"attempt": 0},
        times=1,
    )
    with DecompositionService(num_workers=2, engine=DecompositionEngine()) as service:
        with faults.injected(rule):
            result = service.submit(cycle6, 2).result(timeout=60)
            assert result.success
        stats = service.stats()
        assert stats.health["worker_crashes"] == 1
        assert stats.health["worker_respawns"] == 1
        assert stats.health["tasks_requeued"] == 1
        assert stats.health["quarantined"] == 0
        assert stats.health["workers_alive"] == stats.health["workers_total"] == 2
        # The crash retry re-ran the same logical computation: counted once.
        assert stats.computations == 1


def test_poison_task_is_quarantined_with_descriptive_error(cycle6):
    from repro import faults

    # Every dispatch of this task crashes its worker: after poison_threshold
    # crashes the key is finalized as failed instead of retried forever.
    rule = faults.FaultRule(point="service.worker", error=RuntimeError("poison"))
    with DecompositionService(
        num_workers=2, engine=DecompositionEngine(), poison_threshold=3
    ) as service:
        with faults.injected(rule):
            ticket = service.submit(cycle6, 2)
            with pytest.raises(ServiceError, match="quarantined after 3") as info:
                ticket.result(timeout=60)
            assert isinstance(info.value.__cause__, RuntimeError)
        stats = service.stats()
        assert stats.health["quarantined"] == 1
        assert stats.health["worker_crashes"] == 3
        assert stats.health["tasks_requeued"] == 2
        assert stats.failed == 1
        # The pool survived the crashes at full strength.
        assert stats.health["workers_alive"] == 2


def test_health_section_shape(service):
    health = service.stats().health
    assert health["workers_total"] == 4
    assert health["workers_alive"] == 4
    for counter in (
        "worker_crashes",
        "worker_respawns",
        "tasks_requeued",
        "quarantined",
        "process_worker_respawns",
    ):
        assert health[counter] == 0
    assert health["catalog_circuit"] is None  # no catalog attached
    assert "health" in service.stats().as_dict()
