"""Unit tests for the exact optimal-width solver (HtdLEO substitute)."""

from __future__ import annotations

import pytest

from repro.core import DetKDecomposer, OptimalHDSolver
from repro.core.optimal import exact_ghw, minimum_edge_cover_size
from repro.decomp import validate_hd
from repro.exceptions import SolverError
from repro.hypergraph import Hypergraph, generators


def test_minimum_edge_cover_simple():
    h = generators.cycle(4)
    # Cover the whole vertex set of a 4-cycle: two opposite edges suffice.
    assert minimum_edge_cover_size(h, h.all_vertices_mask) == 2
    assert minimum_edge_cover_size(h, 0) == 0
    assert minimum_edge_cover_size(h, h.edge_bits(0)) == 1


def test_minimum_edge_cover_respects_limit():
    h = generators.cycle(6)
    value = minimum_edge_cover_size(h, h.all_vertices_mask, limit=1)
    assert value == 2  # limit + 1 signals "no cover within the limit"


def test_exact_ghw_known_values():
    assert exact_ghw(generators.path(4)) == 1
    assert exact_ghw(generators.cycle(5)) == 2
    assert exact_ghw(generators.cycle(8)) == 2
    assert exact_ghw(generators.clique(5)) == 3
    assert exact_ghw(generators.triangle_cascade(3)) == 2


def test_exact_ghw_vertex_limit():
    h = generators.cycle(30)
    assert exact_ghw(h, vertex_limit=10) is None


def test_solver_rejects_bad_configuration():
    with pytest.raises(SolverError):
        OptimalHDSolver(max_width=0)
    with pytest.raises(SolverError):
        OptimalHDSolver().solve(Hypergraph({}))


@pytest.mark.parametrize(
    "hypergraph,expected",
    [
        (generators.path(5), 1),
        (generators.star(4), 1),
        (generators.cycle(3), 2),
        (generators.cycle(7), 2),
        (generators.triangle_cascade(2), 2),
        (generators.clique(4), 2),
        (generators.clique(5), 3),
        (generators.grid(2, 3), 2),
    ],
)
def test_optimal_widths_match_known_values(hypergraph, expected):
    outcome = OptimalHDSolver().solve(hypergraph)
    assert outcome.solved
    assert outcome.width == expected
    validate_hd(outcome.decomposition)
    assert outcome.decomposition.width == expected
    assert outcome.lower_bound <= expected


def test_optimal_agrees_with_iterative_deepening():
    for hypergraph in (generators.cycle(9), generators.hypercycle(4, 3), generators.grid(2, 4)):
        outcome = OptimalHDSolver().solve(hypergraph)
        assert outcome.solved
        # The optimum width must be confirmed by det-k-decomp and refuted below.
        assert DetKDecomposer().decompose(hypergraph, outcome.width).success
        if outcome.width > 1:
            assert not DetKDecomposer().decompose(hypergraph, outcome.width - 1).success


def test_lower_bound_skips_acyclic_dp():
    outcome = OptimalHDSolver().solve(generators.path(6))
    assert outcome.width == 1
    assert outcome.lower_bound == 1


def test_timeout_reported():
    outcome = OptimalHDSolver(timeout=0.0).solve(generators.clique(7))
    assert outcome.timed_out
    assert not outcome.solved
    assert outcome.width is None


def test_max_width_cap():
    # K8 has width 4; capping the search at 3 must return "unsolved" without
    # a timeout.
    outcome = OptimalHDSolver(max_width=2, timeout=30.0).solve(generators.clique(6))
    assert not outcome.solved
    assert not outcome.timed_out


def test_large_instance_falls_back_without_dp():
    h = generators.cycle(40)
    outcome = OptimalHDSolver(dp_vertex_limit=10).solve(h)
    assert outcome.solved
    assert outcome.width == 2
    assert outcome.lower_bound == 2  # non-acyclic lower bound without the DP
