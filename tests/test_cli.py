"""Unit tests for the repro-bench command line interface."""

from __future__ import annotations

import pytest

from repro.bench.cli import main


def test_depth_experiment(capsys):
    exit_code = main(["depth", "--quiet"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Recursion depth" in out
    assert "log-k-decomp" in out


def test_table1_on_tiny_corpus(capsys):
    exit_code = main(
        ["table1", "--scale", "tiny", "--budget", "0.5", "--max-width", "3", "--quiet"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Total" in out


def test_table5_on_tiny_corpus(capsys):
    exit_code = main(
        ["table5", "--scale", "tiny", "--budget", "0.3", "--max-width", "2", "--quiet"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Table 5" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_progress_goes_to_stderr(capsys):
    main(["table4", "--scale", "tiny", "--budget", "0.3", "--max-width", "2"])
    captured = capsys.readouterr()
    assert "Table 4" in captured.out
    assert captured.err  # per-run progress lines


def test_list_algorithms(capsys):
    exit_code = main(["--list-algorithms"])
    assert exit_code == 0
    out = capsys.readouterr().out
    for name in ("logk", "detk", "hybrid", "parallel", "ghd"):
        assert name in out
    assert "log-k-decomp" in out  # aliases are shown


def test_experiment_required_without_listing():
    with pytest.raises(SystemExit):
        main(["--quiet"])


def test_no_simplify_flag_runs_raw_search(capsys):
    exit_code = main(
        [
            "table4",
            "--scale",
            "tiny",
            "--budget",
            "0.3",
            "--max-width",
            "2",
            "--no-simplify",
            "--quiet",
        ]
    )
    assert exit_code == 0
    assert "Table 4" in capsys.readouterr().out
