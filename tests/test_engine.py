"""Tests for the staged DecompositionEngine: stages, cache, components, lifting.

Includes the corpus-wide differential test required by the pipeline design:
engine-on (simplify + cache) and engine-off (raw search) must report the
same success at every width, and every lifted decomposition must pass the
independent validator on the *original* hypergraph.
"""

from __future__ import annotations

import pytest

from repro.core import DetKDecomposer, LogKDecomposer, make_decomposer
from repro.bench.corpus import generate_corpus
from repro.decomp import validate_hd
from repro.decomp.decomposition import GeneralizedHypertreeDecomposition
from repro.decomp.validation import is_valid_ghd
from repro.exceptions import SolverError
from repro.hypergraph import Hypergraph, generators
from repro.pipeline import DecompositionEngine, ResultCache


@pytest.fixture
def engine():
    """A fresh engine with a private cache (isolated from the default one)."""
    return DecompositionEngine(cache=ResultCache())


@pytest.fixture
def messy():
    """A hypergraph exercising all reductions plus two components."""
    return Hypergraph(
        {
            "big": ["a", "b", "c", "d"],
            "sub": ["a", "b"],
            "dup": ["d", "c", "b", "a"],
            "tail": ["d", "p1", "p2"],
            # second connected component: a triangle
            "t1": ["u", "v"],
            "t2": ["v", "w"],
            "t3": ["w", "u"],
        },
        name="messy",
    )


def test_engine_result_is_hosted_on_original(engine, messy):
    decomposer = LogKDecomposer(engine=engine)
    result = decomposer.decompose(messy, 2)
    assert result.success
    assert result.decomposition.hypergraph is messy
    validate_hd(result.decomposition)
    assert result.decomposition.width <= 2


def test_stage_timings_are_recorded(engine, messy):
    result = LogKDecomposer(engine=engine).decompose(messy, 2)
    stages = result.statistics.stage_seconds
    assert {"simplify", "cache", "decompose", "lift"} <= set(stages)
    assert all(seconds >= 0 for seconds in stages.values())


def test_engine_off_runs_raw(messy):
    result = LogKDecomposer(use_engine=False).decompose(messy, 2)
    assert result.success
    assert result.statistics.stage_seconds == {}
    validate_hd(result.decomposition)


def test_cache_hit_returns_equivalent_result(engine, messy):
    decomposer = LogKDecomposer(engine=engine)
    first = decomposer.decompose(messy, 2)
    hits_before = engine.cache.statistics.hits
    second = decomposer.decompose(messy, 2)
    assert engine.cache.statistics.hits == hits_before + 1
    assert second.success == first.success
    assert "decompose" not in second.statistics.stage_seconds  # no search ran
    validate_hd(second.decomposition)
    assert second.decomposition.width == first.decomposition.width
    # Replayed statistics match the producing run's counters.
    assert second.statistics.recursive_calls == first.statistics.recursive_calls


def test_cache_shared_across_equal_instances(engine):
    decomposer = DetKDecomposer(engine=engine)
    a = generators.cycle(8)
    b = Hypergraph(dict(reversed(list(a.edges_as_dict().items()))), name="other")
    assert a.canonical_hash() == b.canonical_hash()
    assert decomposer.decompose(a, 2).success
    hits_before = engine.cache.statistics.hits
    result = decomposer.decompose(b, 2)
    assert engine.cache.statistics.hits == hits_before + 1
    assert result.success
    # The hit is re-hosted on the queried hypergraph, not the cached one.
    assert result.decomposition.hypergraph is b
    validate_hd(result.decomposition)


def test_cache_respects_algorithm_configuration(engine):
    h = generators.cycle(8)
    assert DetKDecomposer(engine=engine, use_cache=True).decompose(h, 2).success
    stores_before = engine.cache.statistics.stores
    assert DetKDecomposer(engine=engine, use_cache=False).decompose(h, 2).success
    # Different configuration -> different key -> a second entry, not a hit.
    assert engine.cache.statistics.stores == stores_before + 1


def test_negative_answers_are_cached(engine):
    decomposer = LogKDecomposer(engine=engine)
    h = generators.cycle(8)
    assert not decomposer.decompose(h, 1).success
    hits_before = engine.cache.statistics.hits
    again = decomposer.decompose(h, 1)
    assert not again.success and not again.timed_out
    assert engine.cache.statistics.hits == hits_before + 1


def test_timeout_budget_is_shared_across_components(engine):
    import time as _time

    # Three disjoint hard components: the engine must grant the *call* one
    # budget, not one budget per component.  (clique(9) at k=4 takes seconds
    # to refute per component even with the branch-and-bound kernels.)
    edges: dict[str, list[str]] = {}
    for part in range(3):
        clique = generators.clique(9)
        for name, vertices in clique.edges_as_dict().items():
            edges[f"c{part}_{name}"] = [f"p{part}_{v}" for v in vertices]
    h = Hypergraph(edges, name="three-cliques")
    decomposer = DetKDecomposer(engine=engine, timeout=0.4)
    start = _time.monotonic()
    result = decomposer.decompose(h, 4)
    elapsed = _time.monotonic() - start
    assert result.timed_out
    assert elapsed < 0.4 * 2  # one budget overall, not 3 x 0.4


def test_timeouts_are_not_cached(engine):
    decomposer = DetKDecomposer(engine=engine, timeout=0.0)
    h = generators.clique(7)
    first = decomposer.decompose(h, 3)
    assert first.timed_out
    second = decomposer.decompose(h, 3)
    assert second.timed_out  # a decided answer was never stored


def test_cache_eviction_is_bounded():
    cache = ResultCache(max_entries=2)
    engine = DecompositionEngine(cache=cache)
    decomposer = LogKDecomposer(engine=engine)
    for n in (4, 5, 6, 7):
        decomposer.decompose(generators.cycle(n), 2)
    assert len(cache) <= 2
    assert cache.statistics.evictions >= 2


def test_component_splitting_produces_one_tree(engine, messy):
    result = LogKDecomposer(engine=engine).decompose(messy, 2)
    # Both components are covered by a single decomposition tree.
    covered = set()
    for node in result.decomposition.nodes():
        covered |= node.bag
    assert covered == messy.vertices


def test_split_components_can_be_disabled(messy):
    engine = DecompositionEngine(split_components=False, cache=None)
    result = LogKDecomposer(engine=engine).decompose(messy, 2)
    assert result.success
    validate_hd(result.decomposition)


def test_validation_stage(engine, messy):
    engine.validate = True
    result = LogKDecomposer(engine=engine).decompose(messy, 2)
    assert result.success
    assert "validate" in result.statistics.stage_seconds


def test_simplify_can_be_disabled(messy):
    engine = DecompositionEngine(simplify=False, cache=None)
    result = LogKDecomposer(engine=engine).decompose(messy, 2)
    assert result.success
    validate_hd(result.decomposition)


def test_ghd_results_keep_their_kind(engine, messy):
    result = make_decomposer("ghd", engine=engine).decompose(messy, 2)
    assert result.success
    assert isinstance(result.decomposition, GeneralizedHypertreeDecomposition)
    assert result.decomposition.kind == "ghd"
    assert is_valid_ghd(result.decomposition)
    # And a cache hit preserves the kind as well.
    again = make_decomposer("ghd", engine=engine).decompose(messy, 2)
    assert isinstance(again.decomposition, GeneralizedHypertreeDecomposition)


def test_engine_rejects_empty_hypergraph(engine):
    with pytest.raises(SolverError):
        LogKDecomposer(engine=engine).decompose(Hypergraph({}), 1)


# --------------------------------------------------------------------------- #
# corpus differential: engine on vs engine off
# --------------------------------------------------------------------------- #
def _tiny_corpus():
    return [
        inst
        for inst in generate_corpus(scale="tiny")
        if inst.num_edges <= 30
    ]


@pytest.mark.parametrize("algorithm", ["logk", "detk", "hybrid"])
def test_differential_engine_on_vs_off_over_corpus(algorithm):
    engine = DecompositionEngine(cache=ResultCache())
    for instance in _tiny_corpus():
        h = instance.hypergraph
        optimum_on = optimum_off = None
        for k in (1, 2, 3):
            on = make_decomposer(algorithm, engine=engine).decompose(h, k)
            off = make_decomposer(algorithm, use_engine=False).decompose(h, k)
            assert on.success == off.success, (instance.name, algorithm, k)
            assert not on.timed_out and not off.timed_out
            if on.success:
                # Lifted decompositions validate on the *original* instance.
                assert on.decomposition.hypergraph is h
                validate_hd(on.decomposition)
                assert on.decomposition.width <= k
                validate_hd(off.decomposition)
                if optimum_on is None:
                    optimum_on, optimum_off = k, k
                break
        assert optimum_on == optimum_off
