"""Round trips for everything that crosses the process-backend boundary.

The process backend ships requests, answers, and worker errors between the
parent and its worker processes through :mod:`repro.core.codec` — plain
JSON-compatible dicts, never live objects.  These tests pin each payload
shape, the validation that rejects malformed payloads, and the ship-once
size property (a request references its fat hypergraph by hash instead of
embedding it).
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core import codec
from repro.core.detk import DetKDecomposer
from repro.decomp import validate_hd
from repro.exceptions import ParseError, QueryError, ServiceError, TimeoutExceeded
from repro.hypergraph import generators
from repro.hypergraph.cq import parse_conjunctive_query
from repro.pipeline.engine import DecompositionEngine
from repro.query import QueryEngine, random_database_for_query
from repro.query.plan import AnswerMode

QUERY = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z), t(z,x).")


# --------------------------------------------------------------------------- #
# hypergraphs and databases
# --------------------------------------------------------------------------- #
def test_hypergraph_round_trip(cycle6):
    payload = codec.hypergraph_to_dict(cycle6)
    json.dumps(payload)  # plain JSON data, no live objects
    rebuilt = codec.hypergraph_from_dict(payload)
    assert rebuilt.name == cycle6.name
    assert rebuilt.edges_as_dict() == {
        name: set(vertices) for name, vertices in cycle6.edges_as_dict().items()
    }
    # Edge order is load-bearing (search replay walks edges by index).
    assert list(rebuilt.edges_as_dict()) == list(cycle6.edges_as_dict())
    assert rebuilt.canonical_hash() == cycle6.canonical_hash()


@pytest.mark.parametrize(
    "mutate",
    [
        lambda p: p.update(format="bogus/9"),
        lambda p: p.update(edges=[["e", ["a"], "extra"]]),
        lambda p: p.update(edges=[[7, ["a"]]]),
        lambda p: p.update(edges=[["e", [1, 2]]]),
        lambda p: p.update(edges=[["e", ["a"]], ["e", ["b"]]]),
    ],
)
def test_hypergraph_payload_validation(cycle6, mutate):
    payload = codec.hypergraph_to_dict(cycle6)
    mutate(payload)
    with pytest.raises(ParseError):
        codec.hypergraph_from_dict(payload)


def test_database_round_trip():
    database = random_database_for_query(QUERY, domain_size=5, tuples_per_relation=20)
    payload = codec.database_to_dict(database)
    json.dumps(payload)
    rebuilt = codec.database_from_dict(payload)
    assert rebuilt.relation_names() == database.relation_names()
    for name in database.relation_names():
        original, copy = database.get(name), rebuilt.get(name)
        assert copy.schema == original.schema
        assert set(copy.tuples) == set(original.tuples)
    # Deterministic: equal databases encode to equal payloads.
    assert codec.database_to_dict(rebuilt) == payload


def test_database_rejects_object_valued_tuples():
    from repro.query.database import Database
    from repro.query.relation import Relation

    database = Database()
    database.add(Relation.from_trusted_rows("r", ("a",), {(object(),)}))
    with pytest.raises(ParseError):
        codec.database_to_dict(database)


# --------------------------------------------------------------------------- #
# requests
# --------------------------------------------------------------------------- #
def test_decompose_request_round_trip(cycle6):
    payload = codec.decompose_request_to_dict(
        canonical_hash=cycle6.canonical_hash(),
        k=2,
        algorithm="detk",
        timeout=5.0,
        options={"hybrid": False, "seed": 7},
    )
    json.dumps(payload)
    decoded = codec.service_request_from_dict(payload)
    assert decoded["kind"] == "decompose"
    assert decoded["hypergraph"] == cycle6.canonical_hash()
    assert decoded["k"] == 2
    assert decoded["algorithm"] == "detk"
    assert decoded["timeout"] == 5.0
    assert decoded["options"] == {"hybrid": False, "seed": 7}


def test_decompose_request_rejects_object_options(cycle6):
    with pytest.raises(ParseError):
        codec.decompose_request_to_dict(
            canonical_hash=cycle6.canonical_hash(),
            k=2,
            algorithm="hybrid",
            timeout=None,
            options={"metric": object()},
        )


def test_query_request_round_trip():
    payload = codec.query_request_to_dict(
        query=QUERY, mode="enumerate", database="db-1", timeout=None
    )
    json.dumps(payload)
    decoded = codec.service_request_from_dict(payload)
    assert decoded["kind"] == "query"
    assert decoded["query"] == QUERY  # atoms, free variables, and name
    assert decoded["mode"] == "enumerate"
    assert decoded["database"] == "db-1"
    assert decoded["timeout"] is None


def test_unknown_request_kind_rejected(cycle6):
    payload = codec.decompose_request_to_dict(
        canonical_hash=cycle6.canonical_hash(),
        k=2,
        algorithm="detk",
        timeout=None,
        options={},
    )
    payload["kind"] = "mystery"
    with pytest.raises(ParseError):
        codec.service_request_from_dict(payload)


# --------------------------------------------------------------------------- #
# answers
# --------------------------------------------------------------------------- #
def test_decomposition_answer_round_trip(cycle6):
    result = DetKDecomposer(use_engine=False).decompose_raw(cycle6, 2)
    assert result.success
    payload = codec.decomposition_answer_to_dict(result)
    json.dumps(payload)
    rebuilt = codec.decomposition_answer_from_dict(cycle6, payload)
    assert rebuilt.success is True
    assert rebuilt.timed_out is False
    assert rebuilt.algorithm == result.algorithm
    assert rebuilt.width_parameter == 2
    assert rebuilt.hypergraph is cycle6  # hosted on the request's instance
    assert rebuilt.decomposition.width == result.decomposition.width
    validate_hd(rebuilt.decomposition)
    assert (
        rebuilt.statistics.search_counters() == result.statistics.search_counters()
    )


def test_failed_decomposition_answer_round_trip(cycle6):
    result = DetKDecomposer(use_engine=False).decompose_raw(cycle6, 1)
    assert not result.success
    rebuilt = codec.decomposition_answer_from_dict(
        cycle6, codec.decomposition_answer_to_dict(result)
    )
    assert rebuilt.success is False
    assert rebuilt.decomposition is None


@pytest.mark.parametrize("mode", ["enumerate", "count", "boolean"])
def test_query_answer_round_trip(mode):
    engine = QueryEngine(engine=DecompositionEngine(cache=False))
    database = random_database_for_query(QUERY, domain_size=6, tuples_per_relation=30)
    result = engine.execute(QUERY, database, mode)
    payload = codec.query_answer_to_dict(
        mode=mode,
        answers=result.answers,
        boolean=result.boolean,
        count=result.count,
        width=result.width,
        plan_cached=result.plan_cached,
        plan_seconds=result.plan_seconds,
        execution_seconds=result.execution_seconds,
        statistics=result.execution.statistics.as_dict(),
    )
    json.dumps(payload)
    decoded = codec.query_answer_from_dict(payload)
    assert decoded["mode"] == mode
    assert decoded["boolean"] == result.boolean
    assert decoded["count"] == result.count
    assert decoded["width"] == result.width
    assert decoded["statistics"] == result.execution.statistics.as_dict()
    if mode == "enumerate":
        assert decoded["answers"].as_dicts() == result.answers.as_dicts()
    else:
        assert decoded["answers"] is None


# --------------------------------------------------------------------------- #
# errors
# --------------------------------------------------------------------------- #
def test_builtin_error_round_trip():
    payload = codec.error_to_dict(ValueError("bad input"), "Traceback: ...")
    json.dumps(payload)
    rebuilt = codec.error_from_dict(payload)
    assert type(rebuilt) is ValueError
    assert str(rebuilt) == "bad input"
    assert rebuilt.remote_traceback == "Traceback: ..."


@pytest.mark.parametrize("error", [QueryError("no"), TimeoutExceeded("slow")])
def test_library_error_round_trip(error):
    rebuilt = codec.error_from_dict(codec.error_to_dict(error, "tb"))
    assert type(rebuilt) is type(error)
    assert str(rebuilt) == str(error)
    assert rebuilt.remote_traceback == "tb"


def test_foreign_error_degrades_to_service_error():
    payload = codec.error_to_dict(ValueError("boom"), "tb")
    payload["module"] = "os.path"  # outside the builtins/repro.* whitelist
    payload["type"] = "join"
    rebuilt = codec.error_from_dict(payload)
    assert isinstance(rebuilt, ServiceError)
    assert "os.path.join" in str(rebuilt)
    assert "boom" in str(rebuilt)
    assert rebuilt.remote_traceback == "tb"


def test_unknown_repro_error_degrades_to_service_error():
    payload = {
        "format": codec.ERROR_FORMAT,
        "type": "NoSuchError",
        "module": "repro.exceptions",
        "message": "hm",
        "traceback": "",
    }
    rebuilt = codec.error_from_dict(payload)
    assert isinstance(rebuilt, ServiceError)
    assert "NoSuchError" in str(rebuilt)


# --------------------------------------------------------------------------- #
# ship-once size guard
# --------------------------------------------------------------------------- #
def test_request_size_is_independent_of_hypergraph_size():
    """A fat hypergraph must ship once per worker, not once per request.

    The request payload references the instance by canonical hash; only the
    separately shipped :func:`hypergraph_to_dict` payload grows with the
    instance.
    """
    small = generators.cycle(4)
    fat = generators.clique(40)

    def request_for(hypergraph):
        return codec.decompose_request_to_dict(
            canonical_hash=hypergraph.canonical_hash(),
            k=2,
            algorithm="detk",
            timeout=None,
            options={},
        )

    small_wire = len(pickle.dumps(request_for(small)))
    fat_wire = len(pickle.dumps(request_for(fat)))
    assert fat_wire == small_wire  # both carry a fixed-width hash reference

    # The structure itself dwarfs the request — shipping it per request
    # would multiply the boundary traffic by orders of magnitude.
    fat_structure = len(pickle.dumps(codec.hypergraph_to_dict(fat)))
    assert fat_structure > 10 * fat_wire
