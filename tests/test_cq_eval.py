"""End-to-end tests of HD-guided conjunctive query evaluation."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.hypergraph.cq import parse_conjunctive_query
from repro.query import (
    evaluate_query,
    naive_join_query,
    random_database_for_query,
)


QUERIES = [
    # Acyclic chain query.
    "ans(x, w) :- r(x,y), s(y,z), t(z,w).",
    # Cyclic (triangle) query: width 2.
    "ans(x) :- r(x,y), s(y,z), t(z,x).",
    # Cycle of length 4 with an attached tail.
    "ans(x, p) :- r(x,y), s(y,z), t(z,w), u(w,x), v(x,p).",
    # Star query.
    "ans(c) :- a(c,x), b(c,y), d(c,z).",
]


@pytest.mark.parametrize("query_text", QUERIES)
@pytest.mark.parametrize("seed", [0, 1])
def test_hd_guided_evaluation_matches_naive_join(query_text, seed):
    query = parse_conjunctive_query(query_text)
    database = random_database_for_query(
        query, domain_size=4, tuples_per_relation=12, seed=seed
    )
    report = evaluate_query(query, database)
    naive = naive_join_query(database, query.atoms, query.free_variables)
    assert report.answers.as_dicts() == naive.as_dicts()
    assert report.width >= 1
    assert report.join_tree.width <= report.width


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_boolean_query_agreement(seed):
    query = parse_conjunctive_query("r(x,y), s(y,z), t(z,x).")
    database = random_database_for_query(
        query, domain_size=3, tuples_per_relation=6, seed=seed
    )
    report = evaluate_query(query, database)
    naive = naive_join_query(database, query.atoms, [])
    assert report.is_boolean
    assert report.boolean_answer == (len(naive) > 0)


def test_report_contains_decomposition_details():
    query = parse_conjunctive_query("ans(x) :- r(x,y), s(y,z), t(z,x).")
    database = random_database_for_query(query, seed=3)
    report = evaluate_query(query, database)
    assert report.width == 2
    assert report.decomposition.width <= 2
    assert report.decomposition_seconds >= 0
    assert report.evaluation_seconds >= 0


def test_unreachable_width_raises():
    # A clique query of width 4 cannot be decomposed within max_width=1.
    atoms = ", ".join(
        f"e{i}{j}(x{i},x{j})" for i in range(5) for j in range(i + 1, 5)
    )
    query = parse_conjunctive_query(f"ans(x0) :- {atoms}.")
    database = random_database_for_query(query, seed=0)
    with pytest.raises(QueryError):
        evaluate_query(query, database, max_width=1)


def test_repeated_relation_atoms():
    query = parse_conjunctive_query("ans(x, z) :- r(x,y), r(y,z).")
    database = random_database_for_query(query, domain_size=4, seed=7)
    report = evaluate_query(query, database)
    naive = naive_join_query(database, query.atoms, query.free_variables)
    assert report.answers.as_dicts() == naive.as_dicts()
