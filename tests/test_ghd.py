"""Unit tests for the BalancedGo-style GHD decomposer."""

from __future__ import annotations

import pytest

from repro.core import BalancedGHDDecomposer, LogKDecomposer
from repro.decomp import validate_ghd
from repro.decomp.decomposition import GeneralizedHypertreeDecomposition
from repro.exceptions import SolverError
from repro.hypergraph import Hypergraph, generators


def test_produces_valid_ghd(cycle10):
    result = BalancedGHDDecomposer().decompose(cycle10, 2)
    assert result.success
    assert isinstance(result.decomposition, GeneralizedHypertreeDecomposition)
    validate_ghd(result.decomposition)
    assert result.decomposition.width <= 2


def test_acyclic_instance(path5):
    result = BalancedGHDDecomposer().decompose(path5, 1)
    assert result.success
    validate_ghd(result.decomposition)
    assert result.decomposition.width == 1


def test_ghd_width_never_exceeds_hd_width():
    # ghw <= hw always; whenever log-k-decomp finds an HD of width k, the GHD
    # solver must also succeed at k.
    for hypergraph in (generators.cycle(6), generators.triangle_cascade(3), generators.grid(2, 3)):
        k = 2
        assert LogKDecomposer().decompose(hypergraph, k).success
        assert BalancedGHDDecomposer().decompose(hypergraph, k).success


def test_negative_instance(cycle6):
    result = BalancedGHDDecomposer().decompose(cycle6, 1)
    assert not result.success


def test_rejects_empty_hypergraph():
    with pytest.raises(SolverError):
        BalancedGHDDecomposer().decompose(Hypergraph({}), 1)


def test_timeout_reported():
    result = BalancedGHDDecomposer(timeout=0.0).decompose(generators.clique(7), 3)
    assert result.timed_out


def test_unbalanced_variant_still_correct(cycle10):
    result = BalancedGHDDecomposer(require_balanced=False).decompose(cycle10, 2)
    assert result.success
    validate_ghd(result.decomposition)


def test_ghd_on_clique():
    result = BalancedGHDDecomposer().decompose(generators.clique(5), 3)
    assert result.success
    validate_ghd(result.decomposition)
    assert result.decomposition.width <= 3


def test_statistics_populated(cycle6):
    result = BalancedGHDDecomposer().decompose(cycle6, 2)
    assert result.statistics.recursive_calls > 0
