"""Unit tests for the in-memory relation algebra."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.query.relation import Relation


@pytest.fixture
def r() -> Relation:
    return Relation("r", ("a", "b"), [(1, 2), (2, 3), (3, 4)])


@pytest.fixture
def s() -> Relation:
    return Relation("s", ("b", "c"), [(2, 10), (3, 20), (9, 30)])


def test_basics(r):
    assert len(r) == 3
    assert (1, 2) in r
    assert (9, 9) not in r
    assert "Relation" in repr(r)


def test_duplicate_attributes_rejected():
    with pytest.raises(QueryError):
        Relation("bad", ("a", "a"), [])


def test_arity_mismatch_rejected():
    with pytest.raises(QueryError):
        Relation("bad", ("a", "b"), [(1,)])


def test_duplicates_removed():
    rel = Relation("d", ("a",), [(1,), (1,), (2,)])
    assert len(rel) == 2


def test_attribute_index(r):
    assert r.attribute_index("b") == 1
    with pytest.raises(QueryError):
        r.attribute_index("zzz")


def test_projection(r):
    projected = r.project(["b"])
    assert projected.schema == ("b",)
    assert set(projected.tuples) == {(2,), (3,), (4,)}


def test_projection_reorders(r):
    projected = r.project(["b", "a"])
    assert (2, 1) in projected.tuples


def test_selection(r):
    selected = r.select_equal("a", 2)
    assert set(selected.tuples) == {(2, 3)}


def test_rename(r):
    renamed = r.rename({"a": "x"})
    assert renamed.schema == ("x", "b")
    assert len(renamed) == 3


def test_natural_join(r, s):
    joined = r.natural_join(s)
    assert set(joined.schema) == {"a", "b", "c"}
    rows = joined.as_dicts()
    assert frozenset({("a", 1), ("b", 2), ("c", 10)}) in rows
    assert frozenset({("a", 2), ("b", 3), ("c", 20)}) in rows
    assert len(rows) == 2


def test_join_without_shared_attributes_is_cross_product(r):
    t = Relation("t", ("z",), [(7,), (8,)])
    joined = r.natural_join(t)
    assert len(joined) == 6


def test_join_is_commutative_up_to_schema(r, s):
    left = r.natural_join(s).as_dicts()
    right = s.natural_join(r).as_dicts()
    assert left == right


def test_semijoin(r, s):
    reduced = r.semijoin(s)
    assert reduced.schema == r.schema
    assert set(reduced.tuples) == {(1, 2), (2, 3)}


def test_semijoin_without_shared_attributes(r):
    nonempty = Relation("u", ("q",), [(1,)])
    empty = Relation("v", ("q",), [])
    assert len(r.semijoin(nonempty)) == len(r)
    assert r.semijoin(empty).is_empty()


def test_semijoin_without_shared_attributes_returns_a_copy(r):
    # Regression: the result used to alias self.tuples, so mutating it
    # (as e.g. an executor compacting intermediate results might) silently
    # corrupted the source relation.
    nonempty = Relation("u", ("q",), [(1,)])
    before = set(r.tuples)
    result = r.semijoin(nonempty)
    assert result.tuples is not r.tuples
    result.tuples.clear()
    assert r.tuples == before


def test_from_dicts_roundtrip():
    rel = Relation.from_dicts("w", ("a", "b"), [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
    assert set(rel.tuples) == {(1, 2), (3, 4)}


def test_equality_is_schema_order_independent():
    a = Relation("x", ("a", "b"), [(1, 2)])
    b = Relation("y", ("b", "a"), [(2, 1)])
    assert a == b
    assert a != Relation("z", ("a", "b"), [(2, 1)])
