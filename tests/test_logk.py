"""Unit tests for the optimised log-k-decomp (Algorithm 2)."""

from __future__ import annotations

import math

import pytest

from repro.core import LogKDecomposer
from repro.decomp import validate_hd
from repro.hypergraph import Hypergraph, generators


def test_positive_instance_produces_valid_hd(cycle10):
    result = LogKDecomposer().decompose(cycle10, 2)
    assert result.success
    assert result.decomposition.width <= 2
    validate_hd(result.decomposition)


def test_negative_instance(cycle10):
    result = LogKDecomposer().decompose(cycle10, 1)
    assert not result.success
    assert result.decomposition is None


def test_acyclic_instance_width_one(path5):
    result = LogKDecomposer().decompose(path5, 1)
    assert result.success
    validate_hd(result.decomposition)
    assert result.decomposition.width == 1


def test_width_parameter_is_an_upper_bound(cycle6):
    # Asking for k=4 must still succeed (and may use fewer edges per label).
    result = LogKDecomposer().decompose(cycle6, 4)
    assert result.success
    assert result.decomposition.width <= 4
    validate_hd(result.decomposition)


def test_every_cover_respects_k(grid23):
    result = LogKDecomposer().decompose(grid23, 2)
    assert result.success
    assert all(len(node.cover) <= 2 for node in result.decomposition.nodes())


def test_single_edge_hypergraph():
    h = Hypergraph({"only": ["a", "b"]})
    result = LogKDecomposer().decompose(h, 1)
    assert result.success
    assert len(result.decomposition) == 1


def test_small_hypergraph_base_case():
    h = Hypergraph({"a": ["x", "y"], "b": ["y", "z"]})
    result = LogKDecomposer().decompose(h, 2)
    assert result.success
    assert len(result.decomposition) == 1  # base case: <= k edges, one node


def test_disconnected_hypergraph():
    h = Hypergraph(
        {"a": ["x", "y"], "b": ["y", "x2"], "c": ["p", "q"], "d": ["q", "r"], "e": ["r", "p"]}
    )
    result = LogKDecomposer().decompose(h, 2)
    assert result.success
    validate_hd(result.decomposition)


def test_recursion_depth_is_logarithmic():
    # Theorem 4.1: the recursion depth is O(log |E|).  We allow a generous
    # constant factor but require sub-linear growth.
    for length in (8, 16, 32):
        h = generators.cycle(length)
        result = LogKDecomposer().decompose(h, 2)
        assert result.success
        bound = 3 * math.log2(length) + 4
        assert result.statistics.max_recursion_depth <= bound, (
            length,
            result.statistics.max_recursion_depth,
        )


def test_restrict_allowed_edges_flag_is_gone():
    # The flag was deprecated-and-ignored in PR 5 (the allowed-edge
    # restriction is correctness-relevant, see ROADMAP.md) and has now been
    # removed: constructing with it must fail loudly rather than silently
    # accept a setting that never did anything.
    from repro.core import HybridDecomposer

    with pytest.raises(TypeError, match="restrict_allowed_edges"):
        LogKDecomposer(restrict_allowed_edges=False)
    with pytest.raises(TypeError, match="restrict_allowed_edges"):
        HybridDecomposer(restrict_allowed_edges=False)

    # ... and the restriction itself is, as ever, always applied.
    result = LogKDecomposer().decompose(generators.cycle(6), 2)
    assert result.success
    validate_hd(result.decomposition)


def test_optimisation_flags_do_not_change_answers(cycle6, grid23):
    variants = [
        LogKDecomposer(negative_base_case=False),
        LogKDecomposer(parent_overlap_pruning=False),
        LogKDecomposer(require_balanced=False),
    ]
    for hypergraph in (cycle6, grid23):
        reference = LogKDecomposer().decompose(hypergraph, 2).success
        for variant in variants:
            result = variant.decompose(hypergraph, 2)
            assert result.success == reference
            if result.success:
                validate_hd(result.decomposition)
        reference_negative = LogKDecomposer().decompose(hypergraph, 1).success
        for variant in variants:
            assert variant.decompose(hypergraph, 1).success == reference_negative


def test_statistics_count_labels(cycle6):
    result = LogKDecomposer().decompose(cycle6, 2)
    assert result.statistics.labels_tried > 0
    assert result.statistics.recursive_calls >= 1


def test_timeout_returns_cleanly():
    h = generators.clique(7)
    result = LogKDecomposer(timeout=0.0).decompose(h, 3)
    assert result.timed_out
    assert not result.success


def test_larger_arity_edges():
    from repro.core import DetKDecomposer

    h = Hypergraph(
        {
            "r": ["a", "b", "c"],
            "s": ["c", "d", "e"],
            "t": ["e", "f", "a"],
            "u": ["b", "d", "f"],
        }
    )
    result = LogKDecomposer().decompose(h, 2)
    reference = DetKDecomposer().decompose(h, 2)
    assert result.success == reference.success
    if result.success:
        validate_hd(result.decomposition)


@pytest.mark.parametrize("k", [2, 3])
def test_hd_exists_implies_wider_hd_exists(cycle6, k):
    assert LogKDecomposer().decompose(cycle6, k).success
