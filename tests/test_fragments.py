"""Unit tests for fragment stitching and conversion (core.fragments)."""

from __future__ import annotations

import pytest

from repro.core.fragments import (
    fragment_to_decomposition,
    regular_node,
    replace_special_leaf,
    special_leaf,
)
from repro.decomp.extended import FragmentNode
from repro.decomp.validation import validate_hd
from repro.exceptions import DecompositionError
from repro.hypergraph import generators


def test_special_leaf_constructor():
    leaf = special_leaf(0b101)
    assert leaf.is_special_leaf
    assert leaf.chi == 0b101
    assert leaf.special == 0b101


def test_regular_node_requires_chi_covered():
    host = generators.cycle(4)
    node = regular_node(host, (0,), host.edge_bits(0))
    assert not node.is_special_leaf
    with pytest.raises(DecompositionError):
        regular_node(host, (0,), host.edge_bits(0) | host.edge_bits(2))


def test_replace_special_leaf_in_tree():
    host = generators.cycle(4)
    special = host.vertices_to_mask(["x1", "x3"])
    root = regular_node(host, (0,), host.edge_bits(0), [special_leaf(special)])
    replacement = regular_node(host, (1,), host.edge_bits(1))
    assert replace_special_leaf(root, special, replacement)
    assert root.children[0] is replacement


def test_replace_special_leaf_at_root():
    special = 0b11
    root = special_leaf(special)
    replacement = FragmentNode(chi=0b1, lam_edges=(0,))
    assert replace_special_leaf(root, special, replacement)
    # The root object is reused but now carries the replacement's content.
    assert not root.is_special_leaf
    assert root.lam_edges == (0,)


def test_replace_special_leaf_missing_returns_false():
    host = generators.cycle(4)
    root = regular_node(host, (0,), host.edge_bits(0))
    assert not replace_special_leaf(root, 0b1000, regular_node(host, (1,), host.edge_bits(1)))


def test_replace_only_one_of_two_equal_leaves():
    special = 0b110
    root = FragmentNode(
        chi=0b1,
        lam_edges=(0,),
        children=[special_leaf(special), special_leaf(special)],
    )
    replacement = FragmentNode(chi=0b10, lam_edges=(1,))
    assert replace_special_leaf(root, special, replacement)
    remaining = [c for c in root.children if c.is_special_leaf]
    assert len(remaining) == 1


def test_computed_fragments_convert_to_valid_decompositions():
    from repro.core import LogKDecomposer

    for length in (4, 6, 9):
        host = generators.cycle(length)
        result = LogKDecomposer().decompose(host, 2)
        assert result.success
        validate_hd(result.decomposition)


def test_fragment_to_decomposition_rejects_special_leaves():
    host = generators.cycle(4)
    root = regular_node(
        host, (0,), host.edge_bits(0), [special_leaf(host.edge_bits(2))]
    )
    with pytest.raises(DecompositionError):
        fragment_to_decomposition(host, root)


def test_fragment_to_decomposition_names():
    host = generators.cycle(3)
    root = regular_node(
        host,
        (0, 1),
        host.edge_bits(0) | host.edge_bits(1),
        [regular_node(host, (2,), host.edge_bits(2))],
    )
    decomposition = fragment_to_decomposition(host, root)
    assert decomposition.root.cover == {"R1", "R2"}
    assert decomposition.root.children[0].cover == {"R3"}
    assert decomposition.width == 2
    validate_hd(decomposition)
