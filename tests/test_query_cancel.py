"""In-flight cancellation of running query executions.

Pins the watchdog contract of the columnar executor — a set cancel event or
an expired deadline aborts the execution at the *next* periodic check, not
at some later stage boundary — and exercises the serving layer's
``cancelled_running`` accounting for queries aborted mid-execution.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import ServiceError, TimeoutExceeded
from repro.hypergraph.cq import parse_conjunctive_query
from repro.pipeline.engine import DecompositionEngine
from repro.query import QueryEngine, random_database_for_query
from repro.query.columnar import ColumnStore, PlanExecutor, _Watchdog
from repro.query.database import Database
from repro.query.plan import AnswerMode
from repro.service import DecompositionService


class _TripAfter:
    """Cancel-event double: ``is_set()`` turns True after ``n`` polls."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.calls = 0

    def is_set(self) -> bool:
        self.calls += 1
        return self.calls > self.n


QUERY = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z), t(z,x).")


def _engine_and_database():
    engine = QueryEngine(engine=DecompositionEngine(cache=False))
    database = random_database_for_query(QUERY, domain_size=6, tuples_per_relation=30)
    return engine, database


# --------------------------------------------------------------------------- #
# watchdog unit behaviour
# --------------------------------------------------------------------------- #
def test_watchdog_raises_on_first_poll_after_cancel():
    event = _TripAfter(3)
    watchdog = _Watchdog(cancel_event=event, stride=1)
    for _ in range(3):
        watchdog.tick()  # polls 1..3 see an unset event
    with pytest.raises(TimeoutExceeded):
        watchdog.tick()
    assert event.calls == 4  # aborted at exactly the first positive poll


def test_watchdog_stride_bounds_poll_frequency():
    event = _TripAfter(0)  # set from the start
    watchdog = _Watchdog(cancel_event=event, stride=4)
    watchdog.tick()
    watchdog.tick()
    watchdog.tick()  # three ticks under stride 4: no poll yet
    assert event.calls == 0
    with pytest.raises(TimeoutExceeded):
        watchdog.tick()
    assert event.calls == 1


def test_watchdog_expired_deadline_raises():
    watchdog = _Watchdog(deadline=time.monotonic() - 1.0, stride=1)
    with pytest.raises(TimeoutExceeded):
        watchdog.check()


# --------------------------------------------------------------------------- #
# executor-level cancellation (pinned: abort within one check interval)
# --------------------------------------------------------------------------- #
def test_enumerate_execution_cancels_within_one_check_interval():
    engine, database = _engine_and_database()
    planned, _ = engine.plan(QUERY, AnswerMode.ENUMERATE)

    # Baseline: count how many polls a full run performs with stride 1.
    # Fresh stores keep the two runs identical — a warm store would reuse
    # cached bag tables and perform fewer checks.
    probe = _TripAfter(10**9)
    PlanExecutor(
        ColumnStore(database), cancel_event=probe, check_stride=1
    ).execute(planned.plan)
    assert probe.calls > 1

    # Cancel mid-run: the executor must abort at the first poll that sees
    # the set event — one check interval, not the rest of the plan.
    trip_at = probe.calls // 2
    event = _TripAfter(trip_at)
    with pytest.raises(TimeoutExceeded):
        PlanExecutor(
            ColumnStore(database), cancel_event=event, check_stride=1
        ).execute(planned.plan)
    assert event.calls == trip_at + 1


def test_generous_deadline_does_not_change_answers():
    engine, database = _engine_and_database()
    unarmed = engine.execute(QUERY, database, AnswerMode.ENUMERATE)
    armed = engine.execute(QUERY, database, AnswerMode.ENUMERATE, timeout=300.0)
    assert armed.answers.as_dicts() == unarmed.answers.as_dicts()


def test_execute_with_expired_timeout_raises():
    engine, database = _engine_and_database()
    with pytest.raises(TimeoutExceeded):
        engine.execute(QUERY, database, AnswerMode.ENUMERATE, timeout=-1.0)


# --------------------------------------------------------------------------- #
# service-level cancellation accounting
# --------------------------------------------------------------------------- #
class _GatedRelation:
    """Relation double whose tuples block until released.

    ``Database.add`` only reads ``name``; the columnar store reads
    ``schema``/``tuples`` when it first materialises an atom table, which
    happens inside the running execution — so a service query against this
    relation is reliably *started* (and inside the executor) while gated.
    """

    def __init__(self, inner, started: threading.Event, release: threading.Event):
        self._inner = inner
        self._started = started
        self._release = release
        self.name = inner.name
        self.schema = inner.schema

    @property
    def tuples(self):
        self._started.set()
        assert self._release.wait(timeout=30)
        return self._inner.tuples


def _gated_database(started, release):
    real = random_database_for_query(QUERY, domain_size=6, tuples_per_relation=30)
    database = Database()
    database.add(_GatedRelation(real.get("r"), started, release))
    for name in ("s", "t"):
        database.add(real.get(name))
    return database


def test_cancel_aborts_running_query(cycle6):
    started, release = threading.Event(), threading.Event()
    database = _gated_database(started, release)
    svc = DecompositionService(num_workers=2, engine=DecompositionEngine(cache=False))
    try:
        ticket = svc.submit_query(QUERY, database, "enumerate")
        assert started.wait(timeout=10)  # execution is inside the store build
        assert ticket.cancel() is True
        release.set()  # the executor resumes, then sees the event and aborts
        with pytest.raises(ServiceError):
            ticket.result(timeout=30)
        deadline = time.monotonic() + 10
        while svc.stats().cancelled == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        stats = svc.stats()
        assert stats.cancelled == 1
        assert stats.cancelled_running == 1  # aborted while executing
        # The service keeps serving afterwards.
        assert svc.submit(cycle6, 2).result(timeout=30).success
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


def test_queued_cancel_is_not_counted_as_running(cycle6):
    started, release = threading.Event(), threading.Event()
    database = _gated_database(started, release)
    svc = DecompositionService(num_workers=1, engine=DecompositionEngine(cache=False))
    try:
        blocker = svc.submit_query(QUERY, database, "enumerate")
        assert started.wait(timeout=10)
        queued = svc.submit(cycle6, 2)  # sits behind the gated query
        assert queued.cancel() is True  # dropped before it ever ran
        release.set()
        assert blocker.result(timeout=30).boolean in (True, False)
        stats = svc.stats()
        assert stats.cancelled == 1
        assert stats.cancelled_running == 0
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


def test_query_timeout_aborts_running_execution():
    started, release = threading.Event(), threading.Event()
    database = _gated_database(started, release)
    svc = DecompositionService(num_workers=2, engine=DecompositionEngine(cache=False))
    try:
        ticket = svc.submit_query(QUERY, database, "enumerate", timeout=0.05)
        assert started.wait(timeout=10)
        time.sleep(0.1)  # hold the gate past the execution deadline
        release.set()
        with pytest.raises(TimeoutExceeded):
            ticket.result(timeout=30)
        stats = svc.stats()
        assert stats.failed == 1
        assert stats.cancelled_running == 0  # deadline, not a cancel
    finally:
        svc.shutdown(wait=True, cancel_pending=True)
