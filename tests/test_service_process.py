"""Tests for the process-backed serving backend.

Worker processes are forked at service construction, so test decomposers
must be registered *before* the service is built — the children inherit the
registry through the fork.  Cross-process signalling goes through the
filesystem (``tmp_path`` marker files), never through in-memory events.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.core.base import Decomposer, SearchContext
from repro.decomp import validate_hd
from repro.exceptions import ServiceError
from repro.hypergraph import generators
from repro.hypergraph.cq import parse_conjunctive_query
from repro.pipeline.engine import DecompositionEngine
from repro.pipeline.registry import registry
from repro.query import evaluate_query, random_database_for_query
from repro.service import DecompositionService


@pytest.fixture
def service():
    svc = DecompositionService(backend="process", workers=2)
    yield svc
    svc.shutdown(wait=True, cancel_pending=True)


class _SpinDecomposer(Decomposer):
    """Test double: marks a file, then spins until cancelled."""

    name = "spin-test"

    def __init__(self, signal_path="", timeout=None, **engine_options):
        super().__init__(timeout=timeout, **engine_options)
        self.signal_path = signal_path

    def _run(self, context: SearchContext):
        Path(self.signal_path).touch()
        while True:
            time.sleep(0.005)
            context.force_timeout_check()  # raises once the ring is written


class _ExplodingDecomposer(Decomposer):
    """Test double: fails with a builtin exception inside the worker."""

    name = "explode-test"

    def __init__(self, timeout=None, **engine_options):
        super().__init__(timeout=timeout, **engine_options)

    def _run(self, context: SearchContext):
        raise ValueError("worker exploded")


@pytest.fixture
def spin_algorithm():
    registry.register(
        "spin-test", factory=lambda **options: _SpinDecomposer(**options)
    )
    try:
        yield
    finally:
        registry.unregister("spin-test")


@pytest.fixture
def explode_algorithm():
    registry.register(
        "explode-test", factory=lambda **options: _ExplodingDecomposer(**options)
    )
    try:
        yield
    finally:
        registry.unregister("explode-test")


def _wait_for(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


# --------------------------------------------------------------------------- #
# basic serving parity with the thread backend
# --------------------------------------------------------------------------- #
def test_process_backend_serves_decompositions(service, cycle10):
    result = service.submit(cycle10, 2).result(timeout=60)
    assert result.success
    assert result.decomposition.hypergraph is cycle10  # re-hosted on our instance
    validate_hd(result.decomposition)
    assert service.submit(cycle10, 1).result(timeout=60).success is False


def test_process_backend_memo_fast_path(service, cycle10):
    service.submit(cycle10, 2).result(timeout=60)
    second = service.submit(cycle10, 2)
    assert second.done()
    stats = service.stats()
    assert stats.fast_path_hits >= 1
    assert stats.computations_by_kind.get("decompose") == 1


def test_process_backend_query_modes_agree(service):
    query = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z), t(z,x).")
    database = random_database_for_query(query, domain_size=6, tuples_per_relation=30)
    enum = service.submit_query(query, database, "enumerate").result(timeout=60)
    boolean = service.submit_query(query, database, "boolean").result(timeout=60)
    count = service.submit_query(query, database, "count").result(timeout=60)
    reference = evaluate_query(query, database, executor="eager")
    assert enum.answers.as_dicts() == reference.answers.as_dicts()
    assert count.count == len(reference.answers)
    assert boolean.boolean == (len(reference.answers) > 0)


def test_process_backend_rejects_object_valued_options(service, cycle10):
    from repro.core.hybrid import EdgeCountMetric

    with pytest.raises(ServiceError):
        service.submit(cycle10, 2, algorithm="hybrid", metric=EdgeCountMetric())


def test_health_reports_process_backend(service, cycle10):
    service.submit(cycle10, 2).result(timeout=60)
    stats = service.stats()
    assert stats.health["backend"] == "process"
    assert stats.health["workers_total"] == 2
    assert stats.health["workers_alive"] == 2
    snapshot = stats.health["process_backend"]
    assert len(snapshot["workers"]) == 2
    assert all(w["alive"] for w in snapshot["workers"])
    assert snapshot["respawns"] == 0
    assert sum(w["dispatched"] for w in snapshot["workers"]) >= 1


# --------------------------------------------------------------------------- #
# cache-affinity routing
# --------------------------------------------------------------------------- #
def _dispatched(service):
    snapshot = service._process_backend.snapshot()
    return [w["dispatched"] for w in snapshot["workers"]]


def test_same_key_routes_to_same_slot(service, cycle10):
    service.submit(cycle10, 2).result(timeout=60)
    first = _dispatched(service)
    assert sum(first) == 1
    slot = first.index(1)
    for _ in range(3):
        service._results.clear()  # defeat the memo: force a fresh dispatch
        service.submit(cycle10, 2).result(timeout=60)
    after = _dispatched(service)
    assert after[slot] == 4
    assert sum(after) == 4  # nothing ever landed on the other slot


def test_distinct_keys_can_use_both_slots(service):
    # Distinct admission keys hash independently; with enough keys both
    # slots must see traffic (19 keys all colliding would mean the hash is
    # broken).
    for n in range(4, 23):
        service.submit(generators.cycle(n), 2).result(timeout=60)
    counts = _dispatched(service)
    assert sum(counts) == 19
    assert all(count > 0 for count in counts)


def test_affinity_survives_worker_respawn(service, cycle10):
    service.submit(cycle10, 2).result(timeout=60)
    slot = _dispatched(service).index(1)
    backend = service._process_backend
    backend._slots[slot].process.terminate()
    _wait_for(
        lambda: backend.snapshot()["respawns"] >= 1
        and all(w["alive"] for w in backend.snapshot()["workers"]),
        message="worker respawn",
    )
    service._results.clear()
    result = service.submit(cycle10, 2).result(timeout=60)
    assert result.success
    after = _dispatched(service)
    assert after[slot] == 2  # same key, same slot, fresh process
    assert service.stats().health["process_worker_respawns"] >= 1


# --------------------------------------------------------------------------- #
# cancellation and worker failure
# --------------------------------------------------------------------------- #
def test_cancel_aborts_running_worker_task(spin_algorithm, tmp_path, cycle6):
    signal = tmp_path / "spinning"
    svc = DecompositionService(backend="process", workers=2)
    try:
        ticket = svc.submit(
            cycle6, 2, algorithm="spin-test", signal_path=str(signal)
        )
        _wait_for(signal.exists, message="worker to start spinning")
        assert ticket.cancel() is True
        with pytest.raises(ServiceError):
            ticket.result(timeout=30)
        _wait_for(
            lambda: svc.stats().cancelled == 1, message="cancel accounting"
        )
        stats = svc.stats()
        assert stats.cancelled == 1
        assert stats.cancelled_running == 1
        # The worker survived the abort (no respawn) and keeps serving.
        assert svc.submit(generators.cycle(6), 2).result(timeout=60).success
        assert svc._process_backend.snapshot()["respawns"] == 0
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


def test_worker_error_reaches_caller_with_remote_traceback(
    explode_algorithm, cycle6
):
    svc = DecompositionService(backend="process", workers=2)
    try:
        ticket = svc.submit(cycle6, 2, algorithm="explode-test")
        with pytest.raises(ValueError, match="worker exploded") as excinfo:
            ticket.result(timeout=60)
        assert "worker exploded" in excinfo.value.remote_traceback
        assert "ValueError" in excinfo.value.remote_traceback
        assert svc.stats().failed == 1
    finally:
        svc.shutdown(wait=True, cancel_pending=True)


# --------------------------------------------------------------------------- #
# end-to-end smoke
# --------------------------------------------------------------------------- #
def test_selftest_passes_under_process_backend():
    from repro.serve import run_selftest

    ok, report, stats = run_selftest(
        workers=2, clients=2, repeats=1, backend="process"
    )
    assert ok, report
    assert "process" in report
