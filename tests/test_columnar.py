"""Differential tests pinning the columnar executor to the reference arms.

The plan-compiled columnar evaluation (all three answer modes) must agree
answer-for-answer with :func:`repro.query.joins.naive_join_query` — and the
eager Yannakakis pipeline — on random conjunctive queries and databases,
including empty relations, repeated variables and Boolean queries.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.width import hypertree_width
from repro.decomp.jointree import join_tree_from_decomposition
from repro.query import (
    ColumnStore,
    Database,
    Relation,
    compile_plan,
    evaluate_query,
    execute_plan,
    naive_join_query,
)
from repro.query.columnar import ColumnarRelation
from repro.hypergraph.cq import Atom, ConjunctiveQuery


# --------------------------------------------------------------------------- #
# strategies: random CQs with matching random databases
# --------------------------------------------------------------------------- #
_VARIABLES = [f"v{i}" for i in range(6)]


@st.composite
def _query_and_database(draw):
    num_atoms = draw(st.integers(1, 4))
    atoms = []
    for index in range(num_atoms):
        arity = draw(st.integers(1, 3))
        # Variables may repeat inside an atom (repeated-variable binding).
        arguments = tuple(
            draw(st.sampled_from(_VARIABLES)) for _ in range(arity)
        )
        atoms.append(Atom(f"rel{index}", arguments))
    variables = sorted({v for atom in atoms for v in atom.arguments})
    # Output may be empty (Boolean query) or any subset of the variables.
    free = tuple(draw(st.lists(st.sampled_from(variables), unique=True, max_size=3)))
    query = ConjunctiveQuery(tuple(atoms), free)

    database = Database()
    for atom in atoms:
        schema = [f"a{i}" for i in range(len(atom.arguments))]
        # Relations may be empty.
        rows = draw(
            st.lists(
                st.tuples(*[st.integers(0, 3) for _ in atom.arguments]), max_size=10
            )
        )
        database.add(Relation(atom.relation, schema, rows))
    return query, database


@given(_query_and_database())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_columnar_modes_agree_with_naive_join(case):
    query, database = case
    naive = naive_join_query(database, query.atoms, query.free_variables)
    width, decomposition = hypertree_width(query.hypergraph(), max_width=4)
    assert width is not None, "tiny random queries must decompose within width 4"
    tree = join_tree_from_decomposition(decomposition)
    tree.validate()
    store = ColumnStore(database)
    for mode in ("enumerate", "boolean", "count"):
        plan = compile_plan(query, tree, mode)
        result = execute_plan(plan, database, store)
        assert result.boolean == (len(naive) > 0), mode
        if mode == "enumerate":
            assert result.answers.as_dicts() == naive.as_dicts()
            assert result.count == len(naive)
        elif mode == "count":
            assert result.count == len(naive)


@given(_query_and_database())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_columnar_and_eager_evaluate_query_agree(case):
    query, database = case
    columnar = evaluate_query(query, database, executor="columnar")
    eager = evaluate_query(query, database, executor="eager")
    assert columnar.answers.as_dicts() == eager.answers.as_dicts()
    assert columnar.count == len(eager.answers)


# --------------------------------------------------------------------------- #
# directed edge cases
# --------------------------------------------------------------------------- #
def _run_all_modes(query, database):
    naive = naive_join_query(database, query.atoms, query.free_variables)
    results = {}
    for mode in ("enumerate", "boolean", "count"):
        report = evaluate_query(query, database, mode=mode)
        results[mode] = report
        assert report.boolean_answer == (len(naive) > 0), mode
    assert results["enumerate"].answers.as_dicts() == naive.as_dicts()
    assert results["count"].count == len(naive)
    return results


def test_empty_relation_early_exit():
    query = ConjunctiveQuery(
        (Atom("r", ("x", "y")), Atom("s", ("y", "z"))), ("x",)
    )
    database = Database(
        [Relation("r", ["a0", "a1"], []), Relation("s", ["a0", "a1"], [(1, 2)])]
    )
    results = _run_all_modes(query, database)
    assert len(results["enumerate"].answers) == 0


def test_repeated_variables_inside_atoms():
    query = ConjunctiveQuery(
        (Atom("r", ("x", "x", "y")), Atom("s", ("y", "y"))), ("x", "y")
    )
    database = Database(
        [
            Relation("r", ["a0", "a1", "a2"], [(1, 1, 2), (1, 2, 2), (3, 3, 3)]),
            Relation("s", ["a0", "a1"], [(2, 2), (3, 1), (3, 3)]),
        ]
    )
    results = _run_all_modes(query, database)
    assert results["enumerate"].answers.as_dicts() == {
        frozenset({("x", 1), ("y", 2)}),
        frozenset({("x", 3), ("y", 3)}),
    }


def test_boolean_query_positive_and_negative():
    query = ConjunctiveQuery((Atom("r", ("x", "y")), Atom("s", ("y", "x"))), ())
    positive = Database(
        [Relation("r", ["a0", "a1"], [(1, 2)]), Relation("s", ["a0", "a1"], [(2, 1)])]
    )
    negative = Database(
        [Relation("r", ["a0", "a1"], [(1, 2)]), Relation("s", ["a0", "a1"], [(1, 2)])]
    )
    assert _run_all_modes(query, positive)["boolean"].boolean_answer is True
    assert _run_all_modes(query, negative)["boolean"].boolean_answer is False


def test_boolean_mode_skips_join_work():
    query = ConjunctiveQuery(
        (Atom("r", ("x", "y")), Atom("s", ("y", "z")), Atom("t", ("z", "x"))), ()
    )
    database = Database(
        [
            Relation("r", ["a0", "a1"], [(i, i + 1) for i in range(5)]),
            Relation("s", ["a0", "a1"], [(i, i + 1) for i in range(5)]),
            Relation("t", ["a0", "a1"], []),
        ]
    )
    report = evaluate_query(query, database, mode="boolean")
    assert report.boolean_answer is False
    assert report.plan is not None and report.plan.top_down == ()


# --------------------------------------------------------------------------- #
# columnar substrate units
# --------------------------------------------------------------------------- #
def test_zero_ary_relation_round_trip():
    nonempty = ColumnarRelation.from_rows((), {()})
    empty = ColumnarRelation.from_rows((), set())
    assert nonempty.nrows == 1 and list(nonempty.rows()) == [()]
    assert empty.nrows == 0 and list(empty.rows()) == []


def test_index_cache_counts_reuse():
    table = ColumnarRelation.from_rows(("a", "b"), {(1, 2), (1, 3), (2, 3)})
    from repro.query.columnar import ExecutionStatistics

    stats = ExecutionStatistics()
    first = table.index_on(("a",), stats)
    second = table.index_on(("a",), stats)
    assert first is second
    assert stats.indexes_built == 1 and stats.indexes_reused == 1
    assert sorted(first) == [1, 2] and sorted(first[1]) == sorted(
        [i for i, key in enumerate(table.column("a")) if key == 1]
    )


def test_atom_tables_are_schema_specific_but_share_columns():
    # Regression: r(x,y) and r(y,z) must not share one schema-bound table.
    database = Database([Relation("r", ["a0", "a1"], [(1, 2), (2, 3)])])
    store = ColumnStore(database)
    from repro.query.plan import AtomBinding

    t_xy = store.atom_table(AtomBinding("r", "r", ("x", "y"), ("x", "y")))
    t_yz = store.atom_table(AtomBinding("r#1", "r", ("y", "z"), ("y", "z")))
    assert t_xy.schema == ("x", "y") and t_yz.schema == ("y", "z")
    assert t_xy.columns is t_yz.columns  # encoded data is shared
    assert t_xy is store.atom_table(AtomBinding("r", "r", ("x", "y"), ("x", "y")))


def test_executor_reuses_indexes_across_passes():
    # On a chain query the child/parent shared variables are identical in the
    # bottom-up pass, the top-down pass and the final join, so the executor
    # must reuse cached hash indexes instead of rebuilding them.
    query = ConjunctiveQuery(
        (Atom("r", ("x", "y")), Atom("s", ("y", "z")), Atom("t", ("z", "w"))),
        ("x", "w"),
    )
    rows = [(i, (i * 7) % 10) for i in range(10)]
    database = Database(
        [
            Relation("r", ["a0", "a1"], rows),
            Relation("s", ["a0", "a1"], rows),
            Relation("t", ["a0", "a1"], rows),
        ]
    )
    report = evaluate_query(query, database, mode="enumerate")
    naive = naive_join_query(database, query.atoms, query.free_variables)
    assert report.answers.as_dicts() == naive.as_dicts()
    width, decomposition = hypertree_width(query.hypergraph())
    tree = join_tree_from_decomposition(decomposition)
    plan = compile_plan(query, tree, "enumerate")
    result = execute_plan(plan, database)
    assert result.statistics.indexes_reused >= 1


def test_key_column_cached_per_attributes():
    table = ColumnarRelation.from_rows(("a", "b"), {(1, 2), (3, 4), (5, 6)})
    wide = table.key_column(("a", "b"))
    assert table.key_column(("a", "b")) is wide  # zipped once, then cached
    # Single-attribute keys are the stored column itself — identity-stable.
    assert table.key_column(("a",)) is table.column("a")
    assert sorted(wide) == [(1, 2), (3, 4), (5, 6)]


def test_live_keys_cache_invalidated_by_alive_changes():
    from repro.query.columnar import _NodeState

    table = ColumnarRelation.from_rows(("a", "b"), {(1, 2), (3, 4), (5, 6)})
    state = _NodeState(table)
    first = state.live_keys(("a",))
    assert first == {1, 3, 5}
    assert state.live_keys(("a",)) is first  # cached while the mask stands

    dead = table.key_masks(("a",))[3]
    state.kill(dead)
    assert state.live_count == 2
    second = state.live_keys(("a",))
    assert second == {1, 5}  # the kill invalidated the cached snapshot
    assert state.live_keys(("a",)) is second

    # Killing rows that are already dead must not invalidate the cache.
    state.kill(dead)
    assert state.live_keys(("a",)) is second


def test_store_database_mismatch_rejected():
    query = ConjunctiveQuery((Atom("r", ("x", "y")),), ("x",))
    db1 = Database([Relation("r", ["a0", "a1"], [(1, 2)])])
    db2 = Database([Relation("r", ["a0", "a1"], [(1, 2)])])
    width, decomposition = hypertree_width(query.hypergraph())
    tree = join_tree_from_decomposition(decomposition)
    plan = compile_plan(query, tree, "enumerate")
    from repro.exceptions import QueryError

    with pytest.raises(QueryError):
        execute_plan(plan, db1, ColumnStore(db2))
