"""Unit tests for join-tree extraction from decompositions."""

from __future__ import annotations

import pytest

from repro.core import decompose
from repro.decomp.decomposition import DecompositionNode, HypertreeDecomposition
from repro.decomp.jointree import JoinTree, JoinTreeNode, join_tree_from_decomposition
from repro.exceptions import DecompositionError
from repro.hypergraph import Hypergraph, generators


def test_join_tree_from_cycle_decomposition(cycle6):
    result = decompose(cycle6, 2, algorithm="logk")
    tree = join_tree_from_decomposition(result.decomposition)
    tree.validate()
    assert tree.assigned_edges() == frozenset(cycle6.edge_names)
    assert tree.width <= 2
    assert len(tree) == len(result.decomposition)


def test_join_tree_assigns_each_edge_once(grid23):
    result = decompose(grid23, 2, algorithm="detk")
    tree = join_tree_from_decomposition(result.decomposition)
    tree.validate()
    counts: dict[str, int] = {}
    for node in tree.nodes():
        for edge in node.assigned_edges:
            counts[edge] = counts.get(edge, 0) + 1
    assert all(count == 1 for count in counts.values())
    assert set(counts) == set(grid23.edge_names)


def test_join_tree_rejects_uncovering_decomposition():
    host = Hypergraph({"a": ["x", "y"], "b": ["y", "z"]})
    # A "decomposition" that does not cover edge b.
    root = DecompositionNode(bag={"x", "y"}, cover={"a"})
    broken = HypertreeDecomposition(host, root)
    with pytest.raises(DecompositionError):
        join_tree_from_decomposition(broken)


def test_join_tree_validate_detects_double_assignment():
    host = Hypergraph({"a": ["x", "y"]})
    node = JoinTreeNode(
        variables=frozenset({"x", "y"}),
        cover_edges=frozenset({"a"}),
        assigned_edges=frozenset({"a"}),
        children=[
            JoinTreeNode(
                variables=frozenset({"x", "y"}),
                cover_edges=frozenset({"a"}),
                assigned_edges=frozenset({"a"}),
            )
        ],
    )
    tree = JoinTree(host, node)
    with pytest.raises(DecompositionError):
        tree.validate()


def test_join_tree_validate_detects_running_intersection_violation():
    host = Hypergraph({"a": ["x", "y"], "b": ["y", "z"], "c": ["z", "x"]})
    leaf = JoinTreeNode(
        variables=frozenset({"z", "x"}),
        cover_edges=frozenset({"c"}),
        assigned_edges=frozenset({"c"}),
    )
    middle = JoinTreeNode(
        variables=frozenset({"y", "z"}),
        cover_edges=frozenset({"b"}),
        assigned_edges=frozenset({"b"}),
        children=[leaf],
    )
    root = JoinTreeNode(
        variables=frozenset({"x", "y"}),
        cover_edges=frozenset({"a"}),
        assigned_edges=frozenset({"a"}),
        children=[middle],
    )
    tree = JoinTree(host, root)
    with pytest.raises(DecompositionError):
        tree.validate()


def test_join_tree_for_acyclic_query():
    host = generators.chain_query(5)
    result = decompose(host, 1, algorithm="hybrid")
    assert result.success
    tree = join_tree_from_decomposition(result.decomposition)
    tree.validate()
    assert tree.width == 1
