"""Unit tests for the decomposition data structures."""

from __future__ import annotations

import pytest

from repro.decomp.decomposition import (
    DecompositionNode,
    GeneralizedHypertreeDecomposition,
    HypertreeDecomposition,
)
from repro.exceptions import DecompositionError
from repro.hypergraph import Hypergraph


@pytest.fixture
def host() -> Hypergraph:
    return Hypergraph(
        {"a": ["x", "y"], "b": ["y", "z"], "c": ["z", "x"]},
        name="triangle",
    )


def _two_node_hd(host: Hypergraph) -> HypertreeDecomposition:
    root = DecompositionNode(bag={"x", "y", "z"}, cover={"a", "b"})
    root.add_child(DecompositionNode(bag={"z", "x"}, cover={"c"}))
    return HypertreeDecomposition(host, root)


def test_node_normalises_to_frozensets():
    node = DecompositionNode(bag=["x", "y"], cover=["a"])
    assert isinstance(node.bag, frozenset)
    assert isinstance(node.cover, frozenset)
    assert node.width == 1


def test_decomposition_width_and_len(host):
    hd = _two_node_hd(host)
    assert hd.width == 2
    assert len(hd) == 2
    assert hd.depth == 2


def test_nodes_preorder(host):
    hd = _two_node_hd(host)
    nodes = list(hd.nodes())
    assert nodes[0] is hd.root
    assert len(nodes) == 2


def test_subtree_bags(host):
    hd = _two_node_hd(host)
    assert hd.root.subtree_bags() == {"x", "y", "z"}
    assert hd.root.children[0].subtree_bags() == {"z", "x"}


def test_parent_map(host):
    hd = _two_node_hd(host)
    parents = hd.parent_map()
    assert parents[id(hd.root)] is None
    assert parents[id(hd.root.children[0])] is hd.root


def test_bags_containing_and_covering_node(host):
    hd = _two_node_hd(host)
    assert len(hd.bags_containing("z")) == 2
    assert hd.covering_node("c") is not None
    assert hd.covering_node("a") is hd.root


def test_unknown_edge_in_cover_rejected(host):
    root = DecompositionNode(bag={"x"}, cover={"nonexistent"})
    with pytest.raises(DecompositionError):
        HypertreeDecomposition(host, root)


def test_unknown_vertex_in_bag_rejected(host):
    root = DecompositionNode(bag={"x", "mystery"}, cover={"a"})
    with pytest.raises(DecompositionError):
        HypertreeDecomposition(host, root)


def test_single_node_constructor(host):
    hd = HypertreeDecomposition.single_node(host, ["a", "b", "c"])
    assert len(hd) == 1
    assert hd.width == 3
    assert hd.root.bag == host.vertices


def test_describe_output(host):
    hd = _two_node_hd(host)
    text = hd.describe()
    assert "λ={a,b}" in text
    assert "χ=" in text
    assert text.count("\n") == 1


def test_repr(host):
    hd = _two_node_hd(host)
    assert "width=2" in repr(hd)
    assert "nodes=2" in repr(hd)


def test_kind_markers(host):
    hd = _two_node_hd(host)
    assert hd.kind == "hd"
    ghd = GeneralizedHypertreeDecomposition(host, _two_node_hd(host).root)
    assert ghd.kind == "ghd"
