"""Seeded chaos suite: the serving stack under the bounded fault storm.

These tests drive :func:`repro.serve.run_selftest` in chaos mode, which
installs the seeded schedule from :func:`repro.serve.chaos_rules` and asserts
the recovery invariants from the inside (byte-identical answers, exactly-once
memoization, catalog circuit re-attach, worker and process respawns, no
hangs).  Here we additionally pin the externally visible contract: the run
reports OK, the health counters prove the faults were actually exercised,
and the CLI surfaces chaos mode with a proper exit code.
"""

import pytest

from repro import serve
from repro.faults import FaultRule


CHAOS_SEEDS = (0, 1, 2)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_selftest_recovers_under_seeded_fault_storm(seed, tmp_path):
    ok, report, snapshot = serve.run_selftest(
        workers=4,
        clients=3,
        repeats=2,
        catalog=str(tmp_path / "chaos-catalog.db"),
        chaos_seed=seed,
    )
    assert ok, report
    assert snapshot["failures"] == []

    health = snapshot["health"]
    assert health["worker_crashes"] >= 1
    assert health["worker_respawns"] >= 1
    assert health["tasks_requeued"] >= 1
    assert health["quarantined"] == 0
    assert health["process_worker_respawns"] >= 1

    circuit = health["catalog_circuit"]
    assert circuit["state"] == "closed"
    assert circuit["opens"] >= 1
    assert circuit["reattaches"] >= 1

    chaos = snapshot["chaos"]
    assert chaos["seed"] == seed
    # The parallel.worker kill fires inside child processes, invisible to
    # the parent's injector counters; process_worker_respawns (above) is
    # its witness.  The parent-side counts cover the thread-side storm.
    assert sum(chaos["injected"].values()) >= 4
    assert chaos["injected"].keys() & {"catalog.get", "catalog.put"}
    assert "service.worker" in chaos["injected"]


def test_chaos_schedule_is_seed_deterministic_and_bounded():
    first, second = serve.chaos_rules(3), serve.chaos_rules(3)
    assert [
        (r.point, type(r.error), r.times, r.skip, r.delay, r.kill) for r in first
    ] == [(r.point, type(r.error), r.times, r.skip, r.delay, r.kill) for r in second]
    assert serve.chaos_rules(3)[0].times != serve.chaos_rules(4)[0].times or (
        serve.chaos_rules(3)[1].times != serve.chaos_rules(4)[1].times
    )
    for rule in first:
        assert isinstance(rule, FaultRule)
        # Every raising/delaying rule must be bounded so the storm ends and
        # the recovery phase runs against a quiet system.
        if rule.kill:
            assert rule.where  # kills are targeted, never unconditional
        else:
            assert rule.times is not None


def test_chaos_cli_reports_ok_and_exits_zero(tmp_path, capsys):
    rc = serve.main(
        [
            "--selftest",
            "--chaos",
            "--chaos-seed",
            "1",
            "--clients",
            "2",
            "--repeats",
            "2",
            "--catalog",
            str(tmp_path / "cli-catalog.db"),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "chaos seed 1" in out
    assert "result: OK" in out


def test_selftest_without_chaos_reports_no_chaos_section(tmp_path):
    ok, report, snapshot = serve.run_selftest(
        workers=2, clients=2, repeats=1, catalog=str(tmp_path / "plain.db")
    )
    assert ok, report
    assert "chaos" not in snapshot
    assert "chaos seed" not in report
