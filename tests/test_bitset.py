"""Unit tests for the bitset helpers."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.hypergraph import bitset


def test_singleton():
    assert bitset.singleton(0) == 1
    assert bitset.singleton(3) == 8


def test_from_indices_and_back():
    mask = bitset.from_indices([0, 2, 5])
    assert mask == 0b100101
    assert bitset.indices_of(mask) == [0, 2, 5]


def test_from_indices_empty():
    assert bitset.from_indices([]) == 0
    assert bitset.indices_of(0) == []


def test_bits_of_order():
    assert list(bitset.bits_of(0b1011)) == [0, 1, 3]


def test_popcount():
    assert bitset.popcount(0) == 0
    assert bitset.popcount(0b1011) == 3


def test_is_subset():
    assert bitset.is_subset(0b0010, 0b0110)
    assert bitset.is_subset(0, 0b0110)
    assert not bitset.is_subset(0b1000, 0b0110)
    assert bitset.is_subset(0b0110, 0b0110)


def test_intersects():
    assert bitset.intersects(0b011, 0b110)
    assert not bitset.intersects(0b001, 0b110)
    assert not bitset.intersects(0, 0b111)


@given(st.sets(st.integers(min_value=0, max_value=200)))
def test_roundtrip_property(indices):
    mask = bitset.from_indices(indices)
    assert set(bitset.indices_of(mask)) == indices
    assert bitset.popcount(mask) == len(indices)


@given(
    st.sets(st.integers(min_value=0, max_value=100)),
    st.sets(st.integers(min_value=0, max_value=100)),
)
def test_set_operations_match_python_sets(a, b):
    ma, mb = bitset.from_indices(a), bitset.from_indices(b)
    assert set(bitset.indices_of(ma | mb)) == a | b
    assert set(bitset.indices_of(ma & mb)) == a & b
    assert set(bitset.indices_of(ma & ~mb)) == a - b
    assert bitset.is_subset(ma, mb) == (a <= b)
    assert bitset.intersects(ma, mb) == bool(a & b)
