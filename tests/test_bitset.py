"""Unit tests for the bitset helpers and the incidence-mask table."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.hypergraph import Hypergraph, bitset


def test_singleton():
    assert bitset.singleton(0) == 1
    assert bitset.singleton(3) == 8


def test_from_indices_and_back():
    mask = bitset.from_indices([0, 2, 5])
    assert mask == 0b100101
    assert bitset.indices_of(mask) == [0, 2, 5]


def test_from_indices_empty():
    assert bitset.from_indices([]) == 0
    assert bitset.indices_of(0) == []


def test_bits_of_order():
    assert list(bitset.bits_of(0b1011)) == [0, 1, 3]


def test_popcount():
    assert bitset.popcount(0) == 0
    assert bitset.popcount(0b1011) == 3


def test_is_subset():
    assert bitset.is_subset(0b0010, 0b0110)
    assert bitset.is_subset(0, 0b0110)
    assert not bitset.is_subset(0b1000, 0b0110)
    assert bitset.is_subset(0b0110, 0b0110)


def test_intersects():
    assert bitset.intersects(0b011, 0b110)
    assert not bitset.intersects(0b001, 0b110)
    assert not bitset.intersects(0, 0b111)


@given(st.sets(st.integers(min_value=0, max_value=200)))
def test_roundtrip_property(indices):
    mask = bitset.from_indices(indices)
    assert set(bitset.indices_of(mask)) == indices
    assert bitset.popcount(mask) == len(indices)


@given(
    st.sets(st.integers(min_value=0, max_value=100)),
    st.sets(st.integers(min_value=0, max_value=100)),
)
def test_set_operations_match_python_sets(a, b):
    ma, mb = bitset.from_indices(a), bitset.from_indices(b)
    assert set(bitset.indices_of(ma | mb)) == a | b
    assert set(bitset.indices_of(ma & mb)) == a & b
    assert set(bitset.indices_of(ma & ~mb)) == a - b
    assert bitset.is_subset(ma, mb) == (a <= b)
    assert bitset.intersects(ma, mb) == bool(a & b)


@given(st.integers(min_value=0, max_value=300))
def test_singleton_matches_from_indices(index):
    assert bitset.singleton(index) == bitset.from_indices({index})
    assert bitset.indices_of(bitset.singleton(index)) == [index]


@given(st.sets(st.integers(min_value=0, max_value=200)))
def test_bits_of_is_sorted_and_complete(indices):
    produced = list(bitset.bits_of(bitset.from_indices(indices)))
    assert produced == sorted(indices)


@given(st.sets(st.integers(min_value=0, max_value=64)))
def test_indices_of_equals_bits_of(indices):
    mask = bitset.from_indices(indices)
    assert bitset.indices_of(mask) == list(bitset.bits_of(mask))


# --------------------------------------------------------------------------- #
# the incidence-mask table (vertex id → edge-index bitmask)
# --------------------------------------------------------------------------- #
_edges_strategy = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=12), min_size=1, max_size=5),
    min_size=1,
    max_size=8,
)


@given(_edges_strategy)
def test_incidence_masks_match_frozenset_semantics(edge_sets):
    host = Hypergraph(edge_sets)
    assert not host.has_incidence_masks  # built lazily, on first use
    table = host.incidence_masks()
    assert host.has_incidence_masks
    assert len(table) == host.num_vertices
    for vertex in host.vertex_names:
        expected = {
            index
            for index in range(host.num_edges)
            if vertex in host.edge_vertices(index)
        }
        mask = table[host.vertex_id(vertex)]
        assert set(bitset.indices_of(mask)) == expected
        assert host.edges_containing(vertex) == sorted(expected)


@given(_edges_strategy)
def test_incidence_masks_invert_edge_bits(edge_sets):
    # Vertex v is in edge e  ⟺  e is in the incidence mask of v: the table
    # is exactly the transpose of the edge_bits relation.
    host = Hypergraph(edge_sets)
    table = host.incidence_masks()
    for index in range(host.num_edges):
        edge_mask = host.edge_bits(index)
        for vertex_id in range(host.num_vertices):
            in_edge = bool(edge_mask & bitset.singleton(vertex_id))
            in_table = bool(table[vertex_id] & bitset.singleton(index))
            assert in_edge == in_table


@given(_edges_strategy)
def test_all_edges_mask_covers_every_edge(edge_sets):
    host = Hypergraph(edge_sets)
    assert bitset.indices_of(host.all_edges_mask) == list(range(host.num_edges))
    union = 0
    for mask in host.incidence_masks():
        union |= mask
    assert union == host.all_edges_mask
