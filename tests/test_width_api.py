"""Unit tests for the high-level width API and the algorithm registry."""

from __future__ import annotations

import pytest

from repro import decompose, hypertree_width, is_width_at_most, make_decomposer
from repro.core import ALGORITHMS
from repro.core.detk import DetKDecomposer
from repro.decomp import validate_hd
from repro.exceptions import SolverError
from repro.hypergraph import Hypergraph, generators


def test_registry_contains_all_algorithms():
    assert set(ALGORITHMS) == {"logk", "logk-basic", "detk", "hybrid", "parallel", "ghd"}


def test_make_decomposer_by_name():
    decomposer = make_decomposer("detk", timeout=1.0)
    assert isinstance(decomposer, DetKDecomposer)
    assert decomposer.timeout == 1.0


def test_make_decomposer_unknown_name():
    with pytest.raises(SolverError):
        make_decomposer("quantum")


def test_decompose_helper(cycle6):
    result = decompose(cycle6, 2)
    assert result.success
    validate_hd(result.decomposition)


def test_is_width_at_most(cycle6):
    assert is_width_at_most(cycle6, 2) is True
    assert is_width_at_most(cycle6, 1) is False
    assert is_width_at_most(generators.clique(7), 3, timeout=0.0) is None


def test_hypertree_width_acyclic_shortcut(path5):
    width, decomposition = hypertree_width(path5)
    assert width == 1
    assert decomposition.width == 1
    validate_hd(decomposition)


def test_hypertree_width_cyclic(cycle6):
    width, decomposition = hypertree_width(cycle6)
    assert width == 2
    validate_hd(decomposition)


def test_hypertree_width_respects_max_width():
    width, decomposition = hypertree_width(generators.clique(6), max_width=2)
    assert width is None
    assert decomposition is None


def test_hypertree_width_with_explicit_algorithm(cycle6):
    width, _ = hypertree_width(cycle6, algorithm="detk")
    assert width == 2
    width, _ = hypertree_width(cycle6, algorithm="logk")
    assert width == 2


def test_hypertree_width_rejects_empty():
    with pytest.raises(SolverError):
        hypertree_width(Hypergraph({}))


def test_hypertree_width_timeout_returns_none():
    width, decomposition = hypertree_width(generators.clique(7), timeout=0.0)
    assert width is None and decomposition is None


def test_top_level_exports():
    import repro

    assert repro.__version__
    assert callable(repro.decompose)
    assert callable(repro.hypertree_width)
    assert repro.Hypergraph is Hypergraph
