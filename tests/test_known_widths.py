"""Width oracles: families whose hypertree width is known analytically.

These tests pin the algorithms to externally known answers, independently of
each other:

* alpha-acyclic hypergraphs have hw = 1 (paths, stars, chains, snowflakes);
* cycles of length >= 3 have hw = 2;
* chains of glued triangles have hw = 2;
* the clique K_n (binary edges) has hw = ceil(n / 2);
* grids have hw >= 2 and growing width with their side length.
"""

from __future__ import annotations

import pytest

from repro.core import hypertree_width
from repro.decomp import validate_hd
from repro.hypergraph import generators

ALGORITHMS = ["logk", "logk-basic", "detk", "hybrid"]


def _width(hypergraph, algorithm):
    width, decomposition = hypertree_width(hypergraph, algorithm=algorithm, max_width=5)
    assert decomposition is not None
    validate_hd(decomposition)
    assert decomposition.width == width or decomposition.width <= width
    return width


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("length", [1, 3, 6])
def test_paths_have_width_one(algorithm, length):
    assert _width(generators.path(length), algorithm) == 1


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_stars_and_chains_have_width_one(algorithm):
    assert _width(generators.star(5), algorithm) == 1
    assert _width(generators.chain_query(4), algorithm) == 1
    assert _width(generators.snowflake_query(3), algorithm) == 1


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("length", [3, 4, 5, 7, 10])
def test_cycles_have_width_two(algorithm, length):
    assert _width(generators.cycle(length), algorithm) == 2


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_triangle_cascades_have_width_two(algorithm):
    assert _width(generators.triangle_cascade(3), algorithm) == 2


@pytest.mark.parametrize("algorithm", ["logk", "detk", "hybrid"])
@pytest.mark.parametrize("size,expected", [(4, 2), (5, 3), (6, 3)])
def test_clique_widths(algorithm, size, expected):
    assert _width(generators.clique(size), algorithm) == expected


def test_clique4_width_with_basic_algorithm():
    # The unoptimised Algorithm 1 is exercised on the smallest clique only;
    # its search space grows too quickly for larger cliques in a unit test.
    assert _width(generators.clique(4), "logk-basic") == 2


@pytest.mark.parametrize("algorithm", ["logk", "detk", "hybrid"])
def test_grid_2x3_width_two(algorithm):
    assert _width(generators.grid(2, 3), algorithm) == 2


@pytest.mark.parametrize("algorithm", ["logk", "detk"])
def test_hypercycle_width_two(algorithm):
    assert _width(generators.hypercycle(4, 3), algorithm) == 2


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_single_edge_width_one(algorithm):
    from repro.hypergraph import Hypergraph

    h = Hypergraph({"only": ["a", "b", "c"]})
    assert _width(h, algorithm) == 1


@pytest.mark.parametrize("algorithm", ["logk", "detk", "hybrid"])
def test_negative_answers_are_definite(algorithm):
    # K6 has width 3; every algorithm must refute width 2.
    from repro.core import decompose

    result = decompose(generators.clique(6), 2, algorithm=algorithm)
    assert result.decided
    assert not result.success
