"""Unit tests for the benchmark runner and the statistics aggregation."""

from __future__ import annotations

import pytest

from repro.bench.corpus import Instance
from repro.bench.runner import (
    DecomposerSpec,
    default_method_specs,
    run_experiment,
    run_optimal_solver,
    run_parametrised,
)
from repro.bench.stats import counter_totals, group_records, runtime_stats, solved_count
from repro.core import DetKDecomposer, HybridDecomposer
from repro.hypergraph import generators


@pytest.fixture(scope="module")
def small_instances() -> list[Instance]:
    return [
        Instance("cycle6", "Synthetic", generators.cycle(6), "cycle"),
        Instance("path4", "Application", generators.path(4), "path"),
        Instance("clique5", "Synthetic", generators.clique(5), "clique"),
    ]


def test_run_parametrised_resolves_optimum(small_instances):
    record = run_parametrised(
        small_instances[0], "detk", lambda t: DetKDecomposer(timeout=t), 5.0, max_width=4
    )
    assert record.solved
    assert record.optimal_width == 2
    assert record.decisions[1] is False
    assert record.decisions[2] is True
    assert not record.timed_out
    assert record.method == "detk"
    assert record.group == "|E| <= 10"


def test_run_parametrised_accumulates_search_counters(small_instances):
    # The kernel counters are summed over every (instance, k) run of the
    # record (use_engine=False: a result-cache hit would replay stored stats).
    # A fresh hypergraph (not the shared fixture) so the incidence-mask table
    # has not been built yet and mask_table_builds must move.
    instance = Instance("cycle6-fresh", "Synthetic", generators.cycle(6), "cycle")
    record = run_parametrised(
        instance,
        "detk",
        lambda t: DetKDecomposer(timeout=t, use_engine=False),
        5.0,
        max_width=4,
    )
    counters = record.search_counters
    assert counters["labels_tried"] > 0
    assert counters["splitter_memo_misses"] > 0
    # The bitset kernels build one incidence-mask table per hypergraph used
    # by a splitter, so a successful run must record at least one build.
    assert counters["mask_table_builds"] > 0
    assert set(counters) == {
        "labels_tried",
        "enum_branches_pruned",
        "enum_domination_skips",
        "splitter_memo_hits",
        "splitter_memo_misses",
        "mask_table_builds",
        "bitset_memo_hits",
        "worker_respawns",
    }


def test_counter_totals_sums_over_records(small_instances):
    records = [
        run_parametrised(
            instance,
            "detk",
            lambda t: DetKDecomposer(timeout=t, use_engine=False),
            5.0,
            max_width=4,
        )
        for instance in small_instances
    ]
    totals = counter_totals(records)
    for key in records[0].search_counters:
        assert totals[key] == sum(r.search_counters[key] for r in records)
    assert totals["labels_tried"] > 0


def test_run_parametrised_timeout():
    hard = Instance("k7", "Synthetic", generators.clique(7), "clique")
    record = run_parametrised(
        hard, "detk", lambda t: DetKDecomposer(timeout=t), 0.0, max_width=4
    )
    assert not record.solved
    assert record.timed_out


def test_run_parametrised_width_cap(small_instances):
    clique = small_instances[2]
    record = run_parametrised(
        clique, "detk", lambda t: DetKDecomposer(timeout=t), 5.0, max_width=2
    )
    assert not record.solved
    assert record.decisions == {1: False, 2: False}
    assert record.decides_width_at_most(2)
    assert not record.decides_width_at_most(3)


def test_decides_width_at_most_logic(small_instances):
    record = run_parametrised(
        small_instances[0], "hybrid", lambda t: HybridDecomposer(timeout=t), 5.0, 4
    )
    assert record.decides_width_at_most(2)
    assert record.decides_width_at_most(3)  # implied by the width-2 HD found
    assert record.decides_width_at_most(1)


def test_run_optimal_solver(small_instances):
    record = run_optimal_solver(small_instances[0], time_budget=5.0, max_width=4)
    assert record.solved
    assert record.optimal_width == 2
    assert record.decisions[1] is False and record.decisions[2] is True


def test_run_experiment_grid(small_instances):
    data = run_experiment(small_instances[:2], time_budget=3.0, max_width=3)
    assert set(data.methods()) == {"NewDetKDecomp", "HtdLEO", "log-k-decomp Hybrid"}
    for method in data.methods():
        assert len(data.records_for(method)) == 2
        assert solved_count(data.records_for(method)) == 2


def test_run_experiment_custom_methods(small_instances):
    specs = [DecomposerSpec("detk", lambda t: DetKDecomposer(timeout=t))]
    lines: list[str] = []
    data = run_experiment(
        small_instances[:1], methods=specs, time_budget=3.0, progress=lines.append
    )
    assert data.methods() == ["detk"]
    assert lines and "detk" in lines[0]


def test_default_method_specs_labels():
    labels = [spec.label for spec in default_method_specs()]
    assert labels == ["NewDetKDecomp", "HtdLEO", "log-k-decomp Hybrid"]


def test_runtime_stats_over_solved_only():
    instances = [
        Instance("cycle6", "Synthetic", generators.cycle(6), "cycle"),
        Instance("k7", "Synthetic", generators.clique(7), "clique"),
    ]
    records = [
        run_parametrised(instances[0], "detk", lambda t: DetKDecomposer(timeout=t), 5.0, 3),
        run_parametrised(instances[1], "detk", lambda t: DetKDecomposer(timeout=t), 0.0, 3),
    ]
    stats = runtime_stats(records)
    assert stats.solved == 1
    assert stats.total == 2
    assert stats.max >= stats.avg >= 0
    assert stats.stdev == 0.0
    assert len(stats.as_row()) == 4


def test_runtime_stats_empty():
    stats = runtime_stats([])
    assert stats.solved == 0 and stats.avg == 0.0


def test_group_records(small_instances):
    records = [
        run_parametrised(inst, "detk", lambda t: DetKDecomposer(timeout=t), 5.0, 3)
        for inst in small_instances
    ]
    grouped = group_records(records)
    assert ("Synthetic", "|E| <= 10") in grouped
    assert ("Application", "|E| <= 10") in grouped
    assert sum(len(v) for v in grouped.values()) == len(records)
