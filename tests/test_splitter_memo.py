"""Property-based tests for the memoized, incidence-indexed ComponentSplitter."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.base import SearchStatistics
from repro.decomp.components import ComponentSplitter
from repro.decomp.extended import Comp, full_comp
from repro.hypergraph import Hypergraph, generators

_vertices = st.sampled_from([f"v{i}" for i in range(8)])
_hypergraphs = st.lists(
    st.frozensets(_vertices, min_size=1, max_size=4), min_size=1, max_size=7
).map(lambda edges: Hypergraph({f"e{i}": sorted(vs) for i, vs in enumerate(edges)}))
_separators = st.integers(min_value=0, max_value=(1 << 10) - 1)


@given(_hypergraphs, st.lists(_separators, min_size=1, max_size=8))
@settings(max_examples=80)
def test_memoized_split_equals_fresh_split(hypergraph, separators):
    memoized = ComponentSplitter(hypergraph, full_comp(hypergraph))
    for separator in separators:
        fresh = ComponentSplitter(hypergraph, full_comp(hypergraph), memoize=False)
        assert memoized.split(separator) == fresh.split(separator)
        # Repeat: served from the memo, still identical.
        assert memoized.split(separator) == fresh.split(separator)


@given(_hypergraphs, _separators)
@settings(max_examples=80)
def test_largest_size_equals_max_component_size(hypergraph, separator):
    splitter = ComponentSplitter(hypergraph, full_comp(hypergraph))
    parts = splitter.split(separator)
    assert splitter.largest_size(separator) == max((p.size for p in parts), default=0)
    # And in the other call order (largest_size first exercises the
    # early-exit flood fill rather than the derive-from-split-memo path).
    fresh = ComponentSplitter(hypergraph, full_comp(hypergraph))
    assert fresh.largest_size(separator) == max((p.size for p in parts), default=0)


def test_effective_separator_shares_memo_entries():
    host = generators.cycle(8)
    comp = full_comp(host)
    stats = SearchStatistics()
    splitter = ComponentSplitter(host, comp, stats=stats)
    separator = host.edge_bits(0) | host.edge_bits(4)
    first = splitter.split(separator)
    # Bits outside V(comp) do not change the effective separator: memo hit.
    outside = 1 << (host.num_vertices + 5)
    second = splitter.split(separator | outside)
    assert first == second
    assert stats.splitter_memo_hits == 1
    assert stats.splitter_memo_misses == 1


def test_memo_results_are_isolated_from_caller_mutation():
    host = generators.cycle(6)
    splitter = ComponentSplitter(host, full_comp(host))
    separator = host.edge_bits(0) | host.edge_bits(3)
    first = splitter.split(separator)
    first.clear()  # callers may consume the returned list
    assert splitter.split(separator) != []


def test_memo_is_bounded():
    host = generators.cycle(10)
    splitter = ComponentSplitter(host, full_comp(host), memo_size=4)
    for index in range(10):
        splitter.split(host.edge_bits(index))
    assert len(splitter._split_memo) <= 4


def test_splitter_with_specials_and_random_separators():
    rng = random.Random(5)
    for trial in range(30):
        host = generators.random_csp(
            rng.randint(4, 9), rng.randint(3, 9), arity=rng.choice([2, 3]), seed=trial
        )
        specials = tuple(
            host.edge_bits(rng.randrange(host.num_edges))
            for _ in range(rng.randint(0, 2))
        )
        edges = frozenset(rng.sample(range(host.num_edges), rng.randint(1, host.num_edges)))
        comp = Comp(edges, specials)
        splitter = ComponentSplitter(host, comp)
        for _ in range(6):
            separator = rng.getrandbits(host.num_vertices)
            fresh = ComponentSplitter(host, comp, memoize=False)
            assert splitter.split(separator) == fresh.split(separator)
            assert splitter.largest_size(separator) == max(
                (c.size for c in fresh.split(separator)), default=0
            )
