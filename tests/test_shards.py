"""Tests for the lock-striped :class:`repro.lru.ShardedLRU`."""

from __future__ import annotations

import threading

import pytest

from repro.lru import BoundedLRU, ShardedLRU
from repro.pipeline.engine import DecompositionEngine, ResultCache


def test_basic_get_put_contains():
    cache = ShardedLRU(max_entries=16, num_shards=4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert "a" in cache and "b" not in cache
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0


def test_capacity_is_split_across_shards_and_bounded():
    cache = ShardedLRU(max_entries=8, num_shards=4)
    for i in range(100):
        cache.put(i, i)
    assert len(cache) <= cache.max_entries
    stats = cache.stats()
    assert stats.stores == 100
    assert stats.evictions >= 100 - cache.max_entries


def test_shard_count_never_exceeds_capacity():
    cache = ShardedLRU(max_entries=2, num_shards=8)
    assert cache.num_shards == 2


def test_recency_is_per_shard():
    # One shard, so plain LRU behaviour must be observable through the wrapper.
    cache = ShardedLRU(max_entries=2, num_shards=1)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a"
    cache.put("c", 3)  # evicts "b", the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3


def test_stats_aggregate_matches_shards():
    cache = ShardedLRU(max_entries=64, num_shards=8)
    for i in range(32):
        cache.put(i, i)
    for i in range(48):  # 32 hits, 16 misses
        cache.get(i)
    per_shard = cache.shard_stats()
    total = cache.stats()
    assert sum(s.hits for s in per_shard) == total.hits == 32
    assert sum(s.misses for s in per_shard) == total.misses == 16
    assert total.hit_rate == pytest.approx(32 / 48)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        ShardedLRU(0)
    with pytest.raises(ValueError):
        ShardedLRU(4, num_shards=0)
    with pytest.raises(ValueError):
        BoundedLRU(0)


def test_concurrent_hammer_is_consistent():
    cache = ShardedLRU(max_entries=256, num_shards=8)
    errors: list[str] = []
    barrier = threading.Barrier(8)

    def worker(worker_id: int) -> None:
        barrier.wait(timeout=10)
        for round_ in range(400):
            key = (worker_id, round_ % 50)
            cache.put(key, (worker_id, round_ % 50))
            value = cache.get(key)
            # The key may have been evicted, but a present value must be
            # exactly what *some* put stored under that key.
            if value is not None and value != key:
                errors.append(f"wrong value {value!r} for {key!r}")
            cache.get((worker_id + 1, round_ % 50))  # cross-shard traffic

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive()
    assert errors == []
    assert len(cache) <= cache.max_entries
    assert cache.stats().stores == 8 * 400


def test_result_cache_exposes_shard_statistics():
    cache = ResultCache(max_entries=64, num_shards=4)
    assert cache.shard_statistics() and len(cache.shard_statistics()) == 4
    assert cache.statistics.hits == 0
    assert cache.get(("missing", 1)) is None
    assert cache.statistics.misses == 1


def test_auxiliary_cache_is_sharded():
    engine = DecompositionEngine()
    aux = engine.auxiliary_cache("test-cache", 32)
    assert isinstance(aux, ShardedLRU)
    aux.put("k", "v")
    assert aux.get("k") == "v"
