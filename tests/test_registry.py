"""Unit tests for the declarative decomposer registry."""

from __future__ import annotations

import pytest

from repro.core import ALGORITHMS, make_decomposer
from repro.core.detk import DetKDecomposer
from repro.core.hybrid import HybridDecomposer
from repro.exceptions import SolverError
from repro.pipeline import DecomposerRegistry, registry


def test_builtins_match_legacy_table():
    assert set(ALGORITHMS) <= set(registry.available())
    for name, cls in ALGORITHMS.items():
        assert isinstance(registry.build(name, use_engine=False), cls)


def test_build_by_alias():
    assert isinstance(registry.build("log-k-decomp-hybrid"), HybridDecomposer)
    assert isinstance(registry.build("det-k-decomp"), DetKDecomposer)


def test_build_forwards_options():
    decomposer = registry.build("detk", timeout=1.5, use_cache=False)
    assert decomposer.timeout == 1.5
    assert decomposer.use_cache is False


def test_unknown_name_raises():
    with pytest.raises(SolverError):
        registry.build("quantum-annealer")
    with pytest.raises(SolverError):
        registry.resolve("quantum-annealer")


def test_make_decomposer_accepts_aliases():
    assert isinstance(make_decomposer("log-k-decomp"), type(make_decomposer("logk")))


def test_contains_and_describe():
    assert "logk" in registry
    assert "log-k-decomp" in registry
    assert "nope" not in registry
    rows = registry.describe()
    assert any(name == "hybrid" and description for name, _, description in rows)


def test_register_custom_factory_with_defaults():
    fresh = DecomposerRegistry()

    class Dummy:
        def __init__(self, timeout=None, flavour="plain"):
            self.timeout = timeout
            self.flavour = flavour

    fresh.register("dummy", factory=Dummy, aliases=("d",), defaults={"flavour": "spicy"})
    built = fresh.build("d", timeout=3)
    assert built.flavour == "spicy" and built.timeout == 3
    # Explicit options override registered defaults.
    assert fresh.build("dummy", flavour="mild").flavour == "mild"


def test_duplicate_registration_rejected_and_overwritable():
    fresh = DecomposerRegistry()
    fresh.register("x", factory=object)
    with pytest.raises(SolverError):
        fresh.register("x", factory=object)
    with pytest.raises(SolverError):
        fresh.register("y", factory=object, aliases=("x",))
    fresh.register("x", factory=dict, overwrite=True)
    assert isinstance(fresh.build("x"), dict)


def test_overwrite_drops_replaced_aliases():
    fresh = DecomposerRegistry()
    fresh.register("x", factory=object, aliases=("old-alias",))
    fresh.register("x", factory=dict, overwrite=True, aliases=("new-alias",))
    assert "old-alias" not in fresh  # no dangling alias -> no KeyError later
    assert isinstance(fresh.build("new-alias"), dict)
    with pytest.raises(SolverError):
        fresh.build("old-alias")


def test_registration_requires_some_factory():
    fresh = DecomposerRegistry()
    with pytest.raises(SolverError):
        fresh.register("ghost")


def test_unregister_removes_aliases():
    fresh = DecomposerRegistry()
    fresh.register("x", factory=object, aliases=("ex",))
    fresh.unregister("ex")
    assert "x" not in fresh
    assert "ex" not in fresh
