"""Tests of the serving layer: QueryEngine, QueryWorkload and the plan cache."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.hypergraph.cq import parse_conjunctive_query
from repro.pipeline.engine import DecompositionEngine, default_engine, set_default_engine
from repro.pipeline.registry import configuration_key
from repro.query import (
    AnswerMode,
    QueryEngine,
    QueryWorkload,
    naive_join_query,
    random_database_for_query,
)


@pytest.fixture
def isolated_engine():
    engine = DecompositionEngine()
    yield engine


@pytest.fixture
def triangle():
    return parse_conjunctive_query("ans(x) :- r(x,y), s(y,z), t(z,x).")


@pytest.fixture
def triangle_db(triangle):
    return random_database_for_query(
        triangle, domain_size=5, tuples_per_relation=25, seed=11
    )


def test_plan_is_cached_per_signature_and_mode(isolated_engine, triangle, triangle_db):
    engine = QueryEngine(engine=isolated_engine)
    first = engine.execute(triangle, triangle_db)
    again = engine.execute(triangle, triangle_db)
    other_mode = engine.execute(triangle, triangle_db, mode="count")
    assert not first.plan_cached
    assert again.plan_cached
    assert not other_mode.plan_cached  # a mode is part of the plan
    assert again.planned is first.planned
    naive = naive_join_query(triangle_db, triangle.atoms, triangle.free_variables)
    assert first.answers.as_dicts() == naive.as_dicts()
    assert other_mode.count == len(naive)


def test_identical_hypergraphs_share_decompositions(isolated_engine, triangle):
    # A query with different output variables has a different plan signature
    # (it misses the plan cache) but the identical hypergraph, so the
    # decomposition is served from the engine's canonical-hash result cache.
    engine = QueryEngine(engine=isolated_engine)
    other_head = parse_conjunctive_query("ans(y, z) :- r(x,y), s(y,z), t(z,x).")
    db = random_database_for_query(triangle, seed=1)
    engine.execute(triangle, db)
    hits_before = isolated_engine.cache.statistics.hits
    result = engine.execute(other_head, db)
    assert not result.plan_cached
    assert isolated_engine.cache.statistics.hits > hits_before
    naive = naive_join_query(db, other_head.atoms, other_head.free_variables)
    assert result.answers.as_dicts() == naive.as_dicts()


def test_workload_reports_cache_traffic(isolated_engine, triangle, triangle_db):
    engine = QueryEngine(engine=isolated_engine)
    workload = (
        QueryWorkload(triangle_db, engine=engine)
        .extend([triangle] * 4)
        .add(triangle, mode="boolean")
    )
    assert len(workload) == 5
    report = workload.run()
    assert report.queries_run == 5
    # First enumerate compiles, three hit; the boolean plan compiles fresh.
    assert report.plan_cache_misses == 2
    assert report.plan_cache_hits == 3
    assert all(r.boolean for r in report.results)
    assert report.total_seconds >= 0


def test_workload_modes_agree(isolated_engine, triangle, triangle_db):
    engine = QueryEngine(engine=isolated_engine)
    report = (
        QueryWorkload(triangle_db, engine=engine)
        .add(triangle, "enumerate")
        .add(triangle, "count")
        .add(triangle, "boolean")
        .run()
    )
    enumerate_result, count_result, boolean_result = report.results
    assert enumerate_result.mode is AnswerMode.ENUMERATE
    assert count_result.count == len(enumerate_result.answers)
    assert boolean_result.boolean == (len(enumerate_result.answers) > 0)


def test_column_store_persists_per_database(isolated_engine, triangle, triangle_db):
    engine = QueryEngine(engine=isolated_engine)
    store = engine.store_for(triangle_db)
    assert engine.store_for(triangle_db) is store
    engine.execute(triangle, triangle_db)
    # The base relations were encoded into the persistent store.
    assert store._atom_tables


def test_unsatisfiable_width_raises(isolated_engine):
    query = parse_conjunctive_query("ans(a) :- r(a,b), s(b,c), t(c,a).")
    database = random_database_for_query(query, seed=0)
    engine = QueryEngine(engine=isolated_engine, max_width=1)
    with pytest.raises(QueryError):
        engine.execute(query, database)


def test_configuration_key_resolves_aliases_and_defaults():
    assert configuration_key("hybrid") == configuration_key("log-k-decomp-hybrid")
    assert configuration_key("hybrid") != configuration_key("hybrid", threshold=7.0)
    assert configuration_key("logk") != configuration_key("detk")


def test_auxiliary_cache_is_named_and_stable():
    engine = DecompositionEngine()
    cache = engine.auxiliary_cache("query-plans", 16)
    assert engine.auxiliary_cache("query-plans") is cache
    assert engine.auxiliary_cache("other") is not cache
    cache.put("k", "v")
    assert cache.get("k") == "v"


def test_default_engine_reset_drops_plan_cache(triangle, triangle_db):
    previous = default_engine()
    try:
        set_default_engine(None)
        engine = QueryEngine()  # uses the process-wide engine
        engine.execute(triangle, triangle_db)
        assert len(default_engine().auxiliary_cache(QueryEngine.PLAN_CACHE_NAME)) == 1
        set_default_engine(None)
        assert len(default_engine().auxiliary_cache(QueryEngine.PLAN_CACHE_NAME)) == 0
    finally:
        set_default_engine(previous)
