"""Unit tests for the shared decomposer infrastructure (core.base)."""

from __future__ import annotations

import pytest

from repro.core import DetKDecomposer, LogKDecomposer
from repro.core.base import SearchContext, SearchStatistics
from repro.exceptions import SolverError, TimeoutExceeded
from repro.hypergraph import Hypergraph, generators


def test_statistics_record_call():
    stats = SearchStatistics()
    stats.record_call(1)
    stats.record_call(3)
    stats.record_call(2)
    assert stats.recursive_calls == 3
    assert stats.max_recursion_depth == 3


def test_statistics_merge():
    a = SearchStatistics(recursive_calls=2, max_recursion_depth=4, labels_tried=10)
    b = SearchStatistics(recursive_calls=3, max_recursion_depth=2, cache_hits=1)
    a.merge(b)
    assert a.recursive_calls == 5
    assert a.max_recursion_depth == 4
    assert a.labels_tried == 10
    assert a.cache_hits == 1


def test_search_context_rejects_bad_k(cycle6):
    with pytest.raises(SolverError):
        SearchContext(cycle6, 0)


def test_search_context_timeout(cycle6):
    context = SearchContext(cycle6, 2, timeout=0.0)
    with pytest.raises(TimeoutExceeded):
        context.force_timeout_check()


def test_search_context_no_timeout(cycle6):
    context = SearchContext(cycle6, 2, timeout=None)
    for _ in range(500):
        context.check_timeout()
    context.force_timeout_check()


def test_decompose_rejects_empty_hypergraph():
    empty = Hypergraph({})
    with pytest.raises(SolverError):
        LogKDecomposer().decompose(empty, 1)
    with pytest.raises(SolverError):
        DetKDecomposer().decompose(empty, 1)


def test_decompose_rejects_bad_width(cycle6):
    with pytest.raises(SolverError):
        LogKDecomposer().decompose(cycle6, 0)


def test_result_properties(cycle6):
    result = LogKDecomposer().decompose(cycle6, 2)
    assert result.success
    assert result.width == 2
    assert result.decided
    assert not result.timed_out
    assert result.elapsed >= 0
    assert "log-k-decomp" in repr(result)


def test_result_failure_has_no_width(cycle6):
    result = LogKDecomposer().decompose(cycle6, 1)
    assert not result.success
    assert result.width is None
    assert result.decided


def test_timeout_marks_result(clique5):
    # An absurdly small budget forces a timeout on a non-trivial search.
    result = DetKDecomposer(timeout=0.0).decompose(generators.clique(7), 3)
    assert result.timed_out
    assert not result.success
    assert not result.decided
    assert result.width is None
    assert "timeout" in repr(result)


def test_is_width_at_most(cycle6):
    decomposer = LogKDecomposer()
    assert decomposer.is_width_at_most(cycle6, 2) is True
    assert decomposer.is_width_at_most(cycle6, 1) is False
    timed = DetKDecomposer(timeout=0.0)
    assert timed.is_width_at_most(generators.clique(7), 3) is None


def test_repr_mentions_timeout():
    assert "timeout=5" in repr(LogKDecomposer(timeout=5))


def test_statistics_are_populated(cycle10):
    result = LogKDecomposer().decompose(cycle10, 2)
    stats = result.statistics
    assert stats.recursive_calls > 0
    assert stats.max_recursion_depth >= 1
    assert stats.labels_tried > 0
