"""Unit tests for the stable JSON codec of decompositions and join trees."""

from __future__ import annotations

import json

import pytest

from repro import Hypergraph, hypertree_width
from repro.core.codec import (
    DECOMPOSITION_FORMAT,
    class_for_kind,
    decomposition_from_dict,
    decomposition_from_json,
    decomposition_to_dict,
    decomposition_to_json,
    join_tree_from_json,
    join_tree_to_json,
    kind_of,
)
from repro.decomp import (
    GeneralizedHypertreeDecomposition,
    HypertreeDecomposition,
    join_tree_from_decomposition,
    validate_hd,
)
from repro.exceptions import DecompositionError, ParseError
from repro.hypergraph import generators


@pytest.fixture
def triangle():
    return Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})


def test_decomposition_roundtrip_preserves_everything(triangle):
    width, hd = hypertree_width(triangle)
    restored = decomposition_from_json(triangle, decomposition_to_json(hd))
    assert type(restored) is type(hd)
    assert restored.width == hd.width == width
    assert len(restored) == len(hd)
    validate_hd(restored)


def test_encoding_is_byte_stable(triangle):
    _, hd = hypertree_width(triangle)
    text = decomposition_to_json(hd)
    # Encoding the decoded object again must reproduce the exact bytes —
    # the catalog relies on this for row comparison and deduplication.
    assert decomposition_to_json(decomposition_from_json(triangle, text)) == text
    assert json.loads(text)["format"] == DECOMPOSITION_FORMAT


def test_roundtrip_on_larger_instances():
    for hypergraph in (generators.cycle(10), generators.grid(3, 3)):
        width, hd = hypertree_width(hypergraph)
        restored = decomposition_from_json(hypergraph, decomposition_to_json(hd))
        assert restored.width == width
        validate_hd(restored)


def test_kind_tags_roundtrip():
    assert class_for_kind(kind_of(HypertreeDecomposition)) is HypertreeDecomposition
    assert (
        class_for_kind(kind_of(GeneralizedHypertreeDecomposition))
        is GeneralizedHypertreeDecomposition
    )
    with pytest.raises(ParseError):
        class_for_kind("no-such-kind")
    with pytest.raises(ParseError):
        kind_of(dict)


def test_malformed_payloads_raise_parse_error(triangle):
    _, hd = hypertree_width(triangle)
    good = decomposition_to_dict(hd)

    with pytest.raises(ParseError):
        decomposition_from_json(triangle, "not json {")
    with pytest.raises(ParseError):
        decomposition_from_dict(triangle, {"format": "wrong/0", "kind": "hd"})
    with pytest.raises(ParseError):
        decomposition_from_dict(triangle, {**good, "kind": "no-such-kind"})
    with pytest.raises(ParseError):
        decomposition_from_dict(triangle, {**good, "root": "not a node"})

    missing = dict(good)
    del missing["root"]
    with pytest.raises(ParseError):
        decomposition_from_dict(triangle, missing)

    bad_bag = json.loads(decomposition_to_json(hd))
    bad_bag["root"]["bag"] = [1, 2, 3]
    with pytest.raises(ParseError):
        decomposition_from_dict(triangle, bad_bag)


def test_payload_cannot_smuggle_foreign_structure(triangle):
    # A payload referencing edges/vertices the host does not have must be
    # rejected by the class constructor at decode time.
    _, hd = hypertree_width(triangle)
    tampered = json.loads(decomposition_to_json(hd))
    tampered["root"]["cover"] = ["no-such-edge"]
    with pytest.raises(DecompositionError):
        decomposition_from_dict(triangle, tampered)


def test_join_tree_roundtrip(triangle):
    _, hd = hypertree_width(triangle)
    join_tree = join_tree_from_decomposition(hd)
    restored = join_tree_from_json(triangle, join_tree_to_json(join_tree))
    assert join_tree_to_json(restored) == join_tree_to_json(join_tree)
    restored.validate()


def test_join_tree_rejects_decomposition_payload(triangle):
    _, hd = hypertree_width(triangle)
    with pytest.raises(ParseError):
        join_tree_from_json(triangle, decomposition_to_json(hd))
