"""HD-guided conjunctive query evaluation (the paper's database motivation).

Run with ``python examples/query_evaluation.py``.

The example serves a small workload of analytics-style queries through the
plan-compiled columnar engine: each query's hypertree decomposition is
compiled into an operator program once, cached, and executed over
dictionary-encoded column-major relations.  The three answer modes —
``enumerate``, ``boolean`` and ``count`` — run from the same cached plan
state, and the naive join of all atoms double-checks the answers.
"""

from __future__ import annotations

import time

from repro.hypergraph.cq import parse_conjunctive_query
from repro.query import (
    QueryEngine,
    QueryWorkload,
    naive_join_query,
    random_database_for_query,
)

#: A cyclic join of fact tables with a dimension lookup — the kind of query
#: the paper's introduction motivates hypertree decompositions with.
QUERY_TEXT = """
ans(customer, region) :-
    orders(customer, o),
    lineitem(o, product),
    located(product, region),
    serves(region, customer)
"""


def main() -> None:
    query = parse_conjunctive_query(QUERY_TEXT, name="cyclic-analytics")
    print("Query:", query, "\n")

    database = random_database_for_query(
        query, domain_size=60, tuples_per_relation=400, seed=42
    )
    print("Database relations:")
    for name in database.relation_names():
        print(f"  {name}: {len(database.get(name))} tuples")

    engine = QueryEngine(algorithm="hybrid")

    # First execution: decompose, compile the plan, encode the base tables.
    start = time.perf_counter()
    first = engine.execute(query, database)
    cold_ms = (time.perf_counter() - start) * 1000
    print(f"\nHypertree width of the query: {first.width}")
    print("Compiled operator program:")
    print(first.planned.plan.describe())
    print(
        f"\nCold execution: {len(first.answers)} answers in {cold_ms:.1f} ms "
        f"(decomposition {first.planned.decomposition_seconds * 1000:.1f} ms, "
        f"plan compile {first.planned.compile_seconds * 1000:.1f} ms)"
    )

    # A workload of repeated shapes: plans, bags and indexes are all warm.
    workload = (
        QueryWorkload(database, engine=engine)
        .extend([query] * 10)
        .add(query, mode="count")
        .add(query, mode="boolean")
    )
    report = workload.run()
    per_query = report.total_seconds / report.queries_run * 1000
    print(
        f"\nWarm workload: {report.queries_run} queries in "
        f"{report.total_seconds * 1000:.1f} ms ({per_query:.2f} ms/query, "
        f"{report.plan_cache_hits} plan-cache hits, "
        f"{report.plan_cache_misses} misses)"
    )
    count_result = report.results[-2]
    boolean_result = report.results[-1]
    print(f"count mode: {count_result.count} answers (no decoding)")
    print(f"boolean mode: satisfiable={boolean_result.boolean} (early exit)")

    # Reference: naive join of all atoms.
    start = time.perf_counter()
    naive = naive_join_query(database, query.atoms, query.free_variables)
    naive_ms = (time.perf_counter() - start) * 1000
    print(f"\nNaive join evaluation: {len(naive)} answers in {naive_ms:.1f} ms")

    assert first.answers.as_dicts() == naive.as_dicts(), "the two plans must agree"
    assert count_result.count == len(naive)
    print("Plan-compiled and naive evaluation return identical answers.")
    sample = sorted(first.answers.tuples)[:5]
    print("First answers:", sample)


if __name__ == "__main__":
    main()
