"""HD-guided conjunctive query evaluation (the paper's database motivation).

Run with ``python examples/query_evaluation.py``.

The example evaluates a cyclic analytics-style query over a randomly generated
database in two ways — the naive join of all atoms and the HD-guided pipeline
(decompose, materialise bags, run Yannakakis) — and shows that both return the
same answers while the HD-guided plan only ever joins at most ``width``
relations at a time.
"""

from __future__ import annotations

import time

from repro.hypergraph.cq import parse_conjunctive_query
from repro.query import evaluate_query, naive_join_query, random_database_for_query

#: A "cyclic snowflake": a cycle of fact tables with dimension lookups, the
#: kind of query the paper's introduction motivates HDs with.
QUERY_TEXT = """
ans(customer, region) :-
    orders(customer, order),
    lineitem(order, product),
    supplies(product, supplier),
    located(supplier, region),
    serves(region, customer),
    product_info(product, category)
"""


def main() -> None:
    query = parse_conjunctive_query(QUERY_TEXT, name="cyclic-snowflake")
    print("Query:", query, "\n")

    database = random_database_for_query(
        query, domain_size=12, tuples_per_relation=120, seed=42
    )
    print("Database relations:")
    for name in database.relation_names():
        print(f"  {name}: {len(database.get(name))} tuples")

    # HD-guided evaluation.
    start = time.perf_counter()
    report = evaluate_query(query, database, algorithm="hybrid")
    guided_seconds = time.perf_counter() - start
    print(f"\nHypertree width of the query: {report.width}")
    print("Decomposition used as the join plan:")
    print(report.decomposition.describe())
    print(
        f"\nHD-guided evaluation: {len(report.answers)} answers "
        f"in {guided_seconds * 1000:.1f} ms "
        f"(decomposition {report.decomposition_seconds * 1000:.1f} ms, "
        f"Yannakakis {report.evaluation_seconds * 1000:.1f} ms)"
    )

    # Reference: naive join of all atoms.
    start = time.perf_counter()
    naive = naive_join_query(database, query.atoms, query.free_variables)
    naive_seconds = time.perf_counter() - start
    print(f"Naive join evaluation: {len(naive)} answers in {naive_seconds * 1000:.1f} ms")

    assert report.answers.as_dicts() == naive.as_dicts(), "the two plans must agree"
    print("\nBoth plans return identical answers.")
    sample = sorted(report.answers.tuples)[:5]
    print("First answers:", sample)


if __name__ == "__main__":
    main()
