"""Serving a duplicate-heavy workload through the DecompositionService.

Run with ``python examples/service_workload.py``.

Eight client threads hammer one service with overlapping decomposition and
query requests.  The point of the demo is what does *not* happen: although
96 decomposition requests arrive, only a handful of searches run — in-flight
deduplication coalesces concurrent duplicates onto one computation and the
sharded result memo serves repeats at submit time.  The stats snapshot at
the end makes the serving behaviour visible.
"""

from __future__ import annotations

import threading

from repro import DecompositionEngine
from repro.hypergraph import generators
from repro.hypergraph.cq import parse_conjunctive_query
from repro.query import random_database_for_query
from repro.service import DecompositionService

CLIENTS = 8
ROUNDS = 2
INSTANCES = [
    (generators.cycle(6), 2),
    (generators.cycle(10), 2),
    (generators.grid(2, 3), 2),
    (generators.clique(5), 3),
    (generators.hypercycle(8, 3), 2),
    (generators.triangle_cascade(3), 2),
]
QUERY = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z), t(z,x).", name="demo")


def main() -> None:
    database = random_database_for_query(QUERY, domain_size=8, tuples_per_relation=40)
    service = DecompositionService(num_workers=4, engine=DecompositionEngine())
    barrier = threading.Barrier(CLIENTS)

    def client(client_id: int) -> None:
        barrier.wait()
        for _ in range(ROUNDS):
            tickets = [service.submit(h, k) for h, k in INSTANCES]
            is_sat = service.submit_query(QUERY, database, "boolean")
            for ticket in tickets:
                assert ticket.result(timeout=60).success
            assert is_sat.result(timeout=60).boolean in (True, False)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    stats = service.stats()
    service.shutdown(wait=True)

    total = CLIENTS * ROUNDS * (len(INSTANCES) + 1)
    print(f"{CLIENTS} clients x {ROUNDS} rounds -> {total} requests")
    print(f"  searches actually run : {stats.computations}")
    print(f"  coalesced in flight   : {stats.coalesced}")
    print(f"  memo fast-path hits   : {stats.fast_path_hits}")
    print(f"  latency p50 / p95     : {stats.latency_p50 * 1000:.2f} / "
          f"{stats.latency_p95 * 1000:.2f} ms")
    print(f"  engine cache hit rate : {stats.engine_cache.hit_rate:.0%}")
    assert stats.completed == total
    assert stats.computations_by_kind["decompose"] <= len(INSTANCES)


if __name__ == "__main__":
    main()
