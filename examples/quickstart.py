"""Quickstart: compute hypertree decompositions with log-k-decomp.

Run with ``python examples/quickstart.py``.

The example builds a small cyclic hypergraph (the 10-cycle used in the
paper's Appendix B walkthrough), checks a given width with the optimised
log-k-decomp algorithm, computes the exact hypertree width, and prints the
resulting decomposition together with the search statistics that illustrate
the logarithmic recursion depth.
"""

from __future__ import annotations

from repro import Hypergraph, decompose, hypertree_width, simplify
from repro.decomp import validate_hd
from repro.hypergraph import generators, parse_hypergraph


def main() -> None:
    # 1. Build a hypergraph: either programmatically ...
    cycle = generators.cycle(10)
    print(f"Instance: {cycle!r}")

    # ... or from the HyperBench text format.
    parsed = parse_hypergraph(
        """
        r1(x, y),
        r2(y, z),
        r3(z, w),
        r4(w, x).
        """,
        name="square",
    )
    print(f"Parsed from text: {parsed!r}\n")

    # 2. Decision problem: does an HD of width <= 2 exist?
    result = decompose(cycle, k=2, algorithm="logk")
    print(f"hw(C10) <= 2?  {result.success}  ({result.elapsed * 1000:.1f} ms)")
    print(
        "  recursive calls:", result.statistics.recursive_calls,
        "| max recursion depth:", result.statistics.max_recursion_depth,
        "(logarithmic in |E| = 10, Theorem 4.1)",
    )

    # 3. The produced decomposition is a concrete, validated object.
    hd = result.decomposition
    validate_hd(hd)
    print("\nHypertree decomposition of the 10-cycle (width", hd.width, "):")
    print(hd.describe())

    # 4. Exact hypertree width by iterative deepening (k = 1 is refuted first).
    width, _ = hypertree_width(cycle)
    print(f"\nExact hypertree width of C10: {width}")

    # 4b. Every decompose() call runs through the staged pipeline: the input
    # is simplified with width-preserving reductions, decided answers are
    # cached under a canonical hash, and the decomposition is lifted back to
    # the original hypergraph.  Per-stage timings land in the statistics.
    redundant = Hypergraph(
        {
            "big": ["x", "y", "z"],
            "sub": ["x", "y"],        # subsumed by "big" -> removed before search
            "tail": ["z", "t1", "t2"],  # t1/t2 are interchangeable -> collapsed
        },
        name="redundant",
    )
    trace = simplify(redundant)
    print(f"\nSimplifier on {redundant.name!r}: {trace.summary()}")
    result = decompose(redundant, k=1)
    print("stage timings:", {s: f"{t * 1000:.2f}ms" for s, t in result.statistics.stage_seconds.items()})
    validate_hd(result.decomposition)  # lifted HD is valid on the *original*

    # 5. Works the same for arbitrary hypergraphs.
    custom = Hypergraph(
        {
            "orders": ["customer", "order", "date"],
            "items": ["order", "product", "qty"],
            "stock": ["product", "warehouse"],
            "pref": ["customer", "product"],
        },
        name="shop",
    )
    width, hd = hypertree_width(custom)
    print(f"\nhw({custom.name}) = {width}")
    print(hd.describe())


if __name__ == "__main__":
    main()
