"""Parallel separator search: measuring multi-core scaling (Figure 1 style).

Run with ``python examples/parallel_scaling.py``.

The example decomposes a batch of larger instances with 1, 2 and 4 worker
processes and reports the wall-clock times.  The parallel backend partitions
the top-level balanced-separator search space across workers exactly as the
paper's implementation distributes it across cores (Appendix D.1).  It also
runs the thread backend once to demonstrate why processes are used: the GIL
prevents CPU-bound threads from scaling.
"""

from __future__ import annotations

import time

from repro.core import ParallelLogKDecomposer
from repro.hypergraph import generators


def instances():
    # Negative (refutation) instances: the width asked for is one below the
    # true hypertree width, so the full balanced-separator space must be
    # explored — exactly the regime in which the paper observes the best
    # parallel scaling ("negative instances where the full search space is
    # explored").
    return [
        ("chorded cycle, 78 edges (hw=3), k=2",
         generators.with_chords(generators.cycle(70), 8, seed=9), 2),
        ("chorded cycle, 92 edges (hw=3), k=2",
         generators.with_chords(generators.cycle(85), 7, seed=12), 2),
        ("chorded cycle, 116 edges (hw>=3), k=2",
         generators.with_chords(generators.cycle(110), 6, seed=3), 2),
    ]


def run(backend: str, workers: int) -> float:
    total = 0.0
    for _, hypergraph, k in instances():
        decomposer = ParallelLogKDecomposer(
            num_workers=workers, backend=backend, hybrid=False, timeout=120
        )
        start = time.perf_counter()
        decomposer.decompose(hypergraph, k)
        total += time.perf_counter() - start
    return total


def main() -> None:
    print("Instances:")
    for name, hypergraph, k in instances():
        print(f"  {name}: |E|={hypergraph.num_edges}, |V|={hypergraph.num_vertices}, k={k}")
    print()

    baseline = None
    for workers in (1, 2, 4):
        elapsed = run("process", workers)
        baseline = baseline or elapsed
        print(
            f"process backend, {workers} worker(s): {elapsed:6.2f} s "
            f"(speedup {baseline / elapsed:4.2f}x)"
        )

    threaded = run("thread", 4)
    print(
        f"thread  backend, 4 worker(s): {threaded:6.2f} s "
        f"(speedup {baseline / threaded:4.2f}x — limited by the GIL, as documented)"
    )


if __name__ == "__main__":
    main()
