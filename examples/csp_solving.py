"""HD-guided constraint solving: graph colouring as a table CSP.

Run with ``python examples/csp_solving.py``.

The example encodes 3-colouring of a wheel-like graph as a CSP with binary
table constraints, abstracts it to a hypergraph, and solves it with the
decomposition-guided solver.  A plain backtracking solver double-checks the
answer.  The same is repeated for an unsatisfiable variant to show that the
HD-guided solver also proves unsatisfiability.
"""

from __future__ import annotations

from repro.hypergraph.cq import CSPInstance
from repro.query import DecompositionCSPSolver, backtracking_solve


def colouring_csp(edges: list[tuple[str, str]], colours: int, name: str) -> CSPInstance:
    """Encode graph colouring with one "different colour" table per edge."""
    allowed = tuple(
        (a, b) for a in range(colours) for b in range(colours) if a != b
    )
    constraints = tuple(
        (f"edge_{u}_{v}", (u, v), allowed) for u, v in edges
    )
    return CSPInstance(constraints=constraints, name=name)


def wheel_edges(spokes: int) -> list[tuple[str, str]]:
    """A wheel: a cycle of `spokes` rim vertices all connected to a hub."""
    edges = [(f"r{i}", f"r{(i + 1) % spokes}") for i in range(spokes)]
    edges += [("hub", f"r{i}") for i in range(spokes)]
    return edges


def solve_and_report(csp: CSPInstance) -> None:
    solver = DecompositionCSPSolver(algorithm="hybrid")
    solution = solver.solve(csp)
    reference = backtracking_solve(csp)

    print(f"Instance {csp.name!r}")
    print(f"  hypergraph: {csp.hypergraph()!r}")
    print(f"  hypertree width used: {solution.width}")
    print(f"  satisfiable: {solution.satisfiable} (backtracking agrees: "
          f"{(reference is not None) == solution.satisfiable})")
    if solution.satisfiable:
        print(f"  solutions found: {solution.num_solutions_found}")
        assignment = solution.assignment
        shown = {k: assignment[k] for k in sorted(assignment)[:6]}
        print(f"  one witness (first variables): {shown}")
    print()


def main() -> None:
    # An even wheel with 6 rim vertices is 3-colourable (the rim is an even cycle).
    solve_and_report(colouring_csp(wheel_edges(6), colours=3, name="wheel-6 / 3 colours"))

    # An odd wheel with 5 rim vertices is NOT 3-colourable.
    solve_and_report(colouring_csp(wheel_edges(5), colours=3, name="wheel-5 / 3 colours"))

    # But it is 4-colourable.
    solve_and_report(colouring_csp(wheel_edges(5), colours=4, name="wheel-5 / 4 colours"))


if __name__ == "__main__":
    main()
