"""Survey the hypertree widths of a HyperBench-like corpus.

Run with ``python examples/width_survey.py``.

The example generates the tiny benchmark corpus, resolves the optimal
hypertree width of every instance with the hybrid decomposer (within a small
per-run budget), and prints a summary by origin and size group — a miniature
of the analysis behind the paper's Tables 1 and 3.
"""

from __future__ import annotations

from collections import Counter

from repro.bench.corpus import generate_corpus
from repro.bench.runner import run_parametrised
from repro.pipeline import build


def main() -> None:
    instances = generate_corpus(scale="tiny")
    print(f"Corpus: {len(instances)} instances\n")

    records = []
    for instance in instances:
        record = run_parametrised(
            instance,
            "hybrid",
            lambda timeout: build("hybrid", timeout=timeout, threshold=40),
            time_budget=1.0,
            max_width=4,
        )
        records.append(record)
        status = f"hw = {record.optimal_width}" if record.solved else "unsolved (budget/width cap)"
        print(
            f"  {instance.name:<20} {instance.origin:<12} |E|={instance.num_edges:<4} {status}"
        )

    print("\nSolved instances per width:")
    widths = Counter(r.optimal_width for r in records if r.solved)
    for width in sorted(widths):
        print(f"  width {width}: {widths[width]}")

    print("\nSolved / total per origin:")
    for origin in ("Application", "Synthetic"):
        solved = sum(1 for r in records if r.origin == origin and r.solved)
        total = sum(1 for r in records if r.origin == origin)
        print(f"  {origin:<12} {solved}/{total}")

    acyclic = sum(1 for r in records if r.optimal_width == 1)
    print(f"\nAcyclic (width-1) instances: {acyclic}")


if __name__ == "__main__":
    main()
