"""The durable decomposition catalog: restart-warm serving from SQLite.

Run with ``python examples/durable_catalog.py``.

The example simulates a service restart.  A first engine computes a mixed
workload with a catalog file mounted as the durable L2 tier behind its
in-memory result cache and is then thrown away; a second, freshly
constructed engine over the same file answers the identical workload
entirely from the catalog — zero searches run, every loaded certificate is
re-validated before use — and the provenance of what was persisted is
printed the way ``python -m repro.catalog list`` would show it.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import DecompositionEngine, LogKDecomposer, validate_hd
from repro.catalog import DecompositionCatalog
from repro.hypergraph import generators


def workload():
    return [
        (generators.cycle(6), 2),
        (generators.cycle(10), 2),
        (generators.grid(2, 3), 2),
        (generators.clique(5), 3),
        (generators.cycle(8), 1),  # a decided "no" is persisted too
    ]


def run(engine: DecompositionEngine, label: str) -> None:
    decomposer = LogKDecomposer(engine=engine)
    start = time.perf_counter()
    searches = 0
    for hypergraph, k in workload():
        result = decomposer.decompose(hypergraph, k)
        if "decompose" in result.statistics.stage_seconds:
            searches += 1
        if result.success:
            validate_hd(result.decomposition)
    elapsed = (time.perf_counter() - start) * 1000
    engine.catalog.flush()  # settle the write-behind queue before reading stats
    stats = engine.catalog.stats()
    print(
        f"{label:<13}: {elapsed:7.1f} ms, {searches} searches ran, "
        f"L2 hits={stats.hits} stores={stats.stores} "
        f"validate-rejects={stats.validate_rejects}"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "decompositions.db")

        print(f"catalog file: {path}")
        cold = DecompositionEngine(catalog=path)
        run(cold, "cold process")
        cold.catalog.close()  # flushes the write-behind queue

        # A brand-new engine over the same file: the "restarted" process.
        warm = DecompositionEngine(catalog=path)
        run(warm, "after restart")
        assert warm.catalog.stats().hits == len(workload())
        warm.catalog.close()

        print("\npersisted entries (with provenance):")
        with DecompositionCatalog(path) as catalog:
            for record in catalog.entries():
                outcome = "hd found" if record.success else "no hd  "
                print(
                    f"  {record.canonical_hash[:12]}  k={record.k}  {outcome}  "
                    f"{record.algorithm}  {record.wall_seconds * 1000:6.2f} ms  "
                    f"{record.created_at}  v{record.code_version}"
                )


if __name__ == "__main__":
    main()
