"""Bounded mappings with least-recently-used eviction.

Two flavours are provided:

* :class:`BoundedLRU` — the minimal single-threaded map shared by the
  per-search LRU sites of the library (the component splitter's memos in
  :mod:`repro.decomp.components`, the log-k search's splitter pool in
  :mod:`repro.core.logk`).  Deliberately tiny: no statistics, no locking;
  callers layer their own counting on top where they need it.
* :class:`ShardedLRU` — a thread-safe, lock-striped wrapper partitioning the
  key space over independent :class:`BoundedLRU` shards, each behind its own
  lock.  Concurrent callers hitting different shards never contend, which is
  what lets the serving layer (:mod:`repro.service`) drive the engine result
  cache, the compiled-plan cache and the per-database column stores from many
  threads at once.  Per-shard hit/miss/store/eviction counters make cache
  behaviour observable (:meth:`ShardedLRU.shard_stats`).

Example::

    >>> from repro.lru import ShardedLRU
    >>> cache = ShardedLRU(max_entries=64, num_shards=4)
    >>> cache.put("answer", 42)
    0
    >>> cache.get("answer")
    42
    >>> cache.stats().hits
    1
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["BoundedLRU", "ShardStats", "ShardedLRU"]


class BoundedLRU:
    """An insertion-bounded key→value map; reads refresh recency."""

    __slots__ = ("max_entries", "_entries")

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()

    def get(self, key):
        """Return the stored value (refreshing its recency), or ``None``."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key, value) -> int:
        """Insert or overwrite, evicting the least-recently-used overflow.

        Returns the number of evicted entries (the engine's result cache
        counts them in its statistics).
        """
        entries = self._entries
        entries[key] = value
        entries.move_to_end(key)
        evicted = 0
        while len(entries) > self.max_entries:
            entries.popitem(last=False)
            evicted += 1
        return evicted

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries


@dataclass
class ShardStats:
    """Traffic counters of one shard (or an aggregate over shards).

    Field order matches the historical ``CacheStatistics`` of the engine
    result cache (now an alias of this class), so positional construction
    keeps its old meaning.  Instances returned by :meth:`ShardedLRU.stats`
    are point-in-time snapshots, not live views.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits as a fraction of lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def merge(self, other: "ShardStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions


class ShardedLRU:
    """A thread-safe bounded LRU striped over independently locked shards.

    Keys are assigned to shards by ``hash(key)``; each shard is a private
    :class:`BoundedLRU` guarded by its own lock, so operations on different
    shards proceed concurrently and an operation only ever holds one lock
    (there is no global lock to convoy on).  Capacity is split evenly across
    the shards, which makes eviction per-shard-local: a hot shard evicts its
    own least-recently-used entries without touching the recency order of
    the others.  Because every shard holds at least one entry, the requested
    capacity is rounded **up** to the next multiple of ``num_shards``; the
    effective bound is published as :attr:`max_entries` (e.g. requesting
    ``max_entries=10, num_shards=8`` yields 8 shards of 2 = 16).  ``len``
    and :meth:`stats` aggregate over shards and are therefore only momentary
    snapshots under concurrent mutation.
    """

    __slots__ = ("max_entries", "num_shards", "_shards", "_locks", "_stats")

    def __init__(self, max_entries: int, num_shards: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        num_shards = min(num_shards, max_entries)
        per_shard = -(-max_entries // num_shards)  # ceil division
        self.max_entries = per_shard * num_shards
        self.num_shards = num_shards
        self._shards = [BoundedLRU(per_shard) for _ in range(num_shards)]
        self._locks = [threading.Lock() for _ in range(num_shards)]
        self._stats = [ShardStats() for _ in range(num_shards)]

    def _index(self, key) -> int:
        return hash(key) % self.num_shards

    def get(self, key):
        """Return the stored value (refreshing its recency), or ``None``."""
        index = self._index(key)
        with self._locks[index]:
            value = self._shards[index].get(key)
            if value is None:
                self._stats[index].misses += 1
            else:
                self._stats[index].hits += 1
            return value

    def put(self, key, value) -> int:
        """Insert or overwrite; returns the number of evicted entries."""
        index = self._index(key)
        with self._locks[index]:
            evicted = self._shards[index].put(key, value)
            self._stats[index].stores += 1
            self._stats[index].evictions += evicted
            return evicted

    def clear(self) -> None:
        for index in range(self.num_shards):
            with self._locks[index]:
                self._shards[index].clear()

    def __len__(self) -> int:
        total = 0
        for index in range(self.num_shards):
            with self._locks[index]:
                total += len(self._shards[index])
        return total

    def __contains__(self, key) -> bool:
        index = self._index(key)
        with self._locks[index]:
            return key in self._shards[index]

    def shard_stats(self) -> list[ShardStats]:
        """A snapshot of each shard's counters, in shard order."""
        snapshot = []
        for index in range(self.num_shards):
            with self._locks[index]:
                stats = self._stats[index]
                snapshot.append(
                    ShardStats(
                        hits=stats.hits,
                        misses=stats.misses,
                        evictions=stats.evictions,
                        stores=stats.stores,
                    )
                )
        return snapshot

    def stats(self) -> ShardStats:
        """Aggregate counters over all shards."""
        total = ShardStats()
        for shard in self.shard_stats():
            total.merge(shard)
        return total
