"""A minimal bounded mapping with least-recently-used eviction.

Shared by the three LRU sites of the library — the engine's result cache
(:mod:`repro.pipeline.engine`), the component splitter's per-subproblem memos
(:mod:`repro.decomp.components`) and the log-k search's splitter pool
(:mod:`repro.core.logk`) — so the recency/eviction logic exists once.  The
class is deliberately tiny: no statistics, no locking; callers layer their own
counting and thread-safety on top where they need it.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["BoundedLRU"]


class BoundedLRU:
    """An insertion-bounded key→value map; reads refresh recency."""

    __slots__ = ("max_entries", "_entries")

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()

    def get(self, key):
        """Return the stored value (refreshing its recency), or ``None``."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key, value) -> int:
        """Insert or overwrite, evicting the least-recently-used overflow.

        Returns the number of evicted entries (the engine's result cache
        counts them in its statistics).
        """
        entries = self._entries
        entries[key] = value
        entries.move_to_end(key)
        evicted = 0
        while len(entries) > self.max_entries:
            entries.popitem(last=False)
            evicted += 1
        return evicted

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries
