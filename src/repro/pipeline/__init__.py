"""Staged decomposition pipeline: simplification, algorithm registry, engine.

This package is the single route from "a hypergraph and a width ``k``" to "a
validated hypertree decomposition":

* :mod:`repro.pipeline.simplify` — width-preserving reductions with a
  reversible trace (lifting a reduced-instance HD back to the original),
* :mod:`repro.pipeline.registry` — the declarative algorithm catalogue every
  entry point builds decomposers from,
* :mod:`repro.pipeline.engine` — the :class:`DecompositionEngine` running
  simplify → cache → per-component decompose → lift → validate.

``Decomposer.decompose`` delegates here by default; construct algorithms
with ``use_engine=False`` for the raw-search escape hatch.
"""

from .engine import (
    CacheStatistics,
    DecompositionEngine,
    ResultCache,
    default_engine,
    set_default_engine,
)
from .registry import DecomposerRegistry, available, build, describe, register, registry
from .simplify import (
    CollapsedVertices,
    RemovedEdge,
    SimplificationTrace,
    lift_decomposition,
    simplify,
)

__all__ = [
    "CacheStatistics",
    "DecompositionEngine",
    "ResultCache",
    "default_engine",
    "set_default_engine",
    "DecomposerRegistry",
    "registry",
    "register",
    "build",
    "available",
    "describe",
    "CollapsedVertices",
    "RemovedEdge",
    "SimplificationTrace",
    "simplify",
    "lift_decomposition",
]
