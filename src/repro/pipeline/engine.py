"""The staged decomposition engine: simplify → cache → decompose → lift.

Every :meth:`repro.core.base.Decomposer.decompose` call routes through a
:class:`DecompositionEngine` (unless the decomposer was built with
``use_engine=False``).  A run proceeds in stages, each timed into
``SearchStatistics.stage_seconds``:

1. **simplify** — apply the width-preserving reductions of
   :mod:`repro.pipeline.simplify` (subsumed edges, interchangeable
   degree-one vertices) and keep the reversible trace;
2. **cache** — look the reduced instance up in an LRU result cache keyed by
   ``(canonical hypergraph hash, k, algorithm cache key)``.  Only *decided*
   outcomes are stored — timeouts are never cached — and positive entries
   keep the decomposition tree of the reduced instance so a hit can be
   lifted for the new caller.  When the engine was built with a ``catalog``
   (a durable :class:`~repro.catalog.DecompositionCatalog`), an L1 miss
   falls through to the catalog (L2): loaded certificates are re-validated
   before use, hits are promoted into L1, and decided outcomes are written
   behind to the catalog after the L1 store, so the durable tier can never
   be *ahead* of the in-memory one within a process;
3. **decompose** — split the reduced instance into vertex-connected
   components and run the underlying algorithm
   (:meth:`~repro.core.base.Decomposer.decompose_raw`) on each.  HDs of
   disjoint components are grafted under the first component's root: no node
   of one component shares vertices with another, so connectedness and the
   special condition hold trivially for the combined tree and its width is
   the maximum of the component widths — exactly ``hw`` of a disconnected
   hypergraph;
4. **lift** — replay the simplification trace backwards
   (:func:`~repro.pipeline.simplify.lift_decomposition`) so the returned
   decomposition is hosted on the *original* hypergraph;
5. **validate** (optional) — run the independent
   :func:`~repro.decomp.validation.validate_hd` oracle on the lifted result.

The engine is what makes preprocessing wins apply uniformly: the CLI, the
benchmark harness, the query layer and user code all construct algorithms
through the registry and call ``decompose``, so they all inherit the same
pipeline, including the parallel backend (whose worker partitioning then
operates on the already-reduced instance).

Example (doctest-verified):

    >>> from repro import DecompositionEngine, LogKDecomposer
    >>> from repro.hypergraph import generators
    >>> engine = DecompositionEngine()
    >>> decomposer = LogKDecomposer(engine=engine)
    >>> decomposer.decompose(generators.cycle(8), 2).success
    True
    >>> repeat = decomposer.decompose(generators.cycle(8), 2)  # cache hit
    >>> engine.cache.statistics.hits
    1
    >>> "decompose" in repeat.statistics.stage_seconds  # no search ran
    False
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass, replace

from .. import faults
from ..catalog import DecompositionCatalog
from ..core.base import Decomposer, DecompositionResult, SearchStatistics
from ..decomp.decomposition import (
    Decomposition,
    DecompositionNode,
    HypertreeDecomposition,
)
from ..decomp.validation import validate_ghd, validate_hd
from ..hypergraph import Hypergraph
from ..hypergraph.properties import connected_components
from ..lru import ShardedLRU, ShardStats
from .simplify import SimplificationTrace, lift_decomposition, simplify

__all__ = [
    "CacheStatistics",
    "ResultCache",
    "DecompositionEngine",
    "default_engine",
    "set_default_engine",
]


#: Per-class memo of the decompose_raw signature probe: whether the override
#: accepts the cancel_event keyword is a static property of the class, and
#: inspect.signature is too slow for the serving hot path.
_accepts_cancel_event_memo: dict[type, bool] = {}


def _accepts_cancel_event(decomposer_type: type) -> bool:
    accepted = _accepts_cancel_event_memo.get(decomposer_type)
    if accepted is None:
        parameters = inspect.signature(decomposer_type.decompose_raw).parameters
        accepted = "cancel_event" in parameters or any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )
        _accepts_cancel_event_memo[decomposer_type] = accepted
    return accepted


def _copy_node(node: DecompositionNode) -> DecompositionNode:
    return DecompositionNode(
        bag=node.bag,
        cover=node.cover,
        children=[_copy_node(child) for child in node.children],
    )


#: Hit/miss/store/eviction counters of a :class:`ResultCache`.  Kept as an
#: alias of :class:`repro.lru.ShardStats` (same four counters, plus
#: ``hit_rate``) so adding a counter to the sharded LRU shows up here too.
CacheStatistics = ShardStats


@dataclass(frozen=True)
class _CacheEntry:
    """A decided (never timed-out) outcome for a reduced instance.

    ``stats`` are the producing run's search counters (stage timings
    stripped); they are replayed into hit results so statistics-based
    analyses (recursion depth, label counts) stay meaningful and
    deterministic whether or not the cache intervened.  The instance itself
    is identified solely by the SHA-256 canonical hash inside the key.
    """

    success: bool
    root: DecompositionNode | None
    kind: type  # Decomposition subclass produced by the algorithm
    stats: SearchStatistics


class ResultCache:
    """Thread-safe, lock-striped LRU cache of decided decomposition outcomes.

    The entries live in a :class:`~repro.lru.ShardedLRU`: the key space is
    partitioned over ``num_shards`` independently locked shards, so
    concurrent callers (the :class:`~repro.service.DecompositionService`
    worker pool in particular) probing different instances never serialise
    on a global cache lock.  :attr:`statistics` aggregates the per-shard
    counters; :meth:`shard_statistics` exposes them individually for the
    service stats snapshot.
    """

    def __init__(self, max_entries: int = 1024, num_shards: int = 8) -> None:
        self._entries = ShardedLRU(max_entries, num_shards=num_shards)
        self.max_entries = self._entries.max_entries

    @property
    def statistics(self) -> CacheStatistics:
        """Aggregate hit/miss/store/eviction counters over all shards."""
        return self._entries.stats()

    def shard_statistics(self) -> list[ShardStats]:
        """Per-shard traffic counters (hit rates feed the service snapshot)."""
        return self._entries.shard_stats()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def get(self, key: tuple) -> _CacheEntry | None:
        return self._entries.get(key)

    def put(
        self,
        key: tuple,
        success: bool,
        root: DecompositionNode | None,
        kind: type = HypertreeDecomposition,
        stats: SearchStatistics | None = None,
    ) -> None:
        entry = _CacheEntry(
            success=success,
            root=_copy_node(root) if root is not None else None,
            kind=kind,
            stats=replace(stats, stage_seconds={}) if stats is not None else SearchStatistics(),
        )
        self._entries.put(key, entry)


class DecompositionEngine:
    """Runs decomposers through the staged pipeline described in the module docs.

    Parameters
    ----------
    simplify:
        Apply the width-preserving reductions (default on).
    split_components:
        Decompose vertex-connected components independently (default on).
    cache:
        A :class:`ResultCache`, ``True`` for a private default-sized cache,
        or ``False``/``None`` to disable caching.
    catalog:
        A durable L2 tier behind the result cache: a
        :class:`~repro.catalog.DecompositionCatalog`, or a path (``str`` /
        :class:`~pathlib.Path`) to open one on.  ``None`` (the default)
        keeps the engine memory-only.  Misses in L1 fall through to the
        catalog; every certificate loaded from it is re-validated against
        the independent oracle before being trusted, and decided outcomes
        are written behind to the catalog after the L1 store.
    validate:
        Run ``validate_hd`` on every successful lifted decomposition.
        Off by default (the test-suite exercises the oracle instead).
    """

    def __init__(
        self,
        *,
        simplify: bool = True,
        split_components: bool = True,
        cache: ResultCache | bool | None = True,
        catalog: "DecompositionCatalog | str | None" = None,
        validate: bool = False,
    ) -> None:
        self.simplify_enabled = simplify
        self.split_components = split_components
        if cache is True:
            cache = ResultCache()
        elif cache is False:
            cache = None
        self.cache = cache
        if catalog is not None and not isinstance(catalog, DecompositionCatalog):
            catalog = DecompositionCatalog(catalog)
        self.catalog = catalog
        self.validate = validate
        self._auxiliary: dict[str, ShardedLRU] = {}
        self._auxiliary_lock = threading.Lock()

    def auxiliary_cache(self, name: str, max_entries: int = 256) -> ShardedLRU:
        """A named side-cache sharing this engine's lifecycle.

        Downstream layers that key derived artefacts off decomposition work —
        the query planner caches compiled :class:`~repro.query.plan.QueryPlan`
        programs here — get an LRU that lives and dies with the engine, so
        :func:`set_default_engine` (used by tests to isolate cache state)
        resets them together with the result cache.  The first caller fixes
        ``max_entries``; later callers receive the same instance.  The cache
        is a lock-striped :class:`~repro.lru.ShardedLRU`, safe to hit from
        the concurrent serving layer without further locking.
        """
        with self._auxiliary_lock:
            cache = self._auxiliary.get(name)
            if cache is None:
                cache = ShardedLRU(max_entries)
                self._auxiliary[name] = cache
            return cache

    # ------------------------------------------------------------------ #
    # pipeline
    # ------------------------------------------------------------------ #
    def decompose(
        self,
        decomposer: Decomposer,
        hypergraph: Hypergraph,
        k: int,
        cancel_event: threading.Event | None = None,
    ) -> DecompositionResult:
        """Run the full pipeline; the result is hosted on ``hypergraph``.

        ``cancel_event`` (a :class:`threading.Event`) is threaded into the
        per-component searches: setting it makes the run abort at the next
        periodic deadline check and report ``timed_out`` — the same
        machinery the parallel backend uses to stop superfluous workers.
        Cancelled runs are never cached.
        """
        # An error injected here propagates like any engine bug would:
        # through the decomposer into the caller (or the service worker's
        # task-failure path) — the chaos suite uses it to assert failure
        # propagation stays debuggable end to end.
        faults.fire("engine.decompose", algorithm=decomposer.name, k=k)
        start = time.monotonic()
        stats = SearchStatistics()

        # Stage 1: simplification.
        t0 = time.monotonic()
        if self.simplify_enabled:
            trace = simplify(hypergraph)
        else:
            trace = SimplificationTrace(original=hypergraph, reduced=hypergraph)
        reduced = trace.reduced
        stats.record_stage("simplify", time.monotonic() - t0)

        # Stage 2: cache lookup on the reduced instance (L1, then the
        # durable catalog as L2).
        key = None
        success: bool | None = None
        timed_out = False
        combined_root: DecompositionNode | None = None
        kind: type = HypertreeDecomposition
        if self.cache is not None or self.catalog is not None:
            t0 = time.monotonic()
            key = (reduced.canonical_hash(), k, decomposer.cache_key())
            entry = self.cache.get(key) if self.cache is not None else None
            if entry is None and self.catalog is not None:
                record = self.catalog.get(reduced, k, key[2])
                if record is not None:
                    # The catalog re-validated the certificate against
                    # ``reduced`` before returning it, so it can be promoted
                    # into L1 and used exactly like an L1 hit.
                    entry = _CacheEntry(
                        success=record.success,
                        root=record.root,
                        kind=record.kind,
                        stats=record.stats,
                    )
                    if self.cache is not None:
                        self.cache.put(
                            key, record.success, record.root, record.kind, record.stats
                        )
            stats.record_stage("cache", time.monotonic() - t0)
            if entry is not None:
                # Replay the producing run's counters; engine-level hit/miss
                # totals live in ``self.cache.statistics``, not here, because
                # SearchStatistics.cache_* belong to the algorithms' own
                # subproblem caches.
                stats.merge(entry.stats)
                success = entry.success
                combined_root = _copy_node(entry.root) if entry.root else None
                kind = entry.kind

        # Stage 3: per-component decomposition.
        if success is None:
            t0 = time.monotonic()
            success, timed_out, combined_root, kind = self._decompose_components(
                decomposer, reduced, k, stats, cancel_event
            )
            stats.record_stage("decompose", time.monotonic() - t0)
            if key is not None and not timed_out:
                # L1 first, then the durable write-behind: within a process
                # the catalog never gets ahead of the in-memory tier.
                if self.cache is not None:
                    self.cache.put(key, success, combined_root, kind, stats)
                if self.catalog is not None:
                    certificate = (
                        kind(reduced, _copy_node(combined_root))
                        if success and combined_root is not None
                        else None
                    )
                    self.catalog.put(
                        reduced,
                        k,
                        key[2],
                        algorithm=decomposer.name,
                        success=bool(success),
                        decomposition=certificate,
                        stats=stats,
                        wall_seconds=stats.stage_seconds.get("decompose", 0.0),
                    )

        # Stage 4: lift back to the original hypergraph.
        decomposition: Decomposition | None = None
        if success and combined_root is not None:
            t0 = time.monotonic()
            on_reduced = kind(reduced, combined_root)
            if trace.reduced_anything:
                decomposition = lift_decomposition(trace, on_reduced)
            elif hypergraph is reduced:
                decomposition = on_reduced
            else:
                decomposition = kind(hypergraph, combined_root)
            stats.record_stage("lift", time.monotonic() - t0)

        # Stage 5: optional validation against the independent oracle.
        if self.validate and decomposition is not None:
            t0 = time.monotonic()
            if isinstance(decomposition, HypertreeDecomposition):
                validate_hd(decomposition)
            else:
                validate_ghd(decomposition)
            stats.record_stage("validate", time.monotonic() - t0)

        return DecompositionResult(
            algorithm=decomposer.name,
            hypergraph=hypergraph,
            width_parameter=k,
            success=bool(success),
            decomposition=decomposition,
            elapsed=time.monotonic() - start,
            timed_out=timed_out,
            statistics=stats,
        )

    def _decompose_components(
        self,
        decomposer: Decomposer,
        reduced: Hypergraph,
        k: int,
        stats: SearchStatistics,
        cancel_event: threading.Event | None = None,
    ) -> tuple[bool, bool, DecompositionNode | None, type]:
        """Decompose each connected component and graft the HDs together."""
        if self.split_components:
            groups = connected_components(reduced)
        else:
            groups = [list(range(reduced.num_edges))]
        if len(groups) <= 1:
            hosts = [reduced]
        else:
            hosts = [reduced.subhypergraph(group, name=reduced.name) for group in groups]

        # One deadline for the whole call: each component gets the budget that
        # remains, not a full timeout of its own.
        deadline = (
            time.monotonic() + decomposer.timeout
            if decomposer.timeout is not None
            else None
        )
        # decompose_raw is an established override point that predates the
        # cancel_event parameter; only pass the keyword to overrides that
        # accept it.  Legacy subclasses still get coarse cancellation from
        # the per-component check above.
        pass_cancel = cancel_event is not None and _accepts_cancel_event(
            type(decomposer)
        )
        roots: list[DecompositionNode] = []
        kind: type = HypertreeDecomposition
        for host in hosts:
            if cancel_event is not None and cancel_event.is_set():
                return False, True, None, kind
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False, True, None, kind
            if pass_cancel:
                result = decomposer.decompose_raw(
                    host, k, timeout=remaining, cancel_event=cancel_event
                )
            else:
                result = decomposer.decompose_raw(host, k, timeout=remaining)
            stats.merge(result.statistics)
            if result.timed_out:
                return False, True, None, kind
            if not result.success or result.decomposition is None:
                return False, False, None, kind
            kind = type(result.decomposition)
            roots.append(result.decomposition.root)

        combined = roots[0]
        for other in roots[1:]:
            combined.children.append(other)
        return True, False, combined, kind


_default_engine: DecompositionEngine | None = None
_default_engine_lock = threading.Lock()


def default_engine() -> DecompositionEngine:
    """The process-wide engine used when a decomposer has no explicit one."""
    global _default_engine
    if _default_engine is None:
        with _default_engine_lock:
            if _default_engine is None:
                _default_engine = DecompositionEngine()
    return _default_engine


def set_default_engine(engine: DecompositionEngine | None) -> None:
    """Replace the process-wide default engine (``None`` resets to a fresh one)."""
    global _default_engine
    with _default_engine_lock:
        _default_engine = engine
