"""Width-preserving hypergraph simplification with a reversible trace.

The practical solvers the paper benchmarks against (BalancedGo,
det-k-decomp, HtdSMT) never search on the raw input: they first shrink the
hypergraph with cheap reductions that provably do not change the hypertree
width, and only then run the expensive search.  This module implements the
two reductions that are safe for *hypertree* decompositions (where the
special condition constrains how a solution of the reduced instance may be
transformed) together with the bookkeeping needed to turn an HD of the
reduced instance back into an HD of the original one.

Reduction 1 — subsumed-edge removal
    An edge ``e`` with ``e ⊆ f`` for some other edge ``f`` is dropped
    (duplicate edges are the special case ``e = f`` as vertex sets; the
    lexicographically smaller name survives).

    *Why width-preserving.*  Any HD of the reduced hypergraph is literally an
    HD of the original: the bag that covers ``f`` also covers ``e``
    (condition 1); the vertex set is unchanged because every vertex of ``e``
    also occurs in ``f``, so connectedness (condition 2), bag coverage
    (condition 3) and the special condition (condition 4) are untouched, and
    no λ-label referenced ``e``.  Conversely any HD of the original is an HD
    of the reduced instance (fewer edges to cover).  Hence
    ``hw(H') = hw(H)`` and lifting is the identity on the tree — only the
    host hypergraph is swapped back.

Reduction 2 — vertex collapse (degree-one / interchangeable vertices)
    Vertices with *identical edge membership* (they occur in exactly the same
    set of edges) are interchangeable for the decomposition search: one
    representative is kept, the others are removed from every edge.  The most
    common case is an edge with several private (degree-one) vertices — they
    all occur only in that edge, so they collapse onto a single private
    representative.  This is the HD-safe form of the degree-one-vertex
    elimination rule: removing the *last* private vertex of an edge would
    change the edge itself and is **not** in general liftable through the
    special condition, so one representative always stays behind.

    *Why width-preserving.*  λ-labels are sets of edges and no edge is
    removed, so widths are unaffected.  Given an HD of the reduced instance,
    the lift adds every removed vertex ``v`` to exactly the bags that contain
    its representative ``r``.  All four HD conditions survive:

    1. *Edge coverage* — the bag covering reduced ``E`` contains ``r`` for
       every collapsed class meeting ``E``, so it gains the partners and
       covers the original ``E``.
    2. *Connectedness* — the nodes containing ``v`` are exactly the nodes
       containing ``r``, a subtree by induction.
    3. *Bag coverage* (χ(u) ⊆ ∪λ(u)) — if ``r ∈ χ(u)`` then some edge of
       λ(u) contains ``r``; that edge's original form contains ``v`` as well
       (identical membership), and ∪λ(u) is evaluated on the original edges
       after the lift.
    4. *Special condition* (χ(T_u) ∩ ∪λ(u) ⊆ χ(u)) — ``v`` appears in
       χ(T_u) iff ``r`` does, and ``v ∈ ∪λ(u)`` iff ``r ∈ ∪λ(u)`` (again
       identical membership), so a violation involving ``v`` would already be
       a violation involving ``r``.

    Conversely, restricting the bags of an HD of the original to the reduced
    vertex set yields an HD of the reduced instance, so the width is
    preserved in both directions and a ``k``-refutation on the reduced
    instance is a valid refutation for the original.

The reductions cascade — collapsing vertices can make edges equal, removing
edges can make memberships equal — so :func:`simplify` iterates both to a
fixpoint and records each step in a :class:`SimplificationTrace`.
:func:`lift_decomposition` replays the trace in reverse to re-host a
decomposition of the reduced instance on the original hypergraph.

Splitting into connected components (the third preprocessing step the
engine performs) lives in :mod:`repro.pipeline.engine`, since it needs no
trace: HDs of disjoint components are simply grafted under one root, which
is width-preserving because ∪λ(u) of a node never meets another component's
vertices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..decomp.decomposition import Decomposition, DecompositionNode
from ..hypergraph import Hypergraph

__all__ = [
    "RemovedEdge",
    "CollapsedVertices",
    "SimplificationTrace",
    "simplify",
    "lift_decomposition",
]


@dataclass(frozen=True)
class RemovedEdge:
    """A subsumed (or duplicate) edge that was dropped, with its witness."""

    name: str
    witness: str  # surviving edge with ``edge ⊆ witness``


@dataclass(frozen=True)
class CollapsedVertices:
    """A class of identical-membership vertices collapsed onto a representative."""

    representative: str
    removed: tuple[str, ...]


@dataclass
class SimplificationTrace:
    """The outcome of :func:`simplify`: the reduced instance plus a replayable log.

    ``steps`` holds :class:`RemovedEdge` and :class:`CollapsedVertices`
    entries in the order they were applied; :func:`lift_decomposition`
    processes them in reverse.
    """

    original: Hypergraph
    reduced: Hypergraph
    steps: list[RemovedEdge | CollapsedVertices] = field(default_factory=list)
    rounds: int = 0

    @property
    def reduced_anything(self) -> bool:
        """True iff at least one reduction step applied."""
        return bool(self.steps)

    @property
    def removed_edges(self) -> list[RemovedEdge]:
        return [s for s in self.steps if isinstance(s, RemovedEdge)]

    @property
    def collapsed_vertices(self) -> list[CollapsedVertices]:
        return [s for s in self.steps if isinstance(s, CollapsedVertices)]

    def summary(self) -> str:
        """One-line human-readable account of what the simplifier did."""
        return (
            f"{self.original.num_edges}->{self.reduced.num_edges} edges, "
            f"{self.original.num_vertices}->{self.reduced.num_vertices} vertices "
            f"in {self.rounds} round(s)"
        )


def _remove_subsumed(
    edges: dict[str, frozenset[str]], steps: list
) -> tuple[dict[str, frozenset[str]], bool]:
    """Drop every edge contained in another surviving edge."""
    # Deterministic scan order: smaller edges first (they can only be the
    # subsumed side); ties broken by name so duplicates keep the smaller name.
    order = sorted(edges, key=lambda n: (len(edges[n]), n))
    surviving = dict(edges)
    changed = False
    for name in order:
        vertices = surviving.get(name)
        if vertices is None:
            continue
        for other, other_vertices in surviving.items():
            if other == name:
                continue
            # Proper subsets always go; exact duplicates keep the smaller name.
            if vertices < other_vertices or (
                vertices == other_vertices and name > other
            ):
                del surviving[name]
                steps.append(RemovedEdge(name=name, witness=other))
                changed = True
                break
    return surviving, changed


def _collapse_vertices(
    edges: dict[str, frozenset[str]], steps: list
) -> tuple[dict[str, frozenset[str]], bool]:
    """Collapse every class of identical-membership vertices onto one vertex."""
    membership: dict[str, frozenset[str]] = {}
    for name, vertices in edges.items():
        for vertex in vertices:
            membership[vertex] = membership.get(vertex, frozenset()) | {name}
    classes: dict[frozenset[str], list[str]] = {}
    for vertex, edge_set in membership.items():
        classes.setdefault(edge_set, []).append(vertex)

    to_remove: set[str] = set()
    for group in classes.values():
        if len(group) < 2:
            continue
        group.sort()
        representative, partners = group[0], tuple(group[1:])
        steps.append(CollapsedVertices(representative=representative, removed=partners))
        to_remove.update(partners)
    if not to_remove:
        return edges, False
    reduced = {
        name: frozenset(v for v in vertices if v not in to_remove)
        for name, vertices in edges.items()
    }
    return reduced, True


def simplify(hypergraph: Hypergraph, max_rounds: int | None = None) -> SimplificationTrace:
    """Apply the width-preserving reductions to a fixpoint.

    Returns a :class:`SimplificationTrace` whose ``reduced`` hypergraph has
    the same hypertree width as ``hypergraph`` and whose ``steps`` allow
    :func:`lift_decomposition` to re-host any HD of the reduced instance on
    the original.  When nothing reduces, ``reduced`` *is* the input object
    (no copy is made).
    """
    edges = {
        name: vertices for name, vertices in hypergraph.edges_as_dict().items()
    }
    steps: list[RemovedEdge | CollapsedVertices] = []
    rounds = 0
    while max_rounds is None or rounds < max_rounds:
        edges, removed = _remove_subsumed(edges, steps)
        edges, collapsed = _collapse_vertices(edges, steps)
        if not (removed or collapsed):
            break
        rounds += 1
    if not steps:
        return SimplificationTrace(original=hypergraph, reduced=hypergraph, rounds=0)
    # Preserve the original edge order for the survivors (stable, and keeps
    # canonical hashes of equal reductions identical regardless of history).
    ordered = {
        name: edges[name] for name in hypergraph.edge_names if name in edges
    }
    reduced = Hypergraph(ordered, name=hypergraph.name)
    return SimplificationTrace(
        original=hypergraph, reduced=reduced, steps=steps, rounds=rounds
    )


def _rebuild(node: DecompositionNode, expand) -> DecompositionNode:
    return DecompositionNode(
        bag=frozenset(expand(node.bag)),
        cover=node.cover,
        children=[_rebuild(child, expand) for child in node.children],
    )


def lift_decomposition(
    trace: SimplificationTrace, decomposition: Decomposition
) -> Decomposition:
    """Re-host a decomposition of ``trace.reduced`` on ``trace.original``.

    The returned object has the same class as ``decomposition`` (plain
    :class:`HypertreeDecomposition`, generalized, ...), so GHD results keep
    their weaker promise.

    Collapse steps are replayed in reverse: wherever a bag contains a class
    representative, the collapsed partners are re-inserted (transitively, so
    representatives that were themselves collapsed in a later round are
    restored first).  Edge-removal steps need no bag surgery — the λ-labels
    of the reduced instance are a subset of the original edges, and the
    removed edges are covered by their witnesses' bags (see the module
    docstring for the full argument).  The width of the returned
    decomposition equals the width of ``decomposition``.
    """
    expansions: list[CollapsedVertices] = [
        step for step in trace.steps if isinstance(step, CollapsedVertices)
    ]

    def expand(bag: frozenset[str]) -> set[str]:
        result = set(bag)
        # Reverse order restores transitively-collapsed classes correctly:
        # if round 2 collapsed r into s and round 1 collapsed a into r, then
        # restoring s -> r first makes the r -> a restoration applicable.
        for step in reversed(expansions):
            if step.representative in result:
                result.update(step.removed)
        return result

    root = _rebuild(decomposition.root, expand)
    return type(decomposition)(trace.original, root)
