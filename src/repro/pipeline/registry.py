"""Declarative registry of decomposition algorithms.

Every entry point of the library (the :func:`repro.decompose` facade, the
benchmark harness, the CLI, the query layer) used to build algorithms from
hard-coded class tables; this registry replaces those with a single
declarative catalogue:

    from repro.pipeline import registry

    registry.register("my-algo", factory=MyDecomposer, description="...")
    decomposer = registry.build("my-algo", timeout=2.0)
    registry.available()          # canonical names
    registry.describe()           # (name, aliases, description) rows

Built-in algorithms are registered *lazily* — the entry stores the module
path and class name, and the class is imported on first :func:`build` — so
this module has no import-time dependency on :mod:`repro.core` (which itself
imports the registry; eager imports would cycle).

Names are case-sensitive.  Each entry may carry aliases; the algorithm's
public :attr:`~repro.core.base.Decomposer.name` (e.g. ``"log-k-decomp"``)
is an alias of its short registry name (e.g. ``"logk"``).

Beyond building algorithms, the registry is the library's notion of
*configuration identity*: :meth:`DecomposerRegistry.configuration_key`
resolves aliases and merges registered defaults into a stable tuple, which
keys the query layer's compiled-plan cache and the serving layer's
in-flight deduplication table (:mod:`repro.service`) — two callers asking
for the same algorithm under different spellings coalesce onto one
computation.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable

from ..exceptions import SolverError

__all__ = [
    "PRIMITIVE_OPTION_TYPES",
    "AlgorithmEntry",
    "DecomposerRegistry",
    "registry",
    "register",
    "build",
    "available",
    "describe",
    "resolve",
    "configuration_key",
]


#: Option-value types whose equality is a safe configuration identity.
#: :meth:`DecomposerRegistry.configuration_key` collapses anything else to
#: its type name, and the serving layer (:mod:`repro.service`) refuses to
#: dedup/memoize requests carrying such values — both decisions must use
#: the same list, so it lives here.
PRIMITIVE_OPTION_TYPES = (str, int, float, bool, tuple, frozenset, type(None))


@dataclass
class AlgorithmEntry:
    """One registered algorithm: a factory (possibly lazy) plus metadata."""

    name: str
    description: str = ""
    aliases: tuple[str, ...] = ()
    factory: Callable | None = None
    module: str | None = None
    class_name: str | None = None
    defaults: dict = field(default_factory=dict)

    def load(self) -> Callable:
        """Return the factory, importing the implementing class if lazy."""
        if self.factory is None:
            assert self.module is not None and self.class_name is not None
            self.factory = getattr(
                importlib.import_module(self.module), self.class_name
            )
        return self.factory


class DecomposerRegistry:
    """Name → factory catalogue with aliases and metadata."""

    def __init__(self) -> None:
        self._entries: dict[str, AlgorithmEntry] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Callable | None = None,
        *,
        module: str | None = None,
        class_name: str | None = None,
        description: str = "",
        aliases: Iterable[str] = (),
        defaults: dict | None = None,
        overwrite: bool = False,
    ) -> AlgorithmEntry:
        """Register an algorithm under ``name``.

        Either ``factory`` (any callable returning a decomposer) or the pair
        ``module``/``class_name`` (imported lazily on first build) must be
        given.  ``defaults`` are keyword arguments merged under explicit
        build options.  Re-registering an existing name raises unless
        ``overwrite=True``.
        """
        if factory is None and (module is None or class_name is None):
            raise SolverError(
                f"registering {name!r} requires a factory or module/class_name"
            )
        aliases = tuple(aliases)
        for candidate in (name, *aliases):
            taken = self._resolve(candidate)
            if taken is not None and taken != name and not overwrite:
                raise SolverError(
                    f"algorithm name {candidate!r} is already registered (for {taken!r})"
                )
        if name in self._entries:
            if not overwrite:
                raise SolverError(f"algorithm {name!r} is already registered")
            # Drop the replaced entry's aliases so none dangle.
            for alias in self._entries[name].aliases:
                self._aliases.pop(alias, None)
        entry = AlgorithmEntry(
            name=name,
            factory=factory,
            module=module,
            class_name=class_name,
            description=description,
            aliases=aliases,
            defaults=dict(defaults or {}),
        )
        self._entries[name] = entry
        for alias in aliases:
            self._aliases[alias] = name
        return entry

    def unregister(self, name: str) -> None:
        """Remove an algorithm and its aliases (mostly for tests)."""
        canonical = self.resolve(name)
        entry = self._entries.pop(canonical)
        for alias in entry.aliases:
            self._aliases.pop(alias, None)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def _resolve(self, name: str) -> str | None:
        if name in self._entries:
            return name
        return self._aliases.get(name)

    def resolve(self, name: str) -> str:
        """Canonical name for ``name`` (which may be an alias)."""
        canonical = self._resolve(name)
        if canonical is None:
            known = ", ".join(sorted(self._entries))
            raise SolverError(f"unknown algorithm {name!r}; known: {known}")
        return canonical

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._resolve(name) is not None

    def entry(self, name: str) -> AlgorithmEntry:
        """The :class:`AlgorithmEntry` registered under ``name`` or an alias."""
        return self._entries[self.resolve(name)]

    def build(self, name: str, **options):
        """Instantiate the algorithm registered under ``name``.

        Explicit ``options`` override the entry's registered defaults.
        """
        entry = self.entry(name)
        merged = {**entry.defaults, **options}
        return entry.load()(**merged)

    def configuration_key(self, name: str, **options) -> tuple:
        """Stable identity of an algorithm configuration.

        Resolves aliases to the canonical name and merges the entry's
        registered defaults under the explicit ``options`` — i.e. exactly
        what :meth:`build` would construct — so downstream caches keyed by
        algorithm configuration (the query layer's compiled-plan cache) treat
        ``"hybrid"`` and its ``"log-k-decomp-hybrid"`` alias, or an explicit
        option equal to the registered default, as the same configuration.
        Non-primitive option values contribute their type name.
        """
        canonical = self.resolve(name)
        merged = {**self._entries[canonical].defaults, **options}
        items = tuple(
            sorted(
                (
                    key,
                    value
                    if isinstance(value, PRIMITIVE_OPTION_TYPES)
                    else type(value).__name__,
                )
                for key, value in merged.items()
            )
        )
        return (canonical, items)

    def available(self) -> list[str]:
        """Canonical algorithm names in registration order."""
        return list(self._entries)

    def describe(self) -> list[tuple[str, tuple[str, ...], str]]:
        """``(name, aliases, description)`` rows for listings and the CLI."""
        return [
            (entry.name, entry.aliases, entry.description)
            for entry in self._entries.values()
        ]


#: The process-wide registry instance used by the facade, CLI and harness.
registry = DecomposerRegistry()

# Module-level conveniences bound to the shared instance.
register = registry.register
build = registry.build
available = registry.available
describe = registry.describe
resolve = registry.resolve
configuration_key = registry.configuration_key


def _register_builtins() -> None:
    registry.register(
        "logk",
        module="repro.core.logk",
        class_name="LogKDecomposer",
        aliases=("log-k-decomp",),
        description="Optimised log-k-decomp (Algorithm 2): balanced separators, "
        "logarithmic recursion depth.",
    )
    registry.register(
        "logk-basic",
        module="repro.core.logk_basic",
        class_name="LogKBasicDecomposer",
        aliases=("log-k-decomp-basic",),
        description="Unoptimised log-k-decomp (Algorithm 1), kept for the "
        "ablation studies.",
    )
    registry.register(
        "detk",
        module="repro.core.detk",
        class_name="DetKDecomposer",
        aliases=("det-k-decomp",),
        description="det-k-decomp baseline: strict top-down search with "
        "subproblem caching.",
    )
    registry.register(
        "hybrid",
        module="repro.core.hybrid",
        class_name="HybridDecomposer",
        aliases=("log-k-decomp-hybrid",),
        description="log-k-decomp that delegates small subproblems to "
        "det-k-decomp (the paper's best configuration).",
    )
    registry.register(
        "parallel",
        module="repro.core.parallel",
        class_name="ParallelLogKDecomposer",
        aliases=("log-k-decomp-parallel",),
        description="log-k-decomp with the top-level separator search "
        "partitioned across worker processes or threads.",
    )
    registry.register(
        "ghd",
        module="repro.core.ghd",
        class_name="BalancedGHDDecomposer",
        aliases=("balanced-ghd",),
        description="Generalized HD solver using balanced separators "
        "(no special condition).",
    )


_register_builtins()
