"""Generalized hypertree decompositions via balanced separators (BalancedGo-style).

The paper contrasts log-k-decomp with *BalancedGo*, a parallel algorithm for
the more general GHD problem.  GHDs drop the special condition, which makes
the decomposition tree effectively unrooted and allows simple reassembly of
sub-decompositions — but deciding ``ghw ≤ k`` is NP-hard already for k = 2,
so GHD search pays an extra exponential factor in practice.

This module provides a faithful-in-spirit substitute for BalancedGo (see
DESIGN.md): a recursive search that

* picks a ≤ k-edge separator whose components are all *balanced* (at most
  half the size of the current subproblem),
* recurses on each component independently (no rooted interface constraints
  beyond connectedness bookkeeping), and
* reassembles the sub-decompositions around the separator node.

Bags are of the form ∪λ restricted to the current subproblem plus the
connecting vertices, which is sound (the produced decomposition always
satisfies the GHD conditions and is checked by the validators) and matches
the bag-shape BalancedGo explores before its subedge refinement.  Exact
``ghw`` optimality is therefore not guaranteed in general — the returned
width is an upper bound on ``ghw`` that in all benchmark families used here
coincides with ``hw``, mirroring the paper's observation that GHDs do not
achieve lower width than HDs on HyperBench.
"""

from __future__ import annotations

from ..decomp.components import ComponentSplitter
from ..decomp.covers import label_union
from ..decomp.decomposition import (
    DecompositionNode,
    GeneralizedHypertreeDecomposition,
)
from ..decomp.extended import Comp, full_comp
from ..exceptions import SolverError, TimeoutExceeded
from ..hypergraph import Hypergraph
from .base import Decomposer, DecompositionResult, SearchContext
import time

__all__ = ["BalancedGHDDecomposer"]


class BalancedGHDDecomposer(Decomposer):
    """Balanced-separator GHD search (substitute for BalancedGo)."""

    name = "balanced-ghd"

    def __init__(
        self,
        timeout: float | None = None,
        require_balanced: bool = True,
        **engine_options,
    ) -> None:
        super().__init__(timeout=timeout, **engine_options)
        self.require_balanced = require_balanced

    # The GHD solver produces GeneralizedHypertreeDecomposition objects, so it
    # overrides decompose_raw() rather than _run() (which is typed for HDs).
    def decompose_raw(
        self,
        hypergraph: Hypergraph,
        k: int,
        timeout: float | None = None,
        cancel_event=None,
    ) -> DecompositionResult:
        if hypergraph.num_edges == 0:
            raise SolverError("cannot decompose a hypergraph without edges")
        context = SearchContext(
            hypergraph,
            k,
            timeout=self.timeout if timeout is None else timeout,
            cancel_event=cancel_event,
        )
        start = time.monotonic()
        timed_out = False
        decomposition = None
        try:
            node = self._decomp(context, full_comp(hypergraph), conn=0, depth=1)
            if node is not None:
                decomposition = GeneralizedHypertreeDecomposition(hypergraph, node)
        except TimeoutExceeded:
            timed_out = True
        elapsed = time.monotonic() - start
        return DecompositionResult(
            algorithm=self.name,
            hypergraph=hypergraph,
            width_parameter=k,
            success=decomposition is not None,
            decomposition=decomposition,  # type: ignore[arg-type]
            elapsed=elapsed,
            timed_out=timed_out,
            statistics=context.stats,
        )

    def _run(self, context: SearchContext):  # pragma: no cover - not used
        raise NotImplementedError("BalancedGHDDecomposer overrides decompose_raw()")

    # ------------------------------------------------------------------ #
    # recursive search
    # ------------------------------------------------------------------ #
    def _decomp(
        self, context: SearchContext, comp: Comp, conn: int, depth: int
    ) -> DecompositionNode | None:
        context.stats.record_call(depth)
        context.check_timeout()
        host, k = context.host, context.k

        if len(comp.edges) <= k:
            lam = tuple(sorted(comp.edges))
            bag = host.edges_to_mask(lam) | conn
            cover = self._cover_for(context, bag, lam)
            if cover is None:
                # conn cannot be covered together with the remaining edges
                # within width k; fall through to the separator search.
                pass
            else:
                return DecompositionNode(
                    bag=host.mask_to_vertices(bag),
                    cover=frozenset(host.edge_name(i) for i in cover),
                )

        comp_vertices = comp.vertices(host)
        half = comp.size / 2
        # Balancedness is enforced where BalancedGo enforces it: when splitting
        # a subproblem that has no outside interface yet (conn == 0).  Once an
        # interface exists, the separator must cover it, which is generally
        # incompatible with balancedness without special edges; those
        # subproblems are solved top-down instead (still producing valid GHDs).
        balanced_here = self.require_balanced and conn == 0
        splitter = ComponentSplitter(host, comp)
        for lam in context.enumerator.labels(cover=conn):
            context.stats.labels_tried += 1
            context.check_timeout()
            lam_union = label_union(host, lam)
            if not lam_union & comp_vertices:
                continue
            parts = splitter.split(lam_union)
            if balanced_here and any(part.size > half for part in parts):
                continue
            if not balanced_here and any(part.size >= comp.size for part in parts):
                continue  # no progress; avoid infinite recursion
            bag = (lam_union & (comp_vertices | conn)) | conn
            if bag & ~lam_union:
                continue  # conn must be covered by the separator edges
            children = []
            failed = False
            for part in parts:
                part_conn = part.vertices(host) & lam_union
                child = self._decomp(context, part, part_conn, depth + 1)
                if child is None:
                    failed = True
                    break
                children.append(child)
            if failed:
                continue
            return DecompositionNode(
                bag=host.mask_to_vertices(bag),
                cover=frozenset(host.edge_name(i) for i in lam),
                children=children,
            )
        return None

    def _cover_for(
        self, context: SearchContext, bag: int, preferred: tuple[int, ...]
    ) -> tuple[int, ...] | None:
        """Find ≤ k edges covering ``bag``, preferring the component's own edges."""
        host, k = context.host, context.k
        preferred_union = host.edges_to_mask(preferred)
        if bag & ~preferred_union == 0 and len(preferred) <= k:
            return preferred if preferred else None
        remaining = bag & ~preferred_union
        cover = list(preferred)
        while remaining and len(cover) < k:
            best, best_gain = None, 0
            for index in range(host.num_edges):
                gain = (host.edge_bits(index) & remaining).bit_count()
                if gain > best_gain:
                    best, best_gain = index, gain
            if best is None:
                return None
            cover.append(best)
            remaining &= ~host.edge_bits(best)
        if remaining or not cover or len(cover) > k:
            return None
        return tuple(cover)
