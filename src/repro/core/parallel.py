"""Parallel execution of the separator search (Appendix D.1).

The paper parallelises log-k-decomp by partitioning the search space of
balanced separators uniformly over the available cores; because subproblems
are independent, no communication between workers is needed.  This module
reproduces that strategy:

* The candidate pool of the *top-level* child-separator loop is partitioned
  round-robin into ``num_workers`` groups; worker ``i`` only explores labels
  whose smallest edge index falls in group ``i``.  The union of the groups
  covers the full label space, so "all workers fail" is a sound "no" answer
  and "any worker succeeds" is a sound "yes".
* Two backends are provided.  The ``process`` backend uses
  :mod:`multiprocessing` and delivers real speedups (each worker is a
  separate interpreter); the ``thread`` backend exists for API parity and to
  measure — as documented in DESIGN.md — that CPython's GIL prevents
  thread-level scaling for this CPU-bound search.

The Go implementation evaluated in the paper parallelises every recursion
level; partitioning only the top level is a simplification that preserves the
strategy's character (independent partitions, no shared state) while keeping
the Python implementation portable.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import queue as pyqueue
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

from .. import faults
from ..decomp.covers import CoverEnumerator
from ..decomp.extended import FragmentNode, full_bitcomp
from ..exceptions import SolverError
from ..hypergraph import Hypergraph
from .base import Decomposer, DecompositionResult, SearchContext, SearchStatistics
from .detk import DetKSearch
from .fragments import fragment_to_decomposition
from .hybrid import HybridDecomposer, make_metric
from .logk import LogKSearch

__all__ = ["EitherEvent", "ParallelLogKDecomposer"]

logger = logging.getLogger("repro.parallel")


class _EitherEvent:
    """Read-only OR view over two events (only ``is_set`` is consulted)."""

    __slots__ = ("first", "second")

    def __init__(self, first, second) -> None:
        self.first = first
        self.second = second

    def is_set(self) -> bool:
        return self.first.is_set() or self.second.is_set()


#: Public alias: the serving layer's process backend composes its worker-side
#: cancel signals (pool stop | shutdown abort | per-request cancel ring) out
#: of the same OR view the thread backend uses here.
EitherEvent = _EitherEvent


def _worker_search_to_queue(result_queue, slot, attempt, fault_spec, args: tuple) -> None:
    """Process-backend entry point: run the search, ship the outcome back.

    Every worker puts exactly one slot-tagged result (``_worker_search``
    converts any internal failure into a ``timed_out`` outcome), so the
    coordinator tracks completion per partition instead of trusting pool
    machinery.  ``fault_spec`` re-creates the parent's fault injector in the
    child (injection must behave identically under fork and spawn); the
    ``parallel.worker`` point fired here carries ``slot``/``attempt``
    context, so a chaos schedule can kill attempt 0 of a slot and let its
    respawned replacement live.
    """
    faults.install_spec(fault_spec)
    try:
        faults.fire("parallel.worker", slot=slot, attempt=attempt)
        outcome = _worker_search(*args)
    except Exception:
        # An injected (or otherwise escaped) error: report the partition as
        # undecided rather than dying without a word.
        outcome = (True, False, None, SearchStatistics())
    result_queue.put((slot, outcome))


def _worker_search(
    edges: dict[str, frozenset[str]],
    hypergraph_name: str,
    k: int,
    partition: list[int],
    timeout: float | None,
    hybrid: bool,
    metric_name: str,
    threshold: float,
    label_pruning: bool = True,
    subedge_domination: bool = True,
    cancel_event: threading.Event | None = None,
) -> tuple[bool, bool, FragmentNode | None, SearchStatistics]:
    """Worker entry point (module level so it can be pickled).

    ``cancel_event`` is only used by the thread backend: once some worker has
    succeeded, the coordinator sets the event and the remaining workers abort
    at their next periodic deadline check instead of burning CPU to the end
    of their partitions (``Future.cancel`` cannot stop an already-running
    worker).  Process workers are terminated through the pool instead.

    Returns ``(timed_out, success, fragment, statistics)``.
    """
    host = Hypergraph(edges, name=hypergraph_name)
    context = SearchContext(host, k, timeout=timeout, cancel_event=cancel_event)
    leaf_delegate = None
    delegate_predicate = None
    if hybrid:
        detk = DetKSearch(
            context,
            label_pruning=label_pruning,
            subedge_domination=subedge_domination,
        )
        metric = make_metric(metric_name)

        def leaf_delegate(comp, conn, depth, allowed, _detk=detk):  # type: ignore[misc]
            return _detk.search(comp, conn, depth, allowed=allowed)

        def delegate_predicate(comp, _metric=metric, _host=host, _k=k):  # type: ignore[misc]
            return _metric.value(_host, comp, _k) < threshold

    search = LogKSearch(
        context,
        label_pruning=label_pruning,
        subedge_domination=subedge_domination,
        leaf_delegate=leaf_delegate,
        delegate_predicate=delegate_predicate,
        root_partition=partition,
    )
    try:
        fragment = search.search(
            full_bitcomp(host), conn=0, allowed=host.all_edges_mask
        )
    except Exception:  # TimeoutExceeded or unexpected failure in the worker
        return True, False, None, context.stats
    return False, fragment is not None, fragment, context.stats


class ParallelLogKDecomposer(Decomposer):
    """log-k-decomp (optionally hybrid) with a parallel top-level separator search."""

    name = "log-k-decomp-parallel"

    def __init__(
        self,
        timeout: float | None = None,
        num_workers: int = 1,
        backend: str = "process",
        hybrid: bool = True,
        metric: str = "WeightedCount",
        threshold: float = 400.0,
        label_pruning: bool = True,
        subedge_domination: bool = True,
        **engine_options,
    ) -> None:
        super().__init__(timeout=timeout, **engine_options)
        if num_workers < 1:
            raise SolverError("num_workers must be >= 1")
        if backend not in {"process", "thread"}:
            raise SolverError(f"unknown parallel backend {backend!r}")
        self.num_workers = num_workers
        self.backend = backend
        self.hybrid = hybrid
        self.metric = metric
        self.threshold = threshold
        self.label_pruning = label_pruning
        self.subedge_domination = subedge_domination

    # ------------------------------------------------------------------ #
    # Decomposer interface
    # ------------------------------------------------------------------ #
    def decompose_raw(
        self,
        hypergraph: Hypergraph,
        k: int,
        timeout: float | None = None,
        cancel_event=None,
    ) -> DecompositionResult:
        if self.num_workers <= 1:
            return self._sequential().decompose_raw(
                hypergraph, k, timeout=timeout, cancel_event=cancel_event
            )
        start = time.monotonic()
        partitions = CoverEnumerator(hypergraph, k).partition_first_edges(
            None, self.num_workers
        )
        partitions = [p for p in partitions if p]
        runner = self._run_processes if self.backend == "process" else self._run_threads
        effective_timeout = self.timeout if timeout is None else timeout
        timed_out, success, fragment, stats = runner(
            hypergraph, k, partitions, effective_timeout, cancel_event
        )
        elapsed = time.monotonic() - start
        decomposition = None
        if success and fragment is not None:
            decomposition = fragment_to_decomposition(hypergraph, fragment)
        return DecompositionResult(
            algorithm=self.name,
            hypergraph=hypergraph,
            width_parameter=k,
            success=success,
            decomposition=decomposition,
            elapsed=elapsed,
            timed_out=timed_out and not success,
            statistics=stats,
        )

    def _run(self, context: SearchContext):  # pragma: no cover - not used
        raise NotImplementedError("ParallelLogKDecomposer overrides decompose_raw()")

    # ------------------------------------------------------------------ #
    # backends
    # ------------------------------------------------------------------ #
    def _sequential(self) -> Decomposer:
        # use_engine=False: when the engine is on, it already ran the
        # preprocessing before calling decompose_raw; running it again in the
        # fallback would double the simplification work.
        if self.hybrid:
            return HybridDecomposer(
                timeout=self.timeout,
                metric=self.metric,
                threshold=self.threshold,
                label_pruning=self.label_pruning,
                subedge_domination=self.subedge_domination,
                use_engine=False,
            )
        from .logk import LogKDecomposer

        return LogKDecomposer(
            timeout=self.timeout,
            label_pruning=self.label_pruning,
            subedge_domination=self.subedge_domination,
            use_engine=False,
        )

    def _worker_args(
        self,
        hypergraph: Hypergraph,
        k: int,
        partition: list[int],
        timeout: float | None,
    ) -> tuple:
        return (
            hypergraph.edges_as_dict(),
            hypergraph.name,
            k,
            partition,
            timeout,
            self.hybrid,
            self.metric,
            self.threshold,
            self.label_pruning,
            self.subedge_domination,
        )

    #: A dead worker's result may still be in flight through the queue's
    #: feeder thread when ``is_alive`` first reports False; only after this
    #: many consecutive empty sweeps is the slot treated as crashed.
    _DEAD_STRIKES = 2
    #: Respawn budget per partition slot; beyond it the slot is abandoned
    #: (the run degrades to undecided instead of looping on a doomed
    #: partition).
    _MAX_RESPAWNS_PER_SLOT = 2

    def _run_processes(
        self,
        hypergraph: Hypergraph,
        k: int,
        partitions: list[list[int]],
        timeout: float | None,
        cancel_event: threading.Event | None = None,
    ) -> tuple[bool, bool, FragmentNode | None, SearchStatistics]:
        # Plain Process workers + one result queue instead of a Pool:
        # ``Pool.terminate`` can deadlock when its task-handler thread is
        # still blocked writing while terminate joins it (observed under
        # CPython 3.11), and this backend's only need is "first success
        # kills the rest", which Process.terminate does reliably.
        #
        # The coordinator supervises the pool: a worker that dies without
        # reporting (OOM-killed, injected ``kill``) is respawned on the same
        # partition — the search is pure, so recomputing a partition is
        # sound — up to ``_MAX_RESPAWNS_PER_SLOT`` attempts, after which the
        # slot is abandoned and the run degrades to undecided.
        context = mp.get_context()
        stats = SearchStatistics()
        timed_out = False
        result_queue = context.Queue()
        fault_spec = faults.current_spec()

        def spawn(slot: int, attempt: int):
            worker = context.Process(
                target=_worker_search_to_queue,
                args=(
                    result_queue,
                    slot,
                    attempt,
                    fault_spec,
                    self._worker_args(hypergraph, k, partitions[slot], timeout),
                ),
                daemon=True,
            )
            worker.start()
            return worker

        workers = {slot: spawn(slot, 0) for slot in range(len(partitions))}
        attempts = dict.fromkeys(workers, 0)
        strikes = dict.fromkeys(workers, 0)
        pending = set(workers)
        try:
            while pending:
                # External cancellation (a threading.Event cannot cross the
                # process boundary): terminate the workers in the finally
                # block and report the run as undecided.
                if cancel_event is not None and cancel_event.is_set():
                    return True, False, None, stats
                try:
                    slot, outcome = result_queue.get(timeout=0.1)
                except pyqueue.Empty:
                    for dead in sorted(pending):
                        if workers[dead].is_alive():
                            strikes[dead] = 0
                            continue
                        strikes[dead] += 1
                        if strikes[dead] < self._DEAD_STRIKES:
                            continue
                        if attempts[dead] >= self._MAX_RESPAWNS_PER_SLOT:
                            logger.warning(
                                "parallel worker slot %d died %d times "
                                "(last exit code %s); abandoning its "
                                "partition — the run degrades to undecided",
                                dead,
                                attempts[dead] + 1,
                                workers[dead].exitcode,
                            )
                            pending.discard(dead)
                            timed_out = True
                            continue
                        attempts[dead] += 1
                        strikes[dead] = 0
                        stats.worker_respawns += 1
                        logger.warning(
                            "parallel worker slot %d died (exit code %s); "
                            "respawning attempt %d on the same partition",
                            dead,
                            workers[dead].exitcode,
                            attempts[dead],
                        )
                        workers[dead] = spawn(dead, attempts[dead])
                    continue
                if slot not in pending:
                    continue  # stale twin from a slot already resolved
                pending.discard(slot)
                worker_timeout, success, fragment, worker_stats = outcome
                stats.merge(worker_stats)
                timed_out = timed_out or worker_timeout
                if success:
                    return False, True, fragment, stats
        finally:
            for worker in workers.values():
                if worker.is_alive():
                    worker.terminate()
            for worker in workers.values():
                worker.join()
            result_queue.close()
            result_queue.cancel_join_thread()
        return timed_out, False, None, stats

    def _run_threads(
        self,
        hypergraph: Hypergraph,
        k: int,
        partitions: list[list[int]],
        timeout: float | None,
        cancel_event: threading.Event | None = None,
    ) -> tuple[bool, bool, FragmentNode | None, SearchStatistics]:
        stats = SearchStatistics()
        timed_out = False
        cancel = threading.Event()
        # Workers poll one object; _EitherEvent folds the caller's external
        # cancellation into the coordinator's own first-success signal
        # without aliasing the two (setting the internal event on success
        # must not look like a caller cancel to anyone else).
        worker_cancel = (
            cancel if cancel_event is None else _EitherEvent(cancel, cancel_event)
        )
        with ThreadPoolExecutor(max_workers=len(partitions)) as executor:
            futures = {
                executor.submit(
                    _worker_search,
                    *self._worker_args(hypergraph, k, part, timeout),
                    cancel_event=worker_cancel,
                )
                for part in partitions
            }
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                if cancel_event is not None and cancel_event.is_set():
                    for other in futures:
                        other.cancel()
                    return True, False, None, stats
                for future in done:
                    worker_timeout, success, fragment, worker_stats = future.result()
                    stats.merge(worker_stats)
                    timed_out = timed_out or worker_timeout
                    if success:
                        # Future.cancel only helps workers still queued; the
                        # shared event makes already-running workers abort at
                        # their next deadline check, so the executor shutdown
                        # below does not wait for them to finish their
                        # partitions.
                        cancel.set()
                        for other in futures:
                            other.cancel()
                        return False, True, fragment, stats
        return timed_out, False, None, stats
