"""Parallel execution of the separator search (Appendix D.1).

The paper parallelises log-k-decomp by partitioning the search space of
balanced separators uniformly over the available cores; because subproblems
are independent, no communication between workers is needed.  This module
reproduces that strategy:

* The candidate pool of the *top-level* child-separator loop is partitioned
  round-robin into ``num_workers`` groups; worker ``i`` only explores labels
  whose smallest edge index falls in group ``i``.  The union of the groups
  covers the full label space, so "all workers fail" is a sound "no" answer
  and "any worker succeeds" is a sound "yes".
* Two backends are provided.  The ``process`` backend uses
  :mod:`multiprocessing` and delivers real speedups (each worker is a
  separate interpreter); the ``thread`` backend exists for API parity and to
  measure — as documented in DESIGN.md — that CPython's GIL prevents
  thread-level scaling for this CPU-bound search.

The Go implementation evaluated in the paper parallelises every recursion
level; partitioning only the top level is a simplification that preserves the
strategy's character (independent partitions, no shared state) while keeping
the Python implementation portable.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

from ..decomp.covers import CoverEnumerator
from ..decomp.decomposition import HypertreeDecomposition
from ..decomp.extended import FragmentNode, full_comp
from ..exceptions import SolverError
from ..hypergraph import Hypergraph
from .base import Decomposer, DecompositionResult, SearchContext, SearchStatistics
from .detk import DetKSearch
from .fragments import fragment_to_decomposition
from .hybrid import HybridDecomposer, make_metric
from .logk import LogKSearch

__all__ = ["ParallelLogKDecomposer"]


def _worker_search_star(
    args: tuple,
) -> tuple[bool, bool, FragmentNode | None, SearchStatistics]:
    """Argument-unpacking wrapper for :func:`_worker_search` (for imap_unordered)."""
    return _worker_search(*args)


def _worker_search(
    edges: dict[str, frozenset[str]],
    hypergraph_name: str,
    k: int,
    partition: list[int],
    timeout: float | None,
    hybrid: bool,
    metric_name: str,
    threshold: float,
) -> tuple[bool, bool, FragmentNode | None, SearchStatistics]:
    """Worker entry point (module level so it can be pickled).

    Returns ``(timed_out, success, fragment, statistics)``.
    """
    host = Hypergraph(edges, name=hypergraph_name)
    context = SearchContext(host, k, timeout=timeout)
    leaf_delegate = None
    delegate_predicate = None
    if hybrid:
        detk = DetKSearch(context)
        metric = make_metric(metric_name)

        def leaf_delegate(comp, conn, depth, _detk=detk):  # type: ignore[misc]
            return _detk.search(comp, conn, depth)

        def delegate_predicate(comp, _metric=metric, _host=host, _k=k):  # type: ignore[misc]
            return _metric.value(_host, comp, _k) < threshold

    search = LogKSearch(
        context,
        leaf_delegate=leaf_delegate,
        delegate_predicate=delegate_predicate,
        root_partition=partition,
    )
    try:
        fragment = search.search(
            full_comp(host), conn=0, allowed=frozenset(range(host.num_edges))
        )
    except Exception:  # TimeoutExceeded or unexpected failure in the worker
        return True, False, None, context.stats
    return False, fragment is not None, fragment, context.stats


class ParallelLogKDecomposer(Decomposer):
    """log-k-decomp (optionally hybrid) with a parallel top-level separator search."""

    name = "log-k-decomp-parallel"

    def __init__(
        self,
        timeout: float | None = None,
        num_workers: int = 1,
        backend: str = "process",
        hybrid: bool = True,
        metric: str = "WeightedCount",
        threshold: float = 400.0,
    ) -> None:
        super().__init__(timeout=timeout)
        if num_workers < 1:
            raise SolverError("num_workers must be >= 1")
        if backend not in {"process", "thread"}:
            raise SolverError(f"unknown parallel backend {backend!r}")
        self.num_workers = num_workers
        self.backend = backend
        self.hybrid = hybrid
        self.metric = metric
        self.threshold = threshold

    # ------------------------------------------------------------------ #
    # Decomposer interface
    # ------------------------------------------------------------------ #
    def decompose(self, hypergraph: Hypergraph, k: int) -> DecompositionResult:
        if self.num_workers <= 1:
            return self._sequential().decompose(hypergraph, k)
        start = time.monotonic()
        partitions = CoverEnumerator(hypergraph, k).partition_first_edges(
            None, self.num_workers
        )
        partitions = [p for p in partitions if p]
        runner = self._run_processes if self.backend == "process" else self._run_threads
        timed_out, success, fragment, stats = runner(hypergraph, k, partitions)
        elapsed = time.monotonic() - start
        decomposition = None
        if success and fragment is not None:
            decomposition = fragment_to_decomposition(hypergraph, fragment)
        return DecompositionResult(
            algorithm=self.name,
            hypergraph=hypergraph,
            width_parameter=k,
            success=success,
            decomposition=decomposition,
            elapsed=elapsed,
            timed_out=timed_out and not success,
            statistics=stats,
        )

    def _run(self, context: SearchContext):  # pragma: no cover - not used
        raise NotImplementedError("ParallelLogKDecomposer overrides decompose()")

    # ------------------------------------------------------------------ #
    # backends
    # ------------------------------------------------------------------ #
    def _sequential(self) -> Decomposer:
        if self.hybrid:
            return HybridDecomposer(
                timeout=self.timeout, metric=self.metric, threshold=self.threshold
            )
        from .logk import LogKDecomposer

        return LogKDecomposer(timeout=self.timeout)

    def _worker_args(self, hypergraph: Hypergraph, k: int, partition: list[int]) -> tuple:
        return (
            hypergraph.edges_as_dict(),
            hypergraph.name,
            k,
            partition,
            self.timeout,
            self.hybrid,
            self.metric,
            self.threshold,
        )

    def _run_processes(
        self, hypergraph: Hypergraph, k: int, partitions: list[list[int]]
    ) -> tuple[bool, bool, FragmentNode | None, SearchStatistics]:
        context = mp.get_context()
        stats = SearchStatistics()
        timed_out = False
        args_list = [self._worker_args(hypergraph, k, part) for part in partitions]
        with context.Pool(processes=len(partitions)) as pool:
            for outcome in pool.imap_unordered(_worker_search_star, args_list):
                worker_timeout, success, fragment, worker_stats = outcome
                stats.merge(worker_stats)
                timed_out = timed_out or worker_timeout
                if success:
                    pool.terminate()
                    return False, True, fragment, stats
        return timed_out, False, None, stats

    def _run_threads(
        self, hypergraph: Hypergraph, k: int, partitions: list[list[int]]
    ) -> tuple[bool, bool, FragmentNode | None, SearchStatistics]:
        stats = SearchStatistics()
        timed_out = False
        with ThreadPoolExecutor(max_workers=len(partitions)) as executor:
            futures = {
                executor.submit(_worker_search, *self._worker_args(hypergraph, k, part))
                for part in partitions
            }
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    worker_timeout, success, fragment, worker_stats = future.result()
                    stats.merge(worker_stats)
                    timed_out = timed_out or worker_timeout
                    if success:
                        for other in futures:
                            other.cancel()
                        return False, True, fragment, stats
        return timed_out, False, None, stats
