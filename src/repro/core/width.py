"""High-level width API: the functions most users call first.

* :func:`decompose` — find an HD of width at most ``k`` with a chosen algorithm,
* :func:`hypertree_width` — compute the exact hypertree width by iterative
  deepening over ``k`` (with a fast acyclicity shortcut for width 1),
* :func:`is_width_at_most` — the decision problem for a single ``k``,
* :func:`make_decomposer` — thin wrapper over the declarative
  :mod:`repro.pipeline.registry` used by the benchmark harness and the CLI.
"""

from __future__ import annotations

from ..decomp.decomposition import HypertreeDecomposition
from ..exceptions import SolverError
from ..hypergraph import Hypergraph
from ..hypergraph.properties import is_alpha_acyclic
from ..pipeline.registry import registry as _registry
from .base import Decomposer, DecompositionResult
from .detk import DetKDecomposer
from .ghd import BalancedGHDDecomposer
from .hybrid import HybridDecomposer
from .logk import LogKDecomposer
from .logk_basic import LogKBasicDecomposer
from .parallel import ParallelLogKDecomposer

__all__ = [
    "ALGORITHMS",
    "make_decomposer",
    "decompose",
    "is_width_at_most",
    "hypertree_width",
]

#: Backwards-compatible class table; :mod:`repro.pipeline.registry` is the
#: authoritative catalogue and accepts these names (plus aliases).
ALGORITHMS = {
    "logk": LogKDecomposer,
    "logk-basic": LogKBasicDecomposer,
    "detk": DetKDecomposer,
    "hybrid": HybridDecomposer,
    "parallel": ParallelLogKDecomposer,
    "ghd": BalancedGHDDecomposer,
}


def make_decomposer(algorithm: str = "hybrid", **options) -> Decomposer:
    """Instantiate a decomposer by registry name; extra options go to its constructor."""
    return _registry.build(algorithm, **options)


def decompose(
    hypergraph: Hypergraph, k: int, algorithm: str = "hybrid", **options
) -> DecompositionResult:
    """Search for an HD of ``hypergraph`` of width at most ``k``."""
    return make_decomposer(algorithm, **options).decompose(hypergraph, k)


def is_width_at_most(
    hypergraph: Hypergraph, k: int, algorithm: str = "hybrid", **options
) -> bool | None:
    """Decide ``hw(H) <= k``; returns ``None`` if the time budget ran out."""
    result = decompose(hypergraph, k, algorithm=algorithm, **options)
    if result.timed_out:
        return None
    return result.success


def hypertree_width(
    hypergraph: Hypergraph,
    algorithm: str = "hybrid",
    max_width: int = 10,
    timeout: float | None = None,
    **options,
) -> tuple[int, HypertreeDecomposition] | tuple[None, None]:
    """Exact hypertree width by iterative deepening.

    Returns ``(width, decomposition)`` for the smallest width at which an HD
    exists, or ``(None, None)`` if none is found up to ``max_width`` within
    the time budget.  Acyclic hypergraphs short-circuit to width 1 via the
    GYO reduction, matching how practical tools treat the trivial case.
    """
    if hypergraph.num_edges == 0:
        raise SolverError("cannot decompose a hypergraph without edges")
    start_width = 1
    if is_alpha_acyclic(hypergraph):
        result = decompose(hypergraph, 1, algorithm=algorithm, timeout=timeout, **options)
        if result.success and result.decomposition is not None:
            return 1, result.decomposition
        return None, None
    start_width = 2
    for k in range(start_width, max_width + 1):
        result = decompose(hypergraph, k, algorithm=algorithm, timeout=timeout, **options)
        if result.timed_out:
            return None, None
        if result.success and result.decomposition is not None:
            return k, result.decomposition
    return None, None
