"""Stable JSON serialisation of decompositions and join trees.

The durable catalog (:mod:`repro.catalog`) persists certificates across
processes, so the library needs a serialisation of its tree objects that is

* **stable** — the same decomposition always encodes to the same JSON text
  (collections are emitted in sorted order), so encoded certificates can be
  compared, hashed and deduplicated byte-wise;
* **host-free** — a :class:`~repro.decomp.decomposition.Decomposition` is a
  tree *over* a hypergraph; only the tree (bags, covers, kind) is encoded.
  Decoding takes the host hypergraph explicitly and re-resolves every edge
  and vertex name against it, so a payload can never smuggle in structure
  the host does not have;
* **versioned** — payloads carry a ``format`` tag checked on decode, so a
  future schema change fails loudly instead of mis-decoding old rows.

Decoding is deliberately paranoid: malformed payloads raise
:class:`~repro.exceptions.ParseError`, and loaded certificates are expected
to be re-validated by the caller (the catalog runs ``validate_hd`` on every
loaded decomposition before trusting it — see :mod:`repro.catalog`).

Round-trip example::

    >>> from repro import Hypergraph, hypertree_width
    >>> from repro.core.codec import decomposition_to_json, decomposition_from_json
    >>> h = Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})
    >>> _, hd = hypertree_width(h)
    >>> restored = decomposition_from_json(h, decomposition_to_json(hd))
    >>> type(restored) is type(hd) and restored.width == hd.width
    True
"""

from __future__ import annotations

import json

from ..decomp.decomposition import (
    Decomposition,
    DecompositionNode,
    GeneralizedHypertreeDecomposition,
    HypertreeDecomposition,
)
from ..decomp.jointree import JoinTree, JoinTreeNode
from ..exceptions import ParseError
from ..hypergraph import Hypergraph

__all__ = [
    "DECOMPOSITION_FORMAT",
    "JOIN_TREE_FORMAT",
    "kind_of",
    "class_for_kind",
    "decomposition_to_dict",
    "decomposition_from_dict",
    "decomposition_to_json",
    "decomposition_from_json",
    "join_tree_to_dict",
    "join_tree_from_dict",
    "join_tree_to_json",
    "join_tree_from_json",
]

DECOMPOSITION_FORMAT = "repro-decomposition/1"
JOIN_TREE_FORMAT = "repro-join-tree/1"

#: ``kind`` string (as stored in payloads) → decomposition class.  The plain
#: base class is included so a payload can be explicit about *not* claiming
#: any conditions.
_KIND_CLASSES: dict[str, type[Decomposition]] = {
    HypertreeDecomposition.kind: HypertreeDecomposition,
    GeneralizedHypertreeDecomposition.kind: GeneralizedHypertreeDecomposition,
    Decomposition.kind: Decomposition,
}


def kind_of(decomposition_class: type) -> str:
    """The payload ``kind`` tag of a decomposition class (e.g. ``"hd"``)."""
    kind = getattr(decomposition_class, "kind", None)
    if kind not in _KIND_CLASSES:
        raise ParseError(f"unknown decomposition class {decomposition_class!r}")
    return kind


def class_for_kind(kind: str) -> type[Decomposition]:
    """The decomposition class of a payload ``kind`` tag."""
    try:
        return _KIND_CLASSES[kind]
    except KeyError:
        known = ", ".join(sorted(_KIND_CLASSES))
        raise ParseError(f"unknown decomposition kind {kind!r}; known: {known}") from None


def _require(payload: object, key: str, expected: type):
    if not isinstance(payload, dict):
        raise ParseError(f"expected a JSON object, got {type(payload).__name__}")
    try:
        value = payload[key]
    except KeyError:
        raise ParseError(f"payload is missing the {key!r} field") from None
    if not isinstance(value, expected):
        raise ParseError(
            f"payload field {key!r} must be {expected.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _string_list(payload: dict, key: str) -> list[str]:
    values = _require(payload, key, list)
    if not all(isinstance(value, str) for value in values):
        raise ParseError(f"payload field {key!r} must contain only strings")
    return values


# --------------------------------------------------------------------------- #
# decomposition trees
# --------------------------------------------------------------------------- #
def _node_to_dict(node: DecompositionNode) -> dict:
    return {
        "bag": sorted(node.bag),
        "cover": sorted(node.cover),
        "children": [_node_to_dict(child) for child in node.children],
    }


def _node_from_dict(payload: dict) -> DecompositionNode:
    return DecompositionNode(
        bag=frozenset(_string_list(payload, "bag")),
        cover=frozenset(_string_list(payload, "cover")),
        children=[_node_from_dict(child) for child in _require(payload, "children", list)],
    )


def decomposition_to_dict(decomposition: Decomposition) -> dict:
    """Encode the tree of a decomposition (bags, covers, kind) as plain JSON data.

    The host hypergraph is *not* part of the payload; pass it back to
    :func:`decomposition_from_dict` when decoding.
    """
    return {
        "format": DECOMPOSITION_FORMAT,
        "kind": decomposition.kind,
        "root": _node_to_dict(decomposition.root),
    }


def decomposition_from_dict(hypergraph: Hypergraph, payload: dict) -> Decomposition:
    """Rebuild a decomposition over ``hypergraph`` from an encoded payload.

    Raises :class:`~repro.exceptions.ParseError` for malformed payloads and
    :class:`~repro.exceptions.DecompositionError` when the tree references
    edges or vertices the host does not have (the class constructor checks).
    The semantic HD/GHD conditions are *not* checked here — run the
    :mod:`repro.decomp.validation` oracle on the result before trusting it.
    """
    if _require(payload, "format", str) != DECOMPOSITION_FORMAT:
        raise ParseError(f"unsupported decomposition payload format {payload['format']!r}")
    cls = class_for_kind(_require(payload, "kind", str))
    return cls(hypergraph, _node_from_dict(_require(payload, "root", dict)))


def decomposition_to_json(decomposition: Decomposition) -> str:
    """:func:`decomposition_to_dict` rendered as canonical (sorted-key) JSON."""
    return json.dumps(decomposition_to_dict(decomposition), sort_keys=True)


def decomposition_from_json(hypergraph: Hypergraph, text: str) -> Decomposition:
    """Decode :func:`decomposition_to_json` output over the given host."""
    return decomposition_from_dict(hypergraph, _load_json(text))


# --------------------------------------------------------------------------- #
# join trees
# --------------------------------------------------------------------------- #
def _join_node_to_dict(node: JoinTreeNode) -> dict:
    return {
        "variables": sorted(node.variables),
        "cover_edges": sorted(node.cover_edges),
        "assigned_edges": sorted(node.assigned_edges),
        "children": [_join_node_to_dict(child) for child in node.children],
    }


def _join_node_from_dict(payload: dict) -> JoinTreeNode:
    return JoinTreeNode(
        variables=frozenset(_string_list(payload, "variables")),
        cover_edges=frozenset(_string_list(payload, "cover_edges")),
        assigned_edges=frozenset(_string_list(payload, "assigned_edges")),
        children=[
            _join_node_from_dict(child) for child in _require(payload, "children", list)
        ],
    )


def join_tree_to_dict(join_tree: JoinTree) -> dict:
    """Encode a join tree (variables, cover edges, atom assignment) as JSON data."""
    return {
        "format": JOIN_TREE_FORMAT,
        "root": _join_node_to_dict(join_tree.root),
    }


def join_tree_from_dict(hypergraph: Hypergraph, payload: dict) -> JoinTree:
    """Rebuild a join tree over ``hypergraph``; run ``validate()`` to trust it."""
    if _require(payload, "format", str) != JOIN_TREE_FORMAT:
        raise ParseError(f"unsupported join-tree payload format {payload['format']!r}")
    return JoinTree(hypergraph, _join_node_from_dict(_require(payload, "root", dict)))


def join_tree_to_json(join_tree: JoinTree) -> str:
    """:func:`join_tree_to_dict` rendered as canonical (sorted-key) JSON."""
    return json.dumps(join_tree_to_dict(join_tree), sort_keys=True)


def join_tree_from_json(hypergraph: Hypergraph, text: str) -> JoinTree:
    """Decode :func:`join_tree_to_json` output over the given host."""
    return join_tree_from_dict(hypergraph, _load_json(text))


def _load_json(text: str):
    try:
        return json.loads(text)
    except (TypeError, ValueError) as exc:
        raise ParseError(f"payload is not valid JSON: {exc}") from exc
