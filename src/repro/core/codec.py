"""Stable JSON serialisation of decompositions and join trees.

The durable catalog (:mod:`repro.catalog`) persists certificates across
processes, so the library needs a serialisation of its tree objects that is

* **stable** — the same decomposition always encodes to the same JSON text
  (collections are emitted in sorted order), so encoded certificates can be
  compared, hashed and deduplicated byte-wise;
* **host-free** — a :class:`~repro.decomp.decomposition.Decomposition` is a
  tree *over* a hypergraph; only the tree (bags, covers, kind) is encoded.
  Decoding takes the host hypergraph explicitly and re-resolves every edge
  and vertex name against it, so a payload can never smuggle in structure
  the host does not have;
* **versioned** — payloads carry a ``format`` tag checked on decode, so a
  future schema change fails loudly instead of mis-decoding old rows.

Decoding is deliberately paranoid: malformed payloads raise
:class:`~repro.exceptions.ParseError`, and loaded certificates are expected
to be re-validated by the caller (the catalog runs ``validate_hd`` on every
loaded decomposition before trusting it — see :mod:`repro.catalog`).

Round-trip example::

    >>> from repro import Hypergraph, hypertree_width
    >>> from repro.core.codec import decomposition_to_json, decomposition_from_json
    >>> h = Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})
    >>> _, hd = hypertree_width(h)
    >>> restored = decomposition_from_json(h, decomposition_to_json(hd))
    >>> type(restored) is type(hd) and restored.width == hd.width
    True
"""

from __future__ import annotations

import builtins
import importlib
import json
from dataclasses import fields as dataclass_fields

from ..decomp.decomposition import (
    Decomposition,
    DecompositionNode,
    GeneralizedHypertreeDecomposition,
    HypertreeDecomposition,
)
from ..decomp.jointree import JoinTree, JoinTreeNode
from ..exceptions import ParseError, ServiceError
from ..hypergraph import Hypergraph
from ..hypergraph.cq import Atom, ConjunctiveQuery
from .base import DecompositionResult, SearchStatistics

__all__ = [
    "DECOMPOSITION_FORMAT",
    "JOIN_TREE_FORMAT",
    "HYPERGRAPH_FORMAT",
    "DATABASE_FORMAT",
    "REQUEST_FORMAT",
    "ANSWER_FORMAT",
    "ERROR_FORMAT",
    "kind_of",
    "class_for_kind",
    "decomposition_to_dict",
    "decomposition_from_dict",
    "decomposition_to_json",
    "decomposition_from_json",
    "join_tree_to_dict",
    "join_tree_from_dict",
    "join_tree_to_json",
    "join_tree_from_json",
    "hypergraph_to_dict",
    "hypergraph_from_dict",
    "database_to_dict",
    "database_from_dict",
    "decompose_request_to_dict",
    "query_request_to_dict",
    "service_request_from_dict",
    "decomposition_answer_to_dict",
    "decomposition_answer_from_dict",
    "query_answer_to_dict",
    "query_answer_from_dict",
    "error_to_dict",
    "error_from_dict",
]

DECOMPOSITION_FORMAT = "repro-decomposition/1"
JOIN_TREE_FORMAT = "repro-join-tree/1"
HYPERGRAPH_FORMAT = "repro-hypergraph/1"
DATABASE_FORMAT = "repro-database/1"
REQUEST_FORMAT = "repro-service-request/1"
ANSWER_FORMAT = "repro-service-answer/1"
ERROR_FORMAT = "repro-service-error/1"

#: ``kind`` string (as stored in payloads) → decomposition class.  The plain
#: base class is included so a payload can be explicit about *not* claiming
#: any conditions.
_KIND_CLASSES: dict[str, type[Decomposition]] = {
    HypertreeDecomposition.kind: HypertreeDecomposition,
    GeneralizedHypertreeDecomposition.kind: GeneralizedHypertreeDecomposition,
    Decomposition.kind: Decomposition,
}


def kind_of(decomposition_class: type) -> str:
    """The payload ``kind`` tag of a decomposition class (e.g. ``"hd"``)."""
    kind = getattr(decomposition_class, "kind", None)
    if kind not in _KIND_CLASSES:
        raise ParseError(f"unknown decomposition class {decomposition_class!r}")
    return kind


def class_for_kind(kind: str) -> type[Decomposition]:
    """The decomposition class of a payload ``kind`` tag."""
    try:
        return _KIND_CLASSES[kind]
    except KeyError:
        known = ", ".join(sorted(_KIND_CLASSES))
        raise ParseError(f"unknown decomposition kind {kind!r}; known: {known}") from None


def _require(payload: object, key: str, expected: type):
    if not isinstance(payload, dict):
        raise ParseError(f"expected a JSON object, got {type(payload).__name__}")
    try:
        value = payload[key]
    except KeyError:
        raise ParseError(f"payload is missing the {key!r} field") from None
    if not isinstance(value, expected):
        raise ParseError(
            f"payload field {key!r} must be {expected.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _string_list(payload: dict, key: str) -> list[str]:
    values = _require(payload, key, list)
    if not all(isinstance(value, str) for value in values):
        raise ParseError(f"payload field {key!r} must contain only strings")
    return values


# --------------------------------------------------------------------------- #
# decomposition trees
# --------------------------------------------------------------------------- #
def _node_to_dict(node: DecompositionNode) -> dict:
    return {
        "bag": sorted(node.bag),
        "cover": sorted(node.cover),
        "children": [_node_to_dict(child) for child in node.children],
    }


def _node_from_dict(payload: dict) -> DecompositionNode:
    return DecompositionNode(
        bag=frozenset(_string_list(payload, "bag")),
        cover=frozenset(_string_list(payload, "cover")),
        children=[_node_from_dict(child) for child in _require(payload, "children", list)],
    )


def decomposition_to_dict(decomposition: Decomposition) -> dict:
    """Encode the tree of a decomposition (bags, covers, kind) as plain JSON data.

    The host hypergraph is *not* part of the payload; pass it back to
    :func:`decomposition_from_dict` when decoding.
    """
    return {
        "format": DECOMPOSITION_FORMAT,
        "kind": decomposition.kind,
        "root": _node_to_dict(decomposition.root),
    }


def decomposition_from_dict(hypergraph: Hypergraph, payload: dict) -> Decomposition:
    """Rebuild a decomposition over ``hypergraph`` from an encoded payload.

    Raises :class:`~repro.exceptions.ParseError` for malformed payloads and
    :class:`~repro.exceptions.DecompositionError` when the tree references
    edges or vertices the host does not have (the class constructor checks).
    The semantic HD/GHD conditions are *not* checked here — run the
    :mod:`repro.decomp.validation` oracle on the result before trusting it.
    """
    if _require(payload, "format", str) != DECOMPOSITION_FORMAT:
        raise ParseError(f"unsupported decomposition payload format {payload['format']!r}")
    cls = class_for_kind(_require(payload, "kind", str))
    return cls(hypergraph, _node_from_dict(_require(payload, "root", dict)))


def decomposition_to_json(decomposition: Decomposition) -> str:
    """:func:`decomposition_to_dict` rendered as canonical (sorted-key) JSON."""
    return json.dumps(decomposition_to_dict(decomposition), sort_keys=True)


def decomposition_from_json(hypergraph: Hypergraph, text: str) -> Decomposition:
    """Decode :func:`decomposition_to_json` output over the given host."""
    return decomposition_from_dict(hypergraph, _load_json(text))


# --------------------------------------------------------------------------- #
# join trees
# --------------------------------------------------------------------------- #
def _join_node_to_dict(node: JoinTreeNode) -> dict:
    return {
        "variables": sorted(node.variables),
        "cover_edges": sorted(node.cover_edges),
        "assigned_edges": sorted(node.assigned_edges),
        "children": [_join_node_to_dict(child) for child in node.children],
    }


def _join_node_from_dict(payload: dict) -> JoinTreeNode:
    return JoinTreeNode(
        variables=frozenset(_string_list(payload, "variables")),
        cover_edges=frozenset(_string_list(payload, "cover_edges")),
        assigned_edges=frozenset(_string_list(payload, "assigned_edges")),
        children=[
            _join_node_from_dict(child) for child in _require(payload, "children", list)
        ],
    )


def join_tree_to_dict(join_tree: JoinTree) -> dict:
    """Encode a join tree (variables, cover edges, atom assignment) as JSON data."""
    return {
        "format": JOIN_TREE_FORMAT,
        "root": _join_node_to_dict(join_tree.root),
    }


def join_tree_from_dict(hypergraph: Hypergraph, payload: dict) -> JoinTree:
    """Rebuild a join tree over ``hypergraph``; run ``validate()`` to trust it."""
    if _require(payload, "format", str) != JOIN_TREE_FORMAT:
        raise ParseError(f"unsupported join-tree payload format {payload['format']!r}")
    return JoinTree(hypergraph, _join_node_from_dict(_require(payload, "root", dict)))


def join_tree_to_json(join_tree: JoinTree) -> str:
    """:func:`join_tree_to_dict` rendered as canonical (sorted-key) JSON."""
    return json.dumps(join_tree_to_dict(join_tree), sort_keys=True)


def join_tree_from_json(hypergraph: Hypergraph, text: str) -> JoinTree:
    """Decode :func:`join_tree_to_json` output over the given host."""
    return join_tree_from_dict(hypergraph, _load_json(text))


def _load_json(text: str):
    try:
        return json.loads(text)
    except (TypeError, ValueError) as exc:
        raise ParseError(f"payload is not valid JSON: {exc}") from exc


# --------------------------------------------------------------------------- #
# process-boundary payloads (the serving layer's process backend)
# --------------------------------------------------------------------------- #
# Everything the process-backed DecompositionService ships between the
# parent and its worker processes is encoded here: hypergraphs and
# databases (shipped once per worker slot), requests (per task), answers
# and errors (per result).  The payloads are deliberately QueryPlan-free —
# plans are compiled worker-side from the shipped query, so the wire format
# never depends on executor internals.

#: JSON value types allowed inside shipped databases and answer relations.
#: ``bool`` is a subclass of ``int`` and rides along.
_SCALAR_TYPES = (str, int, float, bool, type(None))


def _require_scalar(value: object, where: str) -> object:
    if not isinstance(value, _SCALAR_TYPES):
        raise ParseError(
            f"{where} holds a non-JSON-scalar value of type "
            f"{type(value).__name__}: only str/int/float/bool/None values "
            "can cross the process boundary"
        )
    return value


def _check_format(payload: dict, expected: str, what: str) -> None:
    if _require(payload, "format", str) != expected:
        raise ParseError(f"unsupported {what} payload format {payload['format']!r}")


def hypergraph_to_dict(hypergraph: Hypergraph) -> dict:
    """Encode a hypergraph (name + ordered edge list) as plain JSON data.

    Edge order is preserved — the search kernels iterate edges by index, so
    a reconstruction that reordered them could walk the search space in a
    different order and break byte-identical replay.  Vertices within an
    edge are sets and are emitted sorted.
    """
    return {
        "format": HYPERGRAPH_FORMAT,
        "name": hypergraph.name,
        "edges": [
            [name, sorted(vertices)]
            for name, vertices in hypergraph.edges_as_dict().items()
        ],
    }


def hypergraph_from_dict(payload: dict) -> Hypergraph:
    """Rebuild a hypergraph from :func:`hypergraph_to_dict` output."""
    _check_format(payload, HYPERGRAPH_FORMAT, "hypergraph")
    edges: dict[str, list[str]] = {}
    for entry in _require(payload, "edges", list):
        if not (isinstance(entry, list) and len(entry) == 2):
            raise ParseError("hypergraph payload edges must be [name, vertices] pairs")
        name, vertices = entry
        if not isinstance(name, str):
            raise ParseError("hypergraph payload edge names must be strings")
        if not (isinstance(vertices, list) and all(isinstance(v, str) for v in vertices)):
            raise ParseError("hypergraph payload vertices must be lists of strings")
        if name in edges:
            raise ParseError(f"hypergraph payload repeats edge {name!r}")
        edges[name] = vertices
    return Hypergraph(edges, name=_require(payload, "name", str))


def database_to_dict(database) -> dict:
    """Encode a :class:`~repro.query.database.Database` as plain JSON data.

    Only JSON-scalar tuple values are supported (:class:`ParseError`
    otherwise) — object-valued tuples have no stable wire identity.  Rows
    are emitted in a deterministic order so equal databases encode to equal
    payloads.

    A path-backed database (one exposing a string ``path`` attribute, i.e.
    :class:`~repro.query.sqlgen.SQLDatabase`) ships as the *path* alone: the
    receiver reopens the file, so arbitrarily large databases never cross
    the wire row by row.
    """
    path = getattr(database, "path", None)
    if isinstance(path, str):
        return {"format": DATABASE_FORMAT, "path": path}
    relations = []
    for name in database.relation_names():
        relation = database.get(name)
        rows = []
        for row in relation.tuples:
            rows.append(
                [_require_scalar(value, f"relation {name!r}") for value in row]
            )
        rows.sort(key=repr)
        relations.append(
            {"name": name, "schema": list(relation.schema), "rows": rows}
        )
    return {"format": DATABASE_FORMAT, "relations": relations}


def database_from_dict(payload: dict):
    """Rebuild a database from :func:`database_to_dict` output."""
    from ..query.database import Database  # deferred: repro.query's package
    from ..query.relation import Relation  # import chain leads back here

    _check_format(payload, DATABASE_FORMAT, "database")
    if "path" in payload:
        from ..query.sqlgen import SQLDatabase  # deferred, same chain

        return SQLDatabase(_require(payload, "path", str))
    database = Database()
    for entry in _require(payload, "relations", list):
        name = _require(entry, "name", str)
        schema = tuple(_string_list(entry, "schema"))
        rows: set[tuple] = set()
        for row in _require(entry, "rows", list):
            if not isinstance(row, list) or len(row) != len(schema):
                raise ParseError(
                    f"relation {name!r}: row does not match the "
                    f"{len(schema)}-attribute schema"
                )
            rows.add(tuple(_require_scalar(value, f"relation {name!r}") for value in row))
        database.add(Relation.from_trusted_rows(name, schema, rows))
    return database


def decompose_request_to_dict(
    *,
    canonical_hash: str,
    k: int,
    algorithm: str,
    timeout: float | None,
    options: dict,
) -> dict:
    """Encode a decomposition request.

    The hypergraph travels by reference (its canonical hash): the parent
    ships the full structure once per worker slot, so a fat instance is not
    re-serialised for every request that hits it.  Options must be
    JSON-scalar — object-valued options never reach the process backend
    (the service rejects them at submit time).
    """
    for option, value in options.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise ParseError(
                f"option {option!r} holds a non-primitive value of type "
                f"{type(value).__name__} and cannot cross the process boundary"
            )
    return {
        "format": REQUEST_FORMAT,
        "kind": "decompose",
        "hypergraph": canonical_hash,
        "k": k,
        "algorithm": algorithm,
        "timeout": timeout,
        "options": dict(options),
    }


def query_request_to_dict(
    *,
    query: ConjunctiveQuery,
    mode: str,
    database: str,
    timeout: float | None,
    executor: str = "columnar",
) -> dict:
    """Encode a query request; ``database`` is the parent's shipping token
    for the (separately shipped) database payload."""
    return {
        "format": REQUEST_FORMAT,
        "kind": "query",
        "atoms": [[atom.relation, list(atom.arguments)] for atom in query.atoms],
        "free_variables": list(query.free_variables),
        "query_name": query.name,
        "mode": mode,
        "database": database,
        "timeout": timeout,
        "executor": executor,
    }


def service_request_from_dict(payload: dict) -> dict:
    """Decode a service request payload into plain fields.

    Returns a dict with ``kind`` either ``"decompose"`` (fields
    ``hypergraph`` — the canonical hash reference —, ``k``, ``algorithm``,
    ``timeout``, ``options``) or ``"query"`` (fields ``query`` — a rebuilt
    :class:`~repro.hypergraph.cq.ConjunctiveQuery` —, ``mode``,
    ``database`` — the shipping token —, ``timeout``, ``executor`` —
    defaulting to ``"columnar"`` for payloads from older senders).
    """
    _check_format(payload, REQUEST_FORMAT, "service request")
    kind = _require(payload, "kind", str)
    timeout = payload.get("timeout")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise ParseError("request timeout must be a number or null")
    if kind == "decompose":
        options = _require(payload, "options", dict)
        for option, value in options.items():
            _require_scalar(value, f"option {option!r}")
        return {
            "kind": kind,
            "hypergraph": _require(payload, "hypergraph", str),
            "k": _require(payload, "k", int),
            "algorithm": _require(payload, "algorithm", str),
            "timeout": timeout,
            "options": options,
        }
    if kind == "query":
        atoms = []
        for entry in _require(payload, "atoms", list):
            if not (isinstance(entry, list) and len(entry) == 2):
                raise ParseError("query payload atoms must be [relation, arguments] pairs")
            relation, arguments = entry
            if not isinstance(relation, str) or not (
                isinstance(arguments, list)
                and all(isinstance(a, str) for a in arguments)
            ):
                raise ParseError("query payload atoms must name string variables")
            atoms.append(Atom(relation, tuple(arguments)))
        query = ConjunctiveQuery(
            atoms=tuple(atoms),
            free_variables=tuple(_string_list(payload, "free_variables")),
            name=_require(payload, "query_name", str),
        )
        executor = payload.get("executor", "columnar")
        if not isinstance(executor, str):
            raise ParseError("query payload executor must be a string")
        return {
            "kind": kind,
            "query": query,
            "mode": _require(payload, "mode", str),
            "database": _require(payload, "database", str),
            "timeout": timeout,
            "executor": executor,
        }
    raise ParseError(f"unknown service request kind {kind!r}")


_STATISTICS_FIELDS = {f.name for f in dataclass_fields(SearchStatistics)}


def _statistics_to_dict(statistics: SearchStatistics) -> dict:
    payload = {
        name: getattr(statistics, name)
        for name in _STATISTICS_FIELDS
        if name != "stage_seconds"
    }
    payload["stage_seconds"] = dict(statistics.stage_seconds)
    return payload


def _statistics_from_dict(payload: dict) -> SearchStatistics:
    known = {k: v for k, v in payload.items() if k in _STATISTICS_FIELDS}
    return SearchStatistics(**known)


def decomposition_answer_to_dict(result: DecompositionResult) -> dict:
    """Encode a decomposition outcome, host-free (tree payload only)."""
    return {
        "format": ANSWER_FORMAT,
        "kind": "decompose",
        "algorithm": result.algorithm,
        "k": result.width_parameter,
        "success": result.success,
        "timed_out": result.timed_out,
        "elapsed": result.elapsed,
        "statistics": _statistics_to_dict(result.statistics),
        "decomposition": (
            decomposition_to_dict(result.decomposition)
            if result.decomposition is not None
            else None
        ),
    }


def decomposition_answer_from_dict(
    hypergraph: Hypergraph, payload: dict
) -> DecompositionResult:
    """Rebuild a :class:`~repro.core.base.DecompositionResult` over the
    request's hypergraph from :func:`decomposition_answer_to_dict` output."""
    _check_format(payload, ANSWER_FORMAT, "service answer")
    if _require(payload, "kind", str) != "decompose":
        raise ParseError("expected a decomposition answer payload")
    tree = payload.get("decomposition")
    return DecompositionResult(
        algorithm=_require(payload, "algorithm", str),
        hypergraph=hypergraph,
        width_parameter=_require(payload, "k", int),
        success=_require(payload, "success", bool),
        decomposition=(
            decomposition_from_dict(hypergraph, tree) if tree is not None else None
        ),
        elapsed=float(_require(payload, "elapsed", (int, float))),
        timed_out=_require(payload, "timed_out", bool),
        statistics=_statistics_from_dict(_require(payload, "statistics", dict)),
    )


def query_answer_to_dict(
    *,
    mode: str,
    answers,
    boolean: bool,
    count: int | None,
    width: int,
    plan_cached: bool,
    plan_seconds: float,
    execution_seconds: float,
    statistics: dict,
) -> dict:
    """Encode a query outcome; ``answers`` is a
    :class:`~repro.query.relation.Relation` or ``None`` (non-enumerate
    modes)."""
    encoded_answers = None
    if answers is not None:
        rows = [
            [_require_scalar(value, "answer relation") for value in row]
            for row in answers.tuples
        ]
        rows.sort(key=repr)
        encoded_answers = {"schema": list(answers.schema), "rows": rows}
    return {
        "format": ANSWER_FORMAT,
        "kind": "query",
        "mode": mode,
        "boolean": bool(boolean),
        "count": count,
        "answers": encoded_answers,
        "width": width,
        "plan_cached": plan_cached,
        "plan_seconds": plan_seconds,
        "execution_seconds": execution_seconds,
        "statistics": dict(statistics),
    }


def query_answer_from_dict(payload: dict) -> dict:
    """Decode :func:`query_answer_to_dict` output into plain fields.

    ``answers`` comes back as a rebuilt
    :class:`~repro.query.relation.Relation` (or ``None``); ``mode`` stays a
    string — the caller coerces it to an
    :class:`~repro.query.plan.AnswerMode`.
    """
    from ..query.relation import Relation  # deferred (import cycle, see above)

    _check_format(payload, ANSWER_FORMAT, "service answer")
    if _require(payload, "kind", str) != "query":
        raise ParseError("expected a query answer payload")
    count = payload.get("count")
    if count is not None and not isinstance(count, int):
        raise ParseError("query answer count must be an integer or null")
    answers = None
    encoded = payload.get("answers")
    if encoded is not None:
        schema = tuple(_string_list(encoded, "schema"))
        rows: set[tuple] = set()
        for row in _require(encoded, "rows", list):
            if not isinstance(row, list) or len(row) != len(schema):
                raise ParseError("query answer rows must match the answer schema")
            rows.add(tuple(row))
        answers = Relation.from_trusted_rows("answer", schema, rows)
    return {
        "mode": _require(payload, "mode", str),
        "boolean": _require(payload, "boolean", bool),
        "count": count,
        "answers": answers,
        "width": _require(payload, "width", int),
        "plan_cached": _require(payload, "plan_cached", bool),
        "plan_seconds": float(_require(payload, "plan_seconds", (int, float))),
        "execution_seconds": float(
            _require(payload, "execution_seconds", (int, float))
        ),
        "statistics": _require(payload, "statistics", dict),
    }


def error_to_dict(error: BaseException, traceback_text: str | None = None) -> dict:
    """Encode a worker-side exception (type, message, formatted traceback)."""
    return {
        "format": ERROR_FORMAT,
        "type": type(error).__name__,
        "module": type(error).__module__,
        "message": str(error),
        "traceback": traceback_text or "",
    }


def error_from_dict(payload: dict) -> BaseException:
    """Rebuild an exception from :func:`error_to_dict` output.

    Only exception classes from this library and the standard ``builtins``
    module are reconstructed (a payload must not be able to instantiate
    arbitrary classes); anything else — including classes that reject a
    single-message constructor — degrades to a
    :class:`~repro.exceptions.ServiceError` carrying the original type
    name.  The worker's formatted traceback is attached as a
    ``remote_traceback`` attribute either way.
    """
    _check_format(payload, ERROR_FORMAT, "service error")
    type_name = _require(payload, "type", str)
    module_name = _require(payload, "module", str)
    message = _require(payload, "message", str)
    error: BaseException | None = None
    if module_name == "builtins":
        candidate = getattr(builtins, type_name, None)
        if isinstance(candidate, type) and issubclass(candidate, BaseException):
            try:
                error = candidate(message)
            except Exception:
                error = None
    elif module_name == "repro.exceptions" or module_name.startswith("repro."):
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            module = None
        candidate = getattr(module, type_name, None) if module else None
        if isinstance(candidate, type) and issubclass(candidate, BaseException):
            try:
                error = candidate(message)
            except Exception:
                error = None
    if error is None:
        error = ServiceError(f"worker failed with {module_name}.{type_name}: {message}")
    error.remote_traceback = _require(payload, "traceback", str)  # type: ignore[attr-defined]
    return error
