"""Assembling HD fragments into decompositions (Appendix A of the paper).

The recursive searches return :class:`~repro.decomp.extended.FragmentNode`
trees in which special edges appear as placeholder leaves.  Two operations are
needed to turn these into full hypertree decompositions:

* :func:`replace_special_leaf` — the stitching step of the soundness proof:
  the fragment for the part "above" a separator node c contains a leaf whose
  λ-label is the special edge χ(c); that leaf is replaced by the actual node
  c, below which the fragments of the components "below" c hang.
* :func:`fragment_to_decomposition` — conversion of a *complete* fragment
  (one without special leaves) into a user-facing
  :class:`~repro.decomp.decomposition.HypertreeDecomposition`.
"""

from __future__ import annotations

from ..decomp.decomposition import DecompositionNode, HypertreeDecomposition
from ..decomp.extended import FragmentNode
from ..exceptions import DecompositionError
from ..hypergraph import Hypergraph

__all__ = [
    "replace_special_leaf",
    "fragment_to_decomposition",
    "special_leaf",
    "regular_node",
]


def special_leaf(special: int) -> FragmentNode:
    """A placeholder leaf for a special edge (λ(u) = {s}, χ(u) = s)."""
    return FragmentNode(chi=special, special=special)


def regular_node(
    host: Hypergraph,
    lam_edges: tuple[int, ...],
    chi: int,
    children: list[FragmentNode] | None = None,
) -> FragmentNode:
    """A regular fragment node; raises if χ is not covered by ∪λ."""
    union = host.edges_to_mask(lam_edges)
    if chi & ~union:
        raise DecompositionError("χ of a regular node must be covered by ∪λ")
    return FragmentNode(chi=chi, lam_edges=lam_edges, children=list(children or []))


def replace_special_leaf(
    fragment: FragmentNode, special: int, replacement: FragmentNode
) -> bool:
    """Replace one special leaf carrying ``special`` by ``replacement`` in place.

    Returns True if a leaf was replaced.  If the root itself is the matching
    leaf the root node is overwritten with the replacement's content (the
    caller keeps its reference to the same object).
    """
    if fragment.is_special_leaf and fragment.special == special:
        fragment.chi = replacement.chi
        fragment.lam_edges = replacement.lam_edges
        fragment.special = replacement.special
        fragment.children = replacement.children
        return True
    stack = [fragment]
    while stack:
        node = stack.pop()
        for index, child in enumerate(node.children):
            if child.is_special_leaf and child.special == special:
                node.children[index] = replacement
                return True
            stack.append(child)
    return False


def fragment_to_decomposition(
    host: Hypergraph, fragment: FragmentNode
) -> HypertreeDecomposition:
    """Convert a complete fragment into a :class:`HypertreeDecomposition`.

    Raises :class:`DecompositionError` if the fragment still contains special
    placeholder leaves (which would mean stitching is incomplete).
    """

    def convert(node: FragmentNode) -> DecompositionNode:
        if node.is_special_leaf:
            raise DecompositionError(
                "fragment still contains a special-edge placeholder leaf; "
                "it does not describe a decomposition of the full hypergraph"
            )
        return DecompositionNode(
            bag=host.mask_to_vertices(node.chi),
            cover=frozenset(host.edge_name(i) for i in node.lam_edges),
            children=[convert(child) for child in node.children],
        )

    return HypertreeDecomposition(host, convert(fragment))
