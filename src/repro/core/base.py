"""Common infrastructure shared by all decomposition algorithms.

Every algorithm in :mod:`repro.core` is exposed as a :class:`Decomposer` whose
:meth:`Decomposer.decompose` method takes a hypergraph and a width parameter
``k`` and returns a :class:`DecompositionResult`.  The result records

* whether an HD of width at most ``k`` was found,
* the concrete decomposition (when successful),
* wall-clock time and whether the time budget was exhausted,
* search statistics (recursive calls, maximum recursion depth, number of
  λ-labels tried, cache hits) used by the recursion-depth experiments.

The :class:`SearchContext` bundles the per-run state (host hypergraph, width,
deadline, statistics, cover enumerator) that the recursive search classes of
the individual algorithms share.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..decomp.covers import CoverEnumerator
from ..decomp.decomposition import HypertreeDecomposition
from ..exceptions import SolverError, TimeoutExceeded
from ..hypergraph import Hypergraph

__all__ = [
    "SearchStatistics",
    "DecompositionResult",
    "SearchContext",
    "Decomposer",
]


@dataclass
class SearchStatistics:
    """Counters collected during a decomposition search.

    ``stage_seconds`` is populated by the staged
    :class:`~repro.pipeline.engine.DecompositionEngine` with per-stage
    wall-clock times (``simplify``, ``decompose``, ``lift``, ``validate``);
    it stays empty for raw :meth:`Decomposer.decompose_raw` runs.
    """

    recursive_calls: int = 0
    max_recursion_depth: int = 0
    labels_tried: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    subproblems_delegated: int = 0
    #: Search-kernel counters (PR 3): subtrees cut by the branch-and-bound
    #: label enumerator, pool edges dropped by subedge domination, and
    #: component-splitter memo traffic.  The ablation benches report these.
    enum_branches_pruned: int = 0
    enum_domination_skips: int = 0
    splitter_memo_hits: int = 0
    splitter_memo_misses: int = 0
    #: Bitset-kernel counters (PR 7): lazy vertex→edge incidence mask-table
    #: builds triggered by a splitter, and hits on the packed-key memos
    #: (dominated candidate pools, per-component splitter reuse).
    mask_table_builds: int = 0
    bitset_memo_hits: int = 0
    #: Resilience counter (PR 8): replacement processes spawned by the
    #: parallel backend's supervisor after a worker died mid-search.
    worker_respawns: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def record_call(self, depth: int) -> None:
        """Record entering a recursive call at the given depth."""
        self.recursive_calls += 1
        if depth > self.max_recursion_depth:
            self.max_recursion_depth = depth

    def record_stage(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock time spent in a named pipeline stage."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def merge(self, other: "SearchStatistics") -> None:
        """Accumulate the counters of ``other`` into this object."""
        self.recursive_calls += other.recursive_calls
        self.max_recursion_depth = max(self.max_recursion_depth, other.max_recursion_depth)
        self.labels_tried += other.labels_tried
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.subproblems_delegated += other.subproblems_delegated
        self.enum_branches_pruned += other.enum_branches_pruned
        self.enum_domination_skips += other.enum_domination_skips
        self.splitter_memo_hits += other.splitter_memo_hits
        self.splitter_memo_misses += other.splitter_memo_misses
        self.mask_table_builds += other.mask_table_builds
        self.bitset_memo_hits += other.bitset_memo_hits
        self.worker_respawns += other.worker_respawns
        for stage, seconds in other.stage_seconds.items():
            self.record_stage(stage, seconds)

    def search_counters(self) -> dict[str, int]:
        """The kernel counters as a dict (used by the benches and reports)."""
        return {
            "labels_tried": self.labels_tried,
            "enum_branches_pruned": self.enum_branches_pruned,
            "enum_domination_skips": self.enum_domination_skips,
            "splitter_memo_hits": self.splitter_memo_hits,
            "splitter_memo_misses": self.splitter_memo_misses,
            "mask_table_builds": self.mask_table_builds,
            "bitset_memo_hits": self.bitset_memo_hits,
            "worker_respawns": self.worker_respawns,
        }


@dataclass
class DecompositionResult:
    """Outcome of a single ``decompose(H, k)`` run."""

    algorithm: str
    hypergraph: Hypergraph
    width_parameter: int
    success: bool
    decomposition: HypertreeDecomposition | None = None
    elapsed: float = 0.0
    timed_out: bool = False
    statistics: SearchStatistics = field(default_factory=SearchStatistics)

    @property
    def width(self) -> int | None:
        """Width of the decomposition found, or ``None`` if unsuccessful."""
        return self.decomposition.width if self.decomposition is not None else None

    @property
    def decided(self) -> bool:
        """True iff the run produced a definite yes/no answer (no timeout)."""
        return not self.timed_out

    def __repr__(self) -> str:
        status = "timeout" if self.timed_out else ("yes" if self.success else "no")
        return (
            f"<DecompositionResult {self.algorithm} k={self.width_parameter} "
            f"{status} {self.elapsed:.3f}s>"
        )


class SearchContext:
    """Per-run state shared by the recursive search implementations."""

    __slots__ = (
        "host",
        "k",
        "stats",
        "enumerator",
        "deadline",
        "cancel_event",
        "_timeout_stride",
        "_calls",
    )

    def __init__(
        self,
        host: Hypergraph,
        k: int,
        timeout: float | None = None,
        stats: SearchStatistics | None = None,
        cancel_event=None,
    ) -> None:
        if k < 1:
            raise SolverError(f"width parameter k must be >= 1, got {k}")
        self.host = host
        self.k = k
        self.stats = stats if stats is not None else SearchStatistics()
        self.enumerator = CoverEnumerator(host, k)
        self.enumerator.stats = self.stats
        self.deadline = None if timeout is None else time.monotonic() + timeout
        #: Optional :class:`threading.Event` checked alongside the deadline;
        #: lets a coordinator (the parallel thread backend) abort workers that
        #: are no longer needed after another worker already succeeded.
        self.cancel_event = cancel_event
        self._timeout_stride = 64
        self._calls = 0

    def check_timeout(self) -> None:
        """Raise :class:`TimeoutExceeded` if the deadline passed or the run was cancelled.

        The check is throttled: the wall clock is only consulted every few
        calls, which keeps its overhead negligible on the hot path.
        """
        if self.deadline is None and self.cancel_event is None:
            return
        self._calls += 1
        if self._calls % self._timeout_stride:
            return
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise TimeoutExceeded("decomposition run cancelled")
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise TimeoutExceeded("decomposition time budget exhausted")

    def force_timeout_check(self) -> None:
        """Unthrottled deadline/cancellation check (used at recursion entry points)."""
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise TimeoutExceeded("decomposition run cancelled")
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise TimeoutExceeded("decomposition time budget exhausted")


class Decomposer(ABC):
    """Abstract base class of all decomposition algorithms.

    Subclasses implement :meth:`_run`, which either returns a
    :class:`HypertreeDecomposition` of width at most ``k`` or ``None``.

    The public :meth:`decompose` routes through the staged
    :class:`~repro.pipeline.engine.DecompositionEngine` (width-preserving
    simplification, result cache, per-component search, lifting) by default;
    :meth:`decompose_raw` runs the search directly on the given hypergraph.
    Constructing a decomposer with ``use_engine=False`` makes
    :meth:`decompose` equivalent to :meth:`decompose_raw` — the escape hatch
    the differential tests use to compare the two paths.
    """

    name = "abstract"

    def __init__(
        self,
        timeout: float | None = None,
        use_engine: bool = True,
        engine=None,
    ) -> None:
        self.timeout = timeout
        self.use_engine = use_engine
        #: Optional explicit :class:`~repro.pipeline.engine.DecompositionEngine`;
        #: when ``None`` the process-wide default engine is used.
        self.engine = engine

    @abstractmethod
    def _run(self, context: SearchContext) -> HypertreeDecomposition | None:
        """Run the search and return a decomposition of width <= k, or None."""

    def cache_key(self) -> tuple:
        """Identity of this algorithm configuration for engine cache keys.

        Covers every constructor option (including the timeout): cached
        entries are decided answers together with the producing run's search
        statistics, and a differently-configured instance — tighter budget,
        caching disabled, different hybrid threshold — must not be served an
        outcome it could not have produced itself.  Non-primitive option
        values contribute their type name (e.g. the hybrid metric object).
        """
        options: list[tuple[str, object]] = []
        for attr, value in sorted(vars(self).items()):
            if attr in {"use_engine", "engine"}:
                continue  # engine plumbing, not algorithm configuration
            if isinstance(value, (str, int, float, bool, frozenset, tuple, type(None))):
                options.append((attr, value))
            else:
                options.append((attr, type(value).__name__))
        return (self.name, tuple(options))

    def decompose(self, hypergraph: Hypergraph, k: int) -> DecompositionResult:
        """Decide whether ``hypergraph`` has an HD of width at most ``k``.

        Returns a :class:`DecompositionResult`; when ``success`` is True the
        result carries a concrete decomposition of width at most ``k`` whose
        host is ``hypergraph`` itself (decompositions found on the simplified
        instance are lifted back).
        """
        if hypergraph.num_edges == 0:
            raise SolverError("cannot decompose a hypergraph without edges")
        if not self.use_engine:
            return self.decompose_raw(hypergraph, k)
        if self.engine is not None:
            return self.engine.decompose(self, hypergraph, k)
        from ..pipeline.engine import default_engine  # deferred: avoids an import cycle

        return default_engine().decompose(self, hypergraph, k)

    def decompose_raw(
        self,
        hypergraph: Hypergraph,
        k: int,
        timeout: float | None = None,
        cancel_event=None,
    ) -> DecompositionResult:
        """Run the search directly, without simplification, caching or lifting.

        This is the pre-pipeline behaviour; the engine calls it once per
        connected component of the simplified instance, passing the *remaining*
        time budget via ``timeout`` so one ``decompose`` call never exceeds
        the configured budget overall (``None`` means use ``self.timeout``).
        ``cancel_event`` (a :class:`threading.Event`) aborts the search at
        the next periodic deadline check once set; the outcome is reported
        as ``timed_out`` — this is how the serving layer implements
        per-request cancellation.
        """
        if hypergraph.num_edges == 0:
            raise SolverError("cannot decompose a hypergraph without edges")
        context = SearchContext(
            hypergraph,
            k,
            timeout=self.timeout if timeout is None else timeout,
            cancel_event=cancel_event,
        )
        start = time.monotonic()
        timed_out = False
        decomposition: HypertreeDecomposition | None = None
        try:
            decomposition = self._run(context)
        except TimeoutExceeded:
            timed_out = True
        elapsed = time.monotonic() - start
        return DecompositionResult(
            algorithm=self.name,
            hypergraph=hypergraph,
            width_parameter=k,
            success=decomposition is not None,
            decomposition=decomposition,
            elapsed=elapsed,
            timed_out=timed_out,
            statistics=context.stats,
        )

    def is_width_at_most(self, hypergraph: Hypergraph, k: int) -> bool | None:
        """Convenience wrapper: True / False, or ``None`` on timeout."""
        result = self.decompose(hypergraph, k)
        if result.timed_out:
            return None
        return result.success

    def __repr__(self) -> str:
        return f"<{type(self).__name__} timeout={self.timeout}>"
