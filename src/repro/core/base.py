"""Common infrastructure shared by all decomposition algorithms.

Every algorithm in :mod:`repro.core` is exposed as a :class:`Decomposer` whose
:meth:`Decomposer.decompose` method takes a hypergraph and a width parameter
``k`` and returns a :class:`DecompositionResult`.  The result records

* whether an HD of width at most ``k`` was found,
* the concrete decomposition (when successful),
* wall-clock time and whether the time budget was exhausted,
* search statistics (recursive calls, maximum recursion depth, number of
  λ-labels tried, cache hits) used by the recursion-depth experiments.

The :class:`SearchContext` bundles the per-run state (host hypergraph, width,
deadline, statistics, cover enumerator) that the recursive search classes of
the individual algorithms share.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..decomp.covers import CoverEnumerator
from ..decomp.decomposition import HypertreeDecomposition
from ..exceptions import SolverError, TimeoutExceeded
from ..hypergraph import Hypergraph

__all__ = [
    "SearchStatistics",
    "DecompositionResult",
    "SearchContext",
    "Decomposer",
]


@dataclass
class SearchStatistics:
    """Counters collected during a decomposition search."""

    recursive_calls: int = 0
    max_recursion_depth: int = 0
    labels_tried: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    subproblems_delegated: int = 0

    def record_call(self, depth: int) -> None:
        """Record entering a recursive call at the given depth."""
        self.recursive_calls += 1
        if depth > self.max_recursion_depth:
            self.max_recursion_depth = depth

    def merge(self, other: "SearchStatistics") -> None:
        """Accumulate the counters of ``other`` into this object."""
        self.recursive_calls += other.recursive_calls
        self.max_recursion_depth = max(self.max_recursion_depth, other.max_recursion_depth)
        self.labels_tried += other.labels_tried
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.subproblems_delegated += other.subproblems_delegated


@dataclass
class DecompositionResult:
    """Outcome of a single ``decompose(H, k)`` run."""

    algorithm: str
    hypergraph: Hypergraph
    width_parameter: int
    success: bool
    decomposition: HypertreeDecomposition | None = None
    elapsed: float = 0.0
    timed_out: bool = False
    statistics: SearchStatistics = field(default_factory=SearchStatistics)

    @property
    def width(self) -> int | None:
        """Width of the decomposition found, or ``None`` if unsuccessful."""
        return self.decomposition.width if self.decomposition is not None else None

    @property
    def decided(self) -> bool:
        """True iff the run produced a definite yes/no answer (no timeout)."""
        return not self.timed_out

    def __repr__(self) -> str:
        status = "timeout" if self.timed_out else ("yes" if self.success else "no")
        return (
            f"<DecompositionResult {self.algorithm} k={self.width_parameter} "
            f"{status} {self.elapsed:.3f}s>"
        )


class SearchContext:
    """Per-run state shared by the recursive search implementations."""

    __slots__ = ("host", "k", "stats", "enumerator", "deadline", "_timeout_stride", "_calls")

    def __init__(
        self,
        host: Hypergraph,
        k: int,
        timeout: float | None = None,
        stats: SearchStatistics | None = None,
    ) -> None:
        if k < 1:
            raise SolverError(f"width parameter k must be >= 1, got {k}")
        self.host = host
        self.k = k
        self.stats = stats if stats is not None else SearchStatistics()
        self.enumerator = CoverEnumerator(host, k)
        self.deadline = None if timeout is None else time.monotonic() + timeout
        self._timeout_stride = 64
        self._calls = 0

    def check_timeout(self) -> None:
        """Raise :class:`TimeoutExceeded` if the deadline has passed.

        The check is throttled: the wall clock is only consulted every few
        calls, which keeps its overhead negligible on the hot path.
        """
        if self.deadline is None:
            return
        self._calls += 1
        if self._calls % self._timeout_stride:
            return
        if time.monotonic() > self.deadline:
            raise TimeoutExceeded("decomposition time budget exhausted")

    def force_timeout_check(self) -> None:
        """Unthrottled deadline check (used at recursion entry points)."""
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise TimeoutExceeded("decomposition time budget exhausted")


class Decomposer(ABC):
    """Abstract base class of all decomposition algorithms.

    Subclasses implement :meth:`_run`, which either returns a
    :class:`HypertreeDecomposition` of width at most ``k`` or ``None``.
    The public :meth:`decompose` wraps it with timing, timeout handling and
    result packaging.
    """

    name = "abstract"

    def __init__(self, timeout: float | None = None) -> None:
        self.timeout = timeout

    @abstractmethod
    def _run(self, context: SearchContext) -> HypertreeDecomposition | None:
        """Run the search and return a decomposition of width <= k, or None."""

    def decompose(self, hypergraph: Hypergraph, k: int) -> DecompositionResult:
        """Decide whether ``hypergraph`` has an HD of width at most ``k``.

        Returns a :class:`DecompositionResult`; when ``success`` is True the
        result carries a concrete decomposition of width at most ``k``.
        """
        if hypergraph.num_edges == 0:
            raise SolverError("cannot decompose a hypergraph without edges")
        context = SearchContext(hypergraph, k, timeout=self.timeout)
        start = time.monotonic()
        timed_out = False
        decomposition: HypertreeDecomposition | None = None
        try:
            decomposition = self._run(context)
        except TimeoutExceeded:
            timed_out = True
        elapsed = time.monotonic() - start
        return DecompositionResult(
            algorithm=self.name,
            hypergraph=hypergraph,
            width_parameter=k,
            success=decomposition is not None,
            decomposition=decomposition,
            elapsed=elapsed,
            timed_out=timed_out,
            statistics=context.stats,
        )

    def is_width_at_most(self, hypergraph: Hypergraph, k: int) -> bool | None:
        """Convenience wrapper: True / False, or ``None`` on timeout."""
        result = self.decompose(hypergraph, k)
        if result.timed_out:
            return None
        return result.success

    def __repr__(self) -> str:
        return f"<{type(self).__name__} timeout={self.timeout}>"
