"""Exact optimal-width HD computation (substitute for HtdLEO).

HtdLEO encodes hypertree-width computation into SMT and asks the solver for
the optimum width directly — no width parameter, considerable memory use, and
behaviour that differs qualitatively from the parametrised searches of
det-k-decomp and log-k-decomp.  No SMT solver is available offline, so this
module provides an exact optimal solver with the same external behaviour
(see DESIGN.md for the substitution record):

1. A *lower bound* on ``hw`` is computed as the exact generalized hypertree
   width ``ghw`` via dynamic programming over elimination orderings of the
   primal graph (a Held–Karp style subset DP, exponential in the number of
   vertices — mirroring the memory-hungry character of the SMT approach).
   Each ordering bag is covered exactly by a branch-and-bound set cover.
2. Starting at that lower bound, HD existence is checked for increasing ``k``
   with det-k-decomp; the first success is the optimum ``hw`` (since
   ``ghw ≤ hw`` always holds).

For hypergraphs with too many vertices for the subset DP, the solver falls
back to a cheaper lower bound (the cover number of the largest edge
neighbourhood is replaced by 1) and pays for it with more width iterations,
exactly the "struggles on large instances" behaviour Table 1 reports for
HtdLEO.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache

from ..decomp.decomposition import HypertreeDecomposition
from ..exceptions import SolverError, TimeoutExceeded
from ..hypergraph import Hypergraph
from ..hypergraph.properties import is_alpha_acyclic
from .base import SearchStatistics
from .detk import DetKDecomposer

__all__ = ["OptimalHDSolver", "OptimalResult", "exact_ghw", "minimum_edge_cover_size"]

#: Above this vertex count the subset DP for the ghw lower bound is skipped.
DEFAULT_DP_VERTEX_LIMIT = 18


@dataclass
class OptimalResult:
    """Outcome of an optimal-width computation."""

    hypergraph: Hypergraph
    width: int | None
    decomposition: HypertreeDecomposition | None
    lower_bound: int
    elapsed: float
    timed_out: bool
    statistics: SearchStatistics

    @property
    def solved(self) -> bool:
        """True iff an optimal-width HD was found and proven optimal."""
        return self.width is not None


def minimum_edge_cover_size(hypergraph: Hypergraph, vertices: int, limit: int | None = None) -> int:
    """Exact minimum number of edges needed to cover the vertex bitmask ``vertices``.

    Branch and bound on the first uncovered vertex; ``limit`` (if given) caps
    the search and the returned value is then ``limit + 1`` when no cover of
    size at most ``limit`` exists.
    """
    if vertices == 0:
        return 0
    edge_bits = [hypergraph.edge_bits(i) for i in range(hypergraph.num_edges)]
    cap = limit if limit is not None else hypergraph.num_edges

    best = cap + 1

    def branch(remaining: int, used: int) -> None:
        nonlocal best
        if remaining == 0:
            best = min(best, used)
            return
        if used + 1 >= best:
            return
        lowest = remaining & -remaining
        candidates = [bits for bits in edge_bits if bits & lowest]
        # Try edges covering more of the remainder first.
        candidates.sort(key=lambda bits: (bits & remaining).bit_count(), reverse=True)
        for bits in candidates:
            branch(remaining & ~bits, used + 1)

    branch(vertices, 0)
    return best


def exact_ghw(hypergraph: Hypergraph, vertex_limit: int = DEFAULT_DP_VERTEX_LIMIT) -> int | None:
    """Exact generalized hypertree width via the elimination-ordering subset DP.

    Returns ``None`` when the hypergraph has more vertices than
    ``vertex_limit`` (the DP over 2^n subsets would be too expensive).
    """
    n = hypergraph.num_vertices
    if n == 0:
        return 0
    if n > vertex_limit:
        return None

    # Adjacency of the primal graph as bitmasks.
    adjacency = [0] * n
    for index in range(hypergraph.num_edges):
        bits = hypergraph.edge_bits(index)
        remaining = bits
        while remaining:
            low = remaining & -remaining
            v = low.bit_length() - 1
            remaining ^= low
            adjacency[v] |= bits & ~low

    full = (1 << n) - 1

    @lru_cache(maxsize=None)
    def reachable_closure(eliminated: int, vertex: int) -> int:
        """Vertices outside ``eliminated ∪ {vertex}`` reachable from ``vertex``
        through eliminated vertices (the bag of ``vertex`` when eliminated
        after the set ``eliminated``)."""
        seen = 1 << vertex
        frontier = 1 << vertex
        result = 0
        while frontier:
            low = frontier & -frontier
            v = low.bit_length() - 1
            frontier ^= low
            neighbours = adjacency[v] & ~seen
            seen |= neighbours
            result |= neighbours & ~eliminated
            frontier |= neighbours & eliminated
        return result & ~(1 << vertex)

    @lru_cache(maxsize=None)
    def bag_cost(eliminated: int, vertex: int) -> int:
        bag = reachable_closure(eliminated, vertex) | (1 << vertex)
        return minimum_edge_cover_size(hypergraph, bag)

    @lru_cache(maxsize=None)
    def best_width(eliminated: int) -> int:
        """Minimum over orderings of the remaining vertices of the max bag cover."""
        if eliminated == full:
            return 0
        best = hypergraph.num_edges + 1
        remaining = full & ~eliminated
        while remaining:
            low = remaining & -remaining
            v = low.bit_length() - 1
            remaining ^= low
            cost = max(bag_cost(eliminated, v), best_width(eliminated | (1 << v)))
            if cost < best:
                best = cost
        return best

    try:
        result = best_width(0)
    finally:
        reachable_closure.cache_clear()
        bag_cost.cache_clear()
        best_width.cache_clear()
    return result


class OptimalHDSolver:
    """Compute the exact hypertree width and an optimal HD (HtdLEO substitute).

    Unlike the :class:`~repro.core.base.Decomposer` classes this solver takes
    no width parameter: :meth:`solve` returns the optimum directly, as HtdLEO
    does.
    """

    name = "optimal-hd"

    def __init__(
        self,
        timeout: float | None = None,
        dp_vertex_limit: int = DEFAULT_DP_VERTEX_LIMIT,
        max_width: int = 10,
    ) -> None:
        if max_width < 1:
            raise SolverError("max_width must be >= 1")
        self.timeout = timeout
        self.dp_vertex_limit = dp_vertex_limit
        self.max_width = max_width

    def solve(self, hypergraph: Hypergraph) -> OptimalResult:
        """Return the optimum hypertree width of ``hypergraph`` (up to ``max_width``)."""
        if hypergraph.num_edges == 0:
            raise SolverError("cannot decompose a hypergraph without edges")
        start = time.monotonic()
        deadline = None if self.timeout is None else start + self.timeout
        stats = SearchStatistics()

        lower_bound = 1
        try:
            if not is_alpha_acyclic(hypergraph):
                lower_bound = 2
                ghw = exact_ghw(hypergraph, self.dp_vertex_limit)
                if ghw is not None:
                    lower_bound = max(lower_bound, ghw)
            self._check_deadline(deadline)

            width = lower_bound
            while width <= self.max_width:
                remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
                decomposer = DetKDecomposer(timeout=remaining)
                result = decomposer.decompose(hypergraph, width)
                stats.merge(result.statistics)
                if result.timed_out:
                    raise TimeoutExceeded("optimal solver time budget exhausted")
                if result.success:
                    return OptimalResult(
                        hypergraph=hypergraph,
                        width=width,
                        decomposition=result.decomposition,
                        lower_bound=lower_bound,
                        elapsed=time.monotonic() - start,
                        timed_out=False,
                        statistics=stats,
                    )
                width += 1
        except TimeoutExceeded:
            return OptimalResult(
                hypergraph=hypergraph,
                width=None,
                decomposition=None,
                lower_bound=lower_bound,
                elapsed=time.monotonic() - start,
                timed_out=True,
                statistics=stats,
            )
        return OptimalResult(
            hypergraph=hypergraph,
            width=None,
            decomposition=None,
            lower_bound=lower_bound,
            elapsed=time.monotonic() - start,
            timed_out=False,
            statistics=stats,
        )

    @staticmethod
    def _check_deadline(deadline: float | None) -> None:
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutExceeded("optimal solver time budget exhausted")

    def __repr__(self) -> str:
        return f"<OptimalHDSolver timeout={self.timeout} max_width={self.max_width}>"
