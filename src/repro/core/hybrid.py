"""Hybrid log-k-decomp / det-k-decomp (Section 5.2 and Appendix D.2).

The hybrid strategy uses log-k-decomp's balanced separators to split large
problems into small, independent subproblems, and switches to det-k-decomp —
which excels on small instances thanks to its memoisation — once a subproblem
is "simple enough".  Simplicity is measured by one of two metrics from the
paper:

* ``EdgeCount``:       m(H') = |E(H')|
* ``WeightedCount``:   m(H') = |E(H')| * k / avg_{e ∈ E(H')} |e|

log-k-decomp keeps control while ``m(H') >= threshold`` and delegates to
det-k-decomp below the threshold.  The paper's best configuration is
WeightedCount with thresholds around 400 (Table 2), which is the default
here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..decomp.decomposition import HypertreeDecomposition
from ..decomp.extended import BitComp, Comp, FragmentNode, full_bitcomp
from ..exceptions import SolverError
from ..hypergraph import Hypergraph
from ..hypergraph.bitset import indices_of
from .base import Decomposer, SearchContext
from .detk import DetKSearch
from .fragments import fragment_to_decomposition
from .logk import LogKSearch

__all__ = [
    "SwitchMetric",
    "EdgeCountMetric",
    "WeightedCountMetric",
    "HybridDecomposer",
    "make_metric",
]


def _edge_indices(comp: Comp | BitComp) -> list[int] | frozenset[int]:
    """Edge indices of a component in either representation."""
    return indices_of(comp.edges) if isinstance(comp.edges, int) else comp.edges


@dataclass(frozen=True)
class SwitchMetric:
    """Base class of hybridisation metrics; subclasses implement ``value``.

    Metrics accept both the public :class:`Comp` and the packed
    :class:`BitComp` — the search hands them the packed form.
    """

    name: str = "abstract"

    def value(self, host: Hypergraph, comp: Comp | BitComp, k: int) -> float:
        """Complexity estimate of the subproblem ``comp``."""
        raise NotImplementedError


@dataclass(frozen=True)
class EdgeCountMetric(SwitchMetric):
    """The ``EdgeCount`` metric: the number of edges of the subproblem."""

    name: str = "EdgeCount"

    def value(self, host: Hypergraph, comp: Comp | BitComp, k: int) -> float:
        edges = comp.edges
        return float(edges.bit_count() if isinstance(edges, int) else len(edges))


@dataclass(frozen=True)
class WeightedCountMetric(SwitchMetric):
    """The ``WeightedCount`` metric: |E| * k / (average edge cardinality).

    Higher width means more structure to search per edge; larger edges make
    covers easier to find, so the count is inversely weighted by the average
    edge size (Appendix D.2).
    """

    name: str = "WeightedCount"

    def value(self, host: Hypergraph, comp: Comp | BitComp, k: int) -> float:
        if not comp.edges:
            return 0.0
        indices = _edge_indices(comp)
        total_size = sum(host.edge_bits(i).bit_count() for i in indices)
        count = len(indices)
        average = total_size / count
        return count * k / average


def make_metric(name: str) -> SwitchMetric:
    """Metric factory accepting the names used in the paper's Table 2."""
    normalized = name.strip().lower()
    if normalized in {"edgecount", "edge", "edges"}:
        return EdgeCountMetric()
    if normalized in {"weightedcount", "weighted"}:
        return WeightedCountMetric()
    raise SolverError(f"unknown hybridisation metric {name!r}")


class HybridDecomposer(Decomposer):
    """log-k-decomp that hands small subproblems to det-k-decomp.

    Parameters
    ----------
    metric:
        A :class:`SwitchMetric` instance or its name (``"WeightedCount"`` /
        ``"EdgeCount"``).
    threshold:
        Subproblems whose metric value is strictly below this threshold are
        delegated to det-k-decomp.
    """

    name = "log-k-decomp-hybrid"

    def __init__(
        self,
        timeout: float | None = None,
        metric: SwitchMetric | str = "WeightedCount",
        threshold: float = 400.0,
        negative_base_case: bool = True,
        parent_overlap_pruning: bool = True,
        label_pruning: bool = True,
        subedge_domination: bool = True,
        **engine_options,
    ) -> None:
        super().__init__(timeout=timeout, **engine_options)
        self.metric = make_metric(metric) if isinstance(metric, str) else metric
        self.threshold = threshold
        self.negative_base_case = negative_base_case
        self.parent_overlap_pruning = parent_overlap_pruning
        self.label_pruning = label_pruning
        self.subedge_domination = subedge_domination

    def _run(self, context: SearchContext) -> HypertreeDecomposition | None:
        fragment = self._search_fragment(context)
        if fragment is None:
            return None
        return fragment_to_decomposition(context.host, fragment)

    def _search_fragment(self, context: SearchContext) -> FragmentNode | None:
        detk = DetKSearch(
            context,
            label_pruning=self.label_pruning,
            subedge_domination=self.subedge_domination,
        )

        def delegate(
            comp: BitComp, conn: int, depth: int, allowed: int
        ) -> FragmentNode | None:
            return detk.search(comp, conn, depth, allowed=allowed)

        def should_delegate(comp: BitComp) -> bool:
            return self.metric.value(context.host, comp, context.k) < self.threshold

        search = LogKSearch(
            context,
            negative_base_case=self.negative_base_case,
            parent_overlap_pruning=self.parent_overlap_pruning,
            label_pruning=self.label_pruning,
            subedge_domination=self.subedge_domination,
            leaf_delegate=delegate,
            delegate_predicate=should_delegate,
        )
        comp = full_bitcomp(context.host)
        return search.search(comp, conn=0, allowed=context.host.all_edges_mask)
