"""log-k-decomp, optimised variant (Algorithm 2 of the paper).

This is the paper's main contribution.  The recursive ``Decomp`` function
searches for the λ-labels of a *pair* of adjacent HD nodes (parent ``p`` and
child ``c``) such that ``c`` is a *balanced separator* of the current extended
subhypergraph: no [χ(c)]-component below ``c`` and not the part above ``c``
may contain more than half of the component's (special) edges.  Balancedness
guarantees a recursion depth logarithmic in the number of edges
(Theorem 4.1), which is what makes the search-space partitioning
parallelisable without coordination.

The optimisations of Appendix C are implemented and individually switchable
(for the ablation benchmarks):

* ``negative_base_case`` — fail immediately when only special edges remain,
* child-first search with explicit *root-of-fragment* handling,
* ``parent_overlap_pruning`` — parent labels only use edges intersecting
  ∪λ(c),
* ``require_balanced`` — the balancedness filter itself (disabling it keeps
  the algorithm correct but removes the logarithmic depth guarantee; it exists
  purely for the ablation study).

Excluding the edges of the component below a separator from the λ-labels of
the fragment above it (the ``allowed`` set threaded through the recursion) is
**not** an optional optimisation: an "up" fragment whose λ-label uses an edge
of the component below the stitch point puts vertices of that component into
∪λ(u) without them being in χ(u), which violates HD condition 4 (the special
condition) on the stitched tree.  The restriction is therefore always
applied (it also never loses completeness: fragments extracted from a valid
HD never need the excluded edges, by the very same condition 4).  The
historical ``restrict_allowed_edges`` flag that once disabled it went
through a deprecation cycle and has been removed.

A ``leaf_delegate`` hook allows the hybrid decomposer to hand sufficiently
small subproblems to det-k-decomp (Appendix D.2).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..decomp.components import ComponentSplitter
from ..decomp.covers import label_union
from ..hypergraph.bitset import from_indices, indices_of
from ..lru import BoundedLRU
from ..decomp.decomposition import HypertreeDecomposition
from ..decomp.extended import BitComp, Comp, FragmentNode, full_bitcomp
from .base import Decomposer, SearchContext
from .fragments import fragment_to_decomposition, replace_special_leaf, special_leaf

__all__ = ["LogKSearch", "LogKDecomposer"]


#: The delegate receives the packed subproblem: a :class:`BitComp`, the Conn
#: vertex bitmask, the recursion depth and the allowed-edge *index* bitmask.
LeafDelegate = Callable[[BitComp, int, int, int], FragmentNode | None]
DelegatePredicate = Callable[[BitComp], bool]


class LogKSearch:
    """The recursive search of Algorithm 2 over extended subhypergraphs."""

    def __init__(
        self,
        context: SearchContext,
        negative_base_case: bool = True,
        parent_overlap_pruning: bool = True,
        require_balanced: bool = True,
        use_cache: bool = True,
        label_pruning: bool = True,
        subedge_domination: bool = True,
        leaf_delegate: LeafDelegate | None = None,
        delegate_predicate: DelegatePredicate | None = None,
        root_partition: Iterable[int] | None = None,
    ) -> None:
        self.context = context
        self.negative_base_case = negative_base_case
        self.parent_overlap_pruning = parent_overlap_pruning
        self.require_balanced = require_balanced
        self.use_cache = use_cache
        # Search-kernel switches (same ablation spirit as the flags above):
        # label_pruning selects the branch-and-bound enumerator vs. the
        # reference implementation; subedge_domination drops pool edges whose
        # component-restricted vertex set is contained in another pool edge's.
        self.label_pruning = label_pruning
        self.subedge_domination = subedge_domination and label_pruning
        self.leaf_delegate = leaf_delegate
        self.delegate_predicate = delegate_predicate
        self.root_partition = frozenset(root_partition) if root_partition is not None else None
        # Subproblem cache: the same extended subhypergraph is reached through
        # many different (λ(p), λ(c)) pairs during the search; memoising the
        # outcome (keyed by the component, Conn and the allowed-edge set)
        # avoids re-solving it.  This mirrors the caching of the reference
        # implementation's subedge/component handling and never changes
        # answers, only the amount of work.  All key parts are packed ints
        # (edge bitmask, specials tuple, conn mask, allowed mask), so hashing
        # a key is flat integer hashing rather than frozenset hashing.
        self._cache: dict[
            tuple[int, tuple[int, ...], int, int],
            FragmentNode | None,
        ] = {}
        # Memoised splitters for the inner comp_down splits of the parent
        # loop: the same oversized component reappears for many λ(p), and its
        # splitter then serves the [χ(c)]-splits of every paired child label.
        self._splitters: BoundedLRU = BoundedLRU(256)

    def _splitter_for(self, comp: BitComp) -> ComponentSplitter:
        key = (comp.edges, comp.specials)
        splitter = self._splitters.get(key)
        if splitter is None:
            splitter = ComponentSplitter(self.context.host, comp, stats=self.context.stats)
            self._splitters.put(key, splitter)
        elif self.context.stats is not None:
            self.context.stats.bitset_memo_hits += 1
        return splitter

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #
    def search(
        self,
        comp: Comp | BitComp,
        conn: int,
        allowed: Iterable[int] | int,
        depth: int = 1,
    ) -> FragmentNode | None:
        """Decomp(H', Conn, A): an HD fragment of width <= k, or ``None``.

        ``comp`` may be the public :class:`Comp` or the packed
        :class:`BitComp`; ``allowed`` an iterable of edge indices or an
        edge-index bitmask.  The recursion runs entirely on the packed forms.
        """
        if isinstance(comp, Comp):
            comp = BitComp.from_comp(comp)
        if not isinstance(allowed, int):
            allowed = from_indices(allowed)
        return self._search(comp, conn, allowed, depth)

    def _search(
        self, comp: BitComp, conn: int, allowed: int, depth: int
    ) -> FragmentNode | None:
        context = self.context
        context.stats.record_call(depth)
        context.check_timeout()

        cache_key = None
        if self.use_cache:
            cache_key = (comp.edges, comp.specials, conn, allowed)
            if cache_key in self._cache:
                context.stats.cache_hits += 1
                cached = self._cache[cache_key]
                return cached.copy() if cached is not None else None
            context.stats.cache_misses += 1

        result = self._search_uncached(comp, conn, allowed, depth)
        if cache_key is not None:
            self._cache[cache_key] = result.copy() if result is not None else None
        return result

    def _search_uncached(
        self, comp: BitComp, conn: int, allowed: int, depth: int
    ) -> FragmentNode | None:
        context = self.context
        host, k = context.host, context.k

        # ----- base cases (lines 5-10) --------------------------------- #
        if not comp.specials and comp.edges.bit_count() <= k:
            lam = tuple(indices_of(comp.edges))
            return FragmentNode(chi=host.edges_to_mask(lam), lam_edges=lam)
        if not comp.edges and len(comp.specials) == 1:
            return special_leaf(comp.specials[0])
        if not comp.edges and len(comp.specials) > 1:
            if self.negative_base_case:
                return None
            # Without the negative base case the child loop below finds no
            # candidate label (it requires a "new" edge) and fails anyway.

        allowed_pool = allowed

        # ----- hybrid delegation (Appendix D.2) ------------------------ #
        # The delegate receives the allowed-edge pool: its fragment may end
        # up above a stitched separator, where λ-labels using edges of the
        # component below would break the special condition (condition 4) of
        # the combined tree.
        if (
            self.leaf_delegate is not None
            and self.delegate_predicate is not None
            and self.delegate_predicate(comp)
        ):
            context.stats.subproblems_delegated += 1
            return self.leaf_delegate(comp, conn, depth, allowed_pool)
        comp_vertices = comp.vertices(host)
        half = comp.size / 2
        # Pooled splitter: the same comp recurs across search calls under
        # different (conn, allowed) keys and keeps its incidence index and
        # split memo across those visits.
        splitter = self._splitter_for(comp)

        # ----- ChildLoop (lines 11-43) --------------------------------- #
        child_labels = self._child_labels(comp, allowed_pool, comp_vertices, depth)
        for lam_c in child_labels:
            context.stats.labels_tried += 1
            context.check_timeout()
            lam_c_union = label_union(host, lam_c)

            if self.require_balanced and splitter.largest_size(lam_c_union) > half:
                continue

            if conn & ~lam_c_union == 0:
                # ----- c is the root of the fragment (lines 15-21) ----- #
                comps_c = splitter.split_bits(lam_c_union)
                fragment = self._try_root(
                    comp, lam_c, lam_c_union, comps_c, comp_vertices,
                    allowed_pool, depth,
                )
                if fragment is not None:
                    return fragment
                continue

            # ----- ParentLoop (lines 22-43) ---------------------------- #
            fragment = self._try_parents(
                comp, conn, lam_c, lam_c_union, comp_vertices, allowed_pool, depth,
                splitter,
            )
            if fragment is not None:
                return fragment

        return None

    # ------------------------------------------------------------------ #
    # pieces of the search
    # ------------------------------------------------------------------ #
    def _child_labels(
        self, comp: BitComp, allowed_pool: int, comp_vertices: int, depth: int
    ) -> Iterable[tuple[int, ...]]:
        enumerator = self.context.enumerator
        domination = comp_vertices if self.subedge_domination else None
        if depth == 1 and self.root_partition is not None:
            return enumerator.labels_for_partition(
                allowed_pool,
                sorted(self.root_partition),
                require_from=comp.edges,
                component_vertices=domination,
                pruning=self.label_pruning,
            )
        return enumerator.labels(
            allowed=allowed_pool,
            require_from=comp.edges,
            component_vertices=domination,
            pruning=self.label_pruning,
        )

    def _try_root(
        self,
        comp: BitComp,
        lam_c: tuple[int, ...],
        lam_c_union: int,
        comps_c: list[BitComp],
        comp_vertices: int,
        allowed_pool: int,
        depth: int,
    ) -> FragmentNode | None:
        """Lines 15-21: the child label covers Conn, so c roots the fragment."""
        host = self.context.host
        chi_c = lam_c_union & comp_vertices
        children: list[FragmentNode] = []
        for sub in comps_c:
            sub_conn = sub.vertices(host) & chi_c
            child = self._search(sub, sub_conn, allowed_pool, depth + 1)
            if child is None:
                return None
            children.append(child)
        for special in comp.specials:
            if special & ~chi_c == 0:
                children.append(special_leaf(special))
        return FragmentNode(chi=chi_c, lam_edges=lam_c, children=children)

    def _try_parents(
        self,
        comp: BitComp,
        conn: int,
        lam_c: tuple[int, ...],
        lam_c_union: int,
        comp_vertices: int,
        allowed_pool: int,
        depth: int,
        splitter: ComponentSplitter | None = None,
    ) -> FragmentNode | None:
        """Lines 22-43: find a parent label λ(p) compatible with the child c."""
        context = self.context
        host = context.host
        half = comp.size / 2
        if splitter is None:
            splitter = self._splitter_for(comp)
        overlap = lam_c_union if self.parent_overlap_pruning else None
        # strict_domination=False: the oversized-component existence test a
        # few lines below is not monotone in the parent label's restriction,
        # so only the outcome-preserving equal-restriction collapse applies
        # here (see the covers module docstring).
        for lam_p in context.enumerator.labels(
            allowed=allowed_pool,
            require_from=comp.edges,
            overlap_with=overlap,
            component_vertices=comp_vertices if self.subedge_domination else None,
            strict_domination=False,
            pruning=self.label_pruning,
        ):
            context.stats.labels_tried += 1
            context.check_timeout()
            lam_p_union = label_union(host, lam_p)

            comps_p = splitter.split_bits(lam_p_union)
            comp_down = next((c for c in comps_p if c.size > half), None)
            if comp_down is None:
                continue
            down_vertices = comp_down.vertices(host)

            chi_c = lam_c_union & down_vertices
            if down_vertices & conn & ~lam_p_union:
                continue  # connectedness check, line 29
            if down_vertices & lam_p_union & ~chi_c:
                continue  # connectedness check, line 31

            sub_components = self._splitter_for(comp_down).split_bits(chi_c)
            children: list[FragmentNode] = []
            failed = False
            for sub in sub_components:
                sub_conn = sub.vertices(host) & chi_c
                child = self._search(sub, sub_conn, allowed_pool, depth + 1)
                if child is None:
                    failed = True
                    break
                children.append(child)
            if failed:
                continue

            comp_up = comp.difference(comp_down).with_special(chi_c)
            allowed_up = allowed_pool & ~comp_down.edges
            up = self._search(comp_up, conn, allowed_up, depth + 1)
            if up is None:
                continue

            for special in comp_down.specials:
                if special & ~chi_c == 0:
                    children.append(special_leaf(special))
            node_c = FragmentNode(chi=chi_c, lam_edges=lam_c, children=children)
            if not replace_special_leaf(up, chi_c, node_c):
                # The fragment above must contain the placeholder for χ(c).
                continue
            return up
        return None


class LogKDecomposer(Decomposer):
    """Public decomposer running the optimised log-k-decomp (Algorithm 2)."""

    name = "log-k-decomp"

    def __init__(
        self,
        timeout: float | None = None,
        negative_base_case: bool = True,
        parent_overlap_pruning: bool = True,
        require_balanced: bool = True,
        label_pruning: bool = True,
        subedge_domination: bool = True,
        **engine_options,
    ) -> None:
        super().__init__(timeout=timeout, **engine_options)
        self.negative_base_case = negative_base_case
        self.parent_overlap_pruning = parent_overlap_pruning
        self.require_balanced = require_balanced
        self.label_pruning = label_pruning
        self.subedge_domination = subedge_domination

    def _make_search(self, context: SearchContext) -> LogKSearch:
        return LogKSearch(
            context,
            negative_base_case=self.negative_base_case,
            parent_overlap_pruning=self.parent_overlap_pruning,
            require_balanced=self.require_balanced,
            label_pruning=self.label_pruning,
            subedge_domination=self.subedge_domination,
        )

    def _run(self, context: SearchContext) -> HypertreeDecomposition | None:
        search = self._make_search(context)
        comp = full_bitcomp(context.host)
        fragment = search.search(comp, conn=0, allowed=context.host.all_edges_mask)
        if fragment is None:
            return None
        return fragment_to_decomposition(context.host, fragment)
