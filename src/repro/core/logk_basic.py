"""log-k-decomp, basic variant (Algorithm 1 of the paper).

Algorithm 1 is the form in which the paper proves correctness (Appendix A)
and the logarithmic recursion-depth bound (Theorem 4.1).  Its main program
guesses the λ-label of the *root* of the HD and calls the recursive
``Decomp`` function on every [λ(r)]-component; ``Decomp`` itself guesses the
labels of a parent/child node pair, with the child required to be a balanced
separator of the current extended subhypergraph.

The optimised variant in :mod:`repro.core.logk` supersedes this one in
practice; the basic variant is kept because (a) it is the algorithm the
correctness proofs refer to, (b) differential tests between the two variants
(and det-k-decomp) are a strong guard against implementation bugs, and (c)
the ablation study uses it as the "no optimisations" reference point.

One restriction is shared with the optimised variant because it is
correctness-relevant rather than an optimisation: the λ-labels of the
fragment *above* a separator must not use edges of the component below it
(the ``excluded`` set threaded through ``decomp``).  Such a label would put
vertices of the component below into ∪λ(u) without them being in χ(u),
violating HD condition 4 on the stitched tree; excluding the edges never
loses completeness because fragments extracted from a valid HD satisfy
condition 4 and therefore never need them.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..decomp.components import ComponentSplitter
from ..decomp.covers import label_union
from ..decomp.decomposition import HypertreeDecomposition
from ..decomp.extended import BitComp, Comp, FragmentNode, full_bitcomp
from ..hypergraph.bitset import from_indices, indices_of
from .base import Decomposer, SearchContext
from .fragments import fragment_to_decomposition, replace_special_leaf, special_leaf

__all__ = ["LogKBasicSearch", "LogKBasicDecomposer"]


class LogKBasicSearch:
    """The main program and recursive ``Decomp`` function of Algorithm 1."""

    def __init__(self, context: SearchContext) -> None:
        self.context = context

    # ------------------------------------------------------------------ #
    # main program (lines 1-10)
    # ------------------------------------------------------------------ #
    def run(self) -> FragmentNode | None:
        """Search for an HD of the whole hypergraph; return its fragment tree."""
        context = self.context
        host = context.host
        whole = full_bitcomp(host)
        splitter = ComponentSplitter(host, whole, stats=context.stats)
        for lam_r in context.enumerator.labels():
            context.stats.labels_tried += 1
            context.check_timeout()
            lam_r_union = label_union(host, lam_r)
            comps_r = splitter.split_bits(lam_r_union)
            children: list[FragmentNode] = []
            rejected = False
            for component in comps_r:
                conn = component.vertices(host) & lam_r_union
                fragment = self.decomp(component, conn, depth=1)
                if fragment is None:
                    rejected = True
                    break
                children.append(fragment)
            if rejected:
                continue
            # χ(r) = ∪λ(r) by the special condition at the root.
            return FragmentNode(chi=lam_r_union, lam_edges=lam_r, children=children)
        return None

    # ------------------------------------------------------------------ #
    # function Decomp (lines 11-40)
    # ------------------------------------------------------------------ #
    def decomp(
        self,
        comp: Comp | BitComp,
        conn: int,
        depth: int,
        excluded: Iterable[int] | int = 0,
    ) -> FragmentNode | None:
        context = self.context
        context.stats.record_call(depth)
        context.check_timeout()
        host, k = context.host, context.k
        if isinstance(comp, Comp):
            comp = BitComp.from_comp(comp)
        if not isinstance(excluded, int):
            excluded = from_indices(excluded)

        # Base cases (lines 12-15).
        if not comp.specials and comp.edges.bit_count() <= k:
            lam = tuple(indices_of(comp.edges))
            return FragmentNode(chi=host.edges_to_mask(lam), lam_edges=lam)
        if not comp.edges and len(comp.specials) == 1:
            return special_leaf(comp.specials[0])

        half = comp.size / 2
        splitter = ComponentSplitter(host, comp, stats=context.stats)
        # Edges below enclosing stitch points must stay out of every λ-label
        # of this fragment (condition 4 on the stitched tree, see module docs).
        pool = host.all_edges_mask & ~excluded

        # ParentLoop (lines 16-39).
        for lam_p in context.enumerator.labels(allowed=pool):
            context.stats.labels_tried += 1
            context.check_timeout()
            lam_p_union = label_union(host, lam_p)
            comps_p = splitter.split_bits(lam_p_union)
            comp_down = next((c for c in comps_p if c.size > half), None)
            if comp_down is None:
                continue
            down_vertices = comp_down.vertices(host)
            if down_vertices & conn & ~lam_p_union:
                continue  # connectedness check, line 22
            splitter_down = ComponentSplitter(host, comp_down, stats=context.stats)

            # ChildLoop (lines 24-39).
            for lam_c in context.enumerator.labels(allowed=pool):
                context.stats.labels_tried += 1
                context.check_timeout()
                lam_c_union = label_union(host, lam_c)
                chi_c = lam_c_union & down_vertices
                if down_vertices & lam_p_union & ~chi_c:
                    continue  # connectedness check, line 26
                if splitter_down.largest_size(chi_c) > half:
                    continue  # balancedness check, line 29
                sub_components = splitter_down.split_bits(chi_c)

                children: list[FragmentNode] = []
                failed = False
                for sub in sub_components:
                    sub_conn = sub.vertices(host) & chi_c
                    child = self.decomp(sub, sub_conn, depth + 1, excluded)
                    if child is None:
                        failed = True
                        break
                    children.append(child)
                if failed:
                    continue

                comp_up = comp.difference(comp_down).with_special(chi_c)
                up = self.decomp(comp_up, conn, depth + 1, excluded | comp_down.edges)
                if up is None:
                    continue

                for special in comp_down.specials:
                    if special & ~chi_c == 0:
                        children.append(special_leaf(special))
                node_c = FragmentNode(chi=chi_c, lam_edges=lam_c, children=children)
                if not replace_special_leaf(up, chi_c, node_c):
                    continue
                return up
        return None


class LogKBasicDecomposer(Decomposer):
    """Public decomposer running the basic log-k-decomp (Algorithm 1)."""

    name = "log-k-decomp-basic"

    def _run(self, context: SearchContext) -> HypertreeDecomposition | None:
        fragment = LogKBasicSearch(context).run()
        if fragment is None:
            return None
        return fragment_to_decomposition(context.host, fragment)
