"""det-k-decomp: the sequential, cache-based baseline (Gottlob & Samer 2008).

det-k-decomp constructs a hypertree decomposition strictly top-down: for the
current component it guesses a λ-label of at most ``k`` edges that covers the
interface to the parent bag, derives the (minimal, normal-form) bag χ, splits
the remainder into [χ]-components and recurses.  Failed and successful
subproblems are memoised, which is the feature that makes the algorithm fast
on small instances but — as the paper argues — hard to parallelise, because
the cache would have to be shared across threads.

The implementation works on extended subhypergraphs (edge sets plus special
edges), which is exactly the extension the paper's hybrid strategy requires:
log-k-decomp hands its small subproblems, including their special edges, to
this engine (Section 5.2 and Appendix D.2).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..decomp.components import ComponentSplitter
from ..decomp.decomposition import HypertreeDecomposition
from ..decomp.extended import BitComp, Comp, FragmentNode, full_bitcomp
from ..hypergraph.bitset import from_indices, indices_of
from .base import Decomposer, SearchContext
from .fragments import fragment_to_decomposition, special_leaf

__all__ = ["DetKSearch", "DetKDecomposer"]


class DetKSearch:
    """The recursive det-k-decomp search over extended subhypergraphs.

    The search is stateful only through its memoisation cache and the shared
    :class:`~repro.core.base.SearchContext`; it can therefore also be used as
    the "leaf engine" of the hybrid decomposer.
    """

    def __init__(
        self,
        context: SearchContext,
        use_cache: bool = True,
        label_pruning: bool = True,
        subedge_domination: bool = True,
    ) -> None:
        self.context = context
        self.use_cache = use_cache
        self.label_pruning = label_pruning
        self.subedge_domination = subedge_domination and label_pruning
        self._cache: dict[
            tuple[int, tuple[int, ...], int, int | None],
            FragmentNode | None,
        ] = {}

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    def search(
        self,
        comp: Comp | BitComp,
        conn: int,
        depth: int = 1,
        allowed: Iterable[int] | int | None = None,
    ) -> FragmentNode | None:
        """Return an HD fragment of width <= k for ⟨comp, conn⟩, or ``None``.

        ``comp`` may be the public :class:`Comp` or the packed
        :class:`BitComp`; ``allowed`` restricts the λ-label pool to the given
        edge indices — an iterable or an edge-index bitmask (``None`` = all
        host edges).  When the search runs as the leaf engine of the hybrid
        decomposer it *must* receive log-k-decomp's allowed set of the
        current subproblem: the fragment produced here can end up above a
        stitched separator node, and a λ-label using an edge of the component
        below the separator would put vertices of that component into ∪λ(u)
        without them being in χ(u) — breaking HD condition 4 on the stitched
        tree even though the fragment is locally consistent.
        """
        if isinstance(comp, Comp):
            comp = BitComp.from_comp(comp)
        if allowed is not None and not isinstance(allowed, int):
            allowed = from_indices(allowed)
        return self._search(comp, conn, depth, allowed)

    def _search(
        self, comp: BitComp, conn: int, depth: int, allowed: int | None
    ) -> FragmentNode | None:
        context = self.context
        context.stats.record_call(depth)
        context.check_timeout()

        fragment = self._base_case(comp, conn)
        if fragment is not _NO_BASE_CASE:
            return fragment

        key = (comp.edges, comp.specials, conn, allowed)
        if self.use_cache and key in self._cache:
            context.stats.cache_hits += 1
            cached = self._cache[key]
            return cached.copy() if cached is not None else None
        context.stats.cache_misses += 1

        result = self._expand(comp, conn, depth, allowed)
        if self.use_cache:
            self._cache[key] = result.copy() if result is not None else None
        return result

    def cache_size(self) -> int:
        """Number of memoised subproblems (used by tests and reports)."""
        return len(self._cache)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _base_case(self, comp: BitComp, conn: int) -> FragmentNode | None:
        host, k = self.context.host, self.context.k
        if not comp.specials and comp.edges.bit_count() <= k:
            lam = tuple(indices_of(comp.edges))
            chi = host.edges_to_mask(lam)
            return FragmentNode(chi=chi, lam_edges=lam)
        if not comp.edges and len(comp.specials) == 1:
            return special_leaf(comp.specials[0])
        if not comp.edges and len(comp.specials) > 1:
            # Only "old" edges could separate the remaining special edges,
            # which normal-form HDs never do (no progress would be made).
            return None
        return _NO_BASE_CASE  # type: ignore[return-value]

    def _expand(
        self, comp: BitComp, conn: int, depth: int, allowed: int | None
    ) -> FragmentNode | None:
        context = self.context
        host = context.host
        comp_vertices = comp.vertices(host)
        splitter = ComponentSplitter(host, comp, stats=context.stats)
        for lam in context.enumerator.labels(
            allowed=allowed,
            require_from=comp.edges,
            cover=conn,
            component_vertices=comp_vertices if self.subedge_domination else None,
            pruning=self.label_pruning,
        ):
            context.stats.labels_tried += 1
            context.check_timeout()
            lam_union = host.edges_to_mask(lam)
            chi = lam_union & comp_vertices
            if conn & ~chi:
                # conn ⊆ ∪λ is guaranteed by the enumerator; conn ⊆ V(comp)
                # by Claim A, so this only triggers for inconsistent input.
                continue
            sub_components = splitter.split_bits(chi)
            children: list[FragmentNode] = []
            failed = False
            for sub in sub_components:
                sub_conn = sub.vertices(host) & chi
                child = self._search(sub, sub_conn, depth + 1, allowed)
                if child is None:
                    failed = True
                    break
                children.append(child)
            if failed:
                continue
            for special in comp.specials:
                if special & ~chi == 0:
                    children.append(special_leaf(special))
            return FragmentNode(chi=chi, lam_edges=lam, children=children)
        return None


_NO_BASE_CASE = object()


class DetKDecomposer(Decomposer):
    """Public det-k-decomp decomposer (the ``NewDetKDecomp`` baseline)."""

    name = "det-k-decomp"

    def __init__(
        self,
        timeout: float | None = None,
        use_cache: bool = True,
        label_pruning: bool = True,
        subedge_domination: bool = True,
        **engine_options,
    ) -> None:
        super().__init__(timeout=timeout, **engine_options)
        self.use_cache = use_cache
        self.label_pruning = label_pruning
        self.subedge_domination = subedge_domination

    def _run(self, context: SearchContext) -> HypertreeDecomposition | None:
        search = DetKSearch(
            context,
            use_cache=self.use_cache,
            label_pruning=self.label_pruning,
            subedge_domination=self.subedge_domination,
        )
        fragment = search.search(full_bitcomp(context.host), conn=0)
        if fragment is None:
            return None
        return fragment_to_decomposition(context.host, fragment)
