"""The paper's contribution (log-k-decomp) and the competing algorithms."""

from .base import Decomposer, DecompositionResult, SearchContext, SearchStatistics
from .detk import DetKDecomposer, DetKSearch
from .fragments import fragment_to_decomposition, replace_special_leaf, special_leaf
from .ghd import BalancedGHDDecomposer
from .hybrid import (
    EdgeCountMetric,
    HybridDecomposer,
    SwitchMetric,
    WeightedCountMetric,
    make_metric,
)
from .logk import LogKDecomposer, LogKSearch
from .logk_basic import LogKBasicDecomposer, LogKBasicSearch
from .optimal import OptimalHDSolver, OptimalResult, exact_ghw, minimum_edge_cover_size
from .parallel import ParallelLogKDecomposer
from .width import (
    ALGORITHMS,
    decompose,
    hypertree_width,
    is_width_at_most,
    make_decomposer,
)

__all__ = [
    "Decomposer",
    "DecompositionResult",
    "SearchContext",
    "SearchStatistics",
    "DetKDecomposer",
    "DetKSearch",
    "fragment_to_decomposition",
    "replace_special_leaf",
    "special_leaf",
    "BalancedGHDDecomposer",
    "EdgeCountMetric",
    "HybridDecomposer",
    "SwitchMetric",
    "WeightedCountMetric",
    "make_metric",
    "LogKDecomposer",
    "LogKSearch",
    "LogKBasicDecomposer",
    "LogKBasicSearch",
    "OptimalHDSolver",
    "OptimalResult",
    "exact_ghw",
    "minimum_edge_cover_size",
    "ParallelLogKDecomposer",
    "ALGORITHMS",
    "decompose",
    "hypertree_width",
    "is_width_at_most",
    "make_decomposer",
]
