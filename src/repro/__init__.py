"""repro — fast parallel hypertree decompositions in logarithmic recursion depth.

A Python reproduction of the PODS 2022 paper by Gottlob, Lanzinger, Okulmus
and Pichler.  The package provides:

* :mod:`repro.hypergraph` — hypergraphs, parsing, query abstraction, generators,
* :mod:`repro.decomp` — (generalized) hypertree decompositions, extended
  subhypergraphs, balanced separators, validation, join trees,
* :mod:`repro.core` — the log-k-decomp algorithm (basic and optimised), the
  det-k-decomp baseline, the hybrid strategy, parallel execution, a GHD
  solver and an exact optimal-width solver,
* :mod:`repro.pipeline` — the staged decomposition engine every entry point
  routes through: width-preserving simplification with reversible lifting,
  the declarative algorithm registry, and a canonical-hash result cache,
* :mod:`repro.query` — HD-guided conjunctive query evaluation and CSP solving,
* :mod:`repro.bench` — the HyperBench-like corpus and the harness regenerating
  the paper's tables and figures.

Quickstart::

    from repro import Hypergraph, decompose, hypertree_width

    h = Hypergraph({"r1": ["x", "y"], "r2": ["y", "z"], "r3": ["z", "x"]})
    width, hd = hypertree_width(h)           # -> (2, <HypertreeDecomposition ...>)
    result = decompose(h, k=2)               # parametrised check
    print(hd.describe())
"""

from .exceptions import (
    DecompositionError,
    HypergraphError,
    ParseError,
    QueryError,
    ReproError,
    SolverError,
    TimeoutExceeded,
    ValidationError,
)
from .hypergraph import (
    Atom,
    ConjunctiveQuery,
    CSPInstance,
    Hypergraph,
    parse_hypergraph,
    read_hypergraph,
    write_hypergraph,
)
from .decomp import (
    Decomposition,
    DecompositionNode,
    GeneralizedHypertreeDecomposition,
    HypertreeDecomposition,
    JoinTree,
    join_tree_from_decomposition,
    validate_ghd,
    validate_hd,
)
from .pipeline import (
    DecompositionEngine,
    ResultCache,
    SimplificationTrace,
    default_engine,
    lift_decomposition,
    set_default_engine,
    simplify,
)
from .core import (
    ALGORITHMS,
    BalancedGHDDecomposer,
    Decomposer,
    DecompositionResult,
    DetKDecomposer,
    HybridDecomposer,
    LogKBasicDecomposer,
    LogKDecomposer,
    OptimalHDSolver,
    ParallelLogKDecomposer,
    decompose,
    hypertree_width,
    is_width_at_most,
    make_decomposer,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "HypergraphError",
    "ParseError",
    "DecompositionError",
    "ValidationError",
    "SolverError",
    "TimeoutExceeded",
    "QueryError",
    # hypergraph substrate
    "Hypergraph",
    "Atom",
    "ConjunctiveQuery",
    "CSPInstance",
    "parse_hypergraph",
    "read_hypergraph",
    "write_hypergraph",
    # decompositions
    "Decomposition",
    "DecompositionNode",
    "HypertreeDecomposition",
    "GeneralizedHypertreeDecomposition",
    "JoinTree",
    "join_tree_from_decomposition",
    "validate_hd",
    "validate_ghd",
    # algorithms
    "ALGORITHMS",
    "Decomposer",
    "DecompositionResult",
    "LogKDecomposer",
    "LogKBasicDecomposer",
    "DetKDecomposer",
    "HybridDecomposer",
    "ParallelLogKDecomposer",
    "BalancedGHDDecomposer",
    "OptimalHDSolver",
    "decompose",
    "hypertree_width",
    "is_width_at_most",
    "make_decomposer",
    # staged pipeline
    "DecompositionEngine",
    "ResultCache",
    "SimplificationTrace",
    "default_engine",
    "set_default_engine",
    "simplify",
    "lift_decomposition",
]
