"""repro — fast parallel hypertree decompositions in logarithmic recursion depth.

A Python reproduction of the PODS 2022 paper by Gottlob, Lanzinger, Okulmus
and Pichler.  The package provides:

* :mod:`repro.hypergraph` — hypergraphs, parsing, query abstraction, generators,
* :mod:`repro.decomp` — (generalized) hypertree decompositions, extended
  subhypergraphs, balanced separators, validation, join trees,
* :mod:`repro.core` — the log-k-decomp algorithm (basic and optimised), the
  det-k-decomp baseline, the hybrid strategy, parallel execution, a GHD
  solver and an exact optimal-width solver,
* :mod:`repro.pipeline` — the staged decomposition engine every entry point
  routes through: width-preserving simplification with reversible lifting,
  the declarative algorithm registry, and a canonical-hash result cache,
* :mod:`repro.catalog` — the durable decomposition catalog: a SQLite-backed
  L2 cache tier persisting validated certificates with provenance
  (``python -m repro.catalog`` maintains it),
* :mod:`repro.query` — HD-guided conjunctive query evaluation and CSP solving,
* :mod:`repro.service` — the concurrent serving layer: sharded caches,
  in-flight request deduplication and a prioritised worker pool
  (``python -m repro.serve --selftest`` smoke-tests it end to end),
* :mod:`repro.faults` — deterministic fault injection (named fault points,
  seeded schedules) and the resilience primitives behind the supervised
  recovery ladder: retry with backoff, the catalog circuit breaker, worker
  respawn and quarantine (``python -m repro.serve --selftest --chaos``
  exercises it),
* :mod:`repro.bench` — the HyperBench-like corpus and the harness regenerating
  the paper's tables and figures.

Quickstart (doctest-verified; see ``docs/api.md`` for the full reference):

    >>> from repro import Hypergraph, decompose, hypertree_width
    >>> h = Hypergraph({"r1": ["x", "y"], "r2": ["y", "z"], "r3": ["z", "x"]})
    >>> width, hd = hypertree_width(h)
    >>> width
    2
    >>> decompose(h, k=2).success            # decision problem for one width
    True
    >>> decompose(h, k=1).success            # a triangle has no width-1 HD
    False

The heavy layers (:mod:`repro.query`, :mod:`repro.service`) are imported
lazily: ``from repro import DecompositionService`` works, but merely
importing :mod:`repro` does not pull the query engine in.
"""

from .exceptions import (
    CatalogError,
    DecompositionError,
    HypergraphError,
    ParseError,
    QueryError,
    ReproError,
    ServiceError,
    SolverError,
    TimeoutExceeded,
    ValidationError,
)
from .hypergraph import (
    Atom,
    ConjunctiveQuery,
    CSPInstance,
    Hypergraph,
    parse_hypergraph,
    read_hypergraph,
    write_hypergraph,
)
from .decomp import (
    Decomposition,
    DecompositionNode,
    GeneralizedHypertreeDecomposition,
    HypertreeDecomposition,
    JoinTree,
    join_tree_from_decomposition,
    validate_ghd,
    validate_hd,
)
from .pipeline import (
    DecompositionEngine,
    ResultCache,
    SimplificationTrace,
    default_engine,
    lift_decomposition,
    set_default_engine,
    simplify,
)
from .core import (
    ALGORITHMS,
    BalancedGHDDecomposer,
    Decomposer,
    DecompositionResult,
    DetKDecomposer,
    HybridDecomposer,
    LogKBasicDecomposer,
    LogKDecomposer,
    OptimalHDSolver,
    ParallelLogKDecomposer,
    decompose,
    hypertree_width,
    is_width_at_most,
    make_decomposer,
)

__version__ = "1.0.0"

#: Lazily exported names (PEP 562): resolved on first attribute access so the
#: base import stays light while the serving/query facade remains one hop away.
_LAZY_EXPORTS = {
    "DecompositionService": ("repro.service", "DecompositionService"),
    "ServiceStats": ("repro.service", "ServiceStats"),
    "ServiceTicket": ("repro.service", "ServiceTicket"),
    "QueryEngine": ("repro.query", "QueryEngine"),
    "QueryWorkload": ("repro.query", "QueryWorkload"),
    "DecompositionCatalog": ("repro.catalog", "DecompositionCatalog"),
    "CatalogStats": ("repro.catalog", "CatalogStats"),
    "FaultRule": ("repro.faults", "FaultRule"),
    "FaultInjector": ("repro.faults", "FaultInjector"),
    "RetryPolicy": ("repro.faults", "RetryPolicy"),
    "CircuitBreaker": ("repro.faults", "CircuitBreaker"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "HypergraphError",
    "ParseError",
    "DecompositionError",
    "ValidationError",
    "SolverError",
    "TimeoutExceeded",
    "QueryError",
    "ServiceError",
    "CatalogError",
    # hypergraph substrate
    "Hypergraph",
    "Atom",
    "ConjunctiveQuery",
    "CSPInstance",
    "parse_hypergraph",
    "read_hypergraph",
    "write_hypergraph",
    # decompositions
    "Decomposition",
    "DecompositionNode",
    "HypertreeDecomposition",
    "GeneralizedHypertreeDecomposition",
    "JoinTree",
    "join_tree_from_decomposition",
    "validate_hd",
    "validate_ghd",
    # algorithms
    "ALGORITHMS",
    "Decomposer",
    "DecompositionResult",
    "LogKDecomposer",
    "LogKBasicDecomposer",
    "DetKDecomposer",
    "HybridDecomposer",
    "ParallelLogKDecomposer",
    "BalancedGHDDecomposer",
    "OptimalHDSolver",
    "decompose",
    "hypertree_width",
    "is_width_at_most",
    "make_decomposer",
    # staged pipeline
    "DecompositionEngine",
    "ResultCache",
    "SimplificationTrace",
    "default_engine",
    "set_default_engine",
    "simplify",
    "lift_decomposition",
    # serving + query facade (lazy)
    "DecompositionService",
    "ServiceStats",
    "ServiceTicket",
    "QueryEngine",
    "QueryWorkload",
    # durable catalog (lazy)
    "DecompositionCatalog",
    "CatalogStats",
    # fault injection + resilience (lazy)
    "FaultRule",
    "FaultInjector",
    "RetryPolicy",
    "CircuitBreaker",
]
