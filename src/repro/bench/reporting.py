"""Text rendering of tables and figure series."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .figures import ScalingSeries, ScatterPoint
from .tables import Table

__all__ = ["render_table", "render_scaling_series", "render_scatter", "render_depth_series"]


def render_table(table: Table) -> str:
    """Render a :class:`~repro.bench.tables.Table` as aligned plain text."""
    widths = [len(header) for header in table.headers]
    for row in table.rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [table.title, separator, format_row(table.headers), separator]
    lines.extend(format_row(row) for row in table.rows)
    lines.append(separator)
    return "\n".join(lines)


def render_scaling_series(series: Sequence[ScalingSeries]) -> str:
    """Render Figure 1 data: average runtimes per core count and speedups."""
    lines = ["Figure 1: average runtime (s) to find the optimal width vs. #cores"]
    for line in series:
        cores = ", ".join(str(c) for c in line.cores)
        times = ", ".join(f"{t:.3f}" for t in line.average_runtimes)
        speedups = ", ".join(f"{s:.2f}x" for s in line.speedup())
        lines.append(f"  {line.method}")
        lines.append(f"    cores:    [{cores}]")
        lines.append(f"    avg time: [{times}]")
        lines.append(f"    speedup:  [{speedups}]")
        lines.append(f"    unsolved runs: {line.timeouts}")
    return "\n".join(lines)


def render_scatter(scatter: Mapping[str, Sequence[ScatterPoint]]) -> str:
    """Render Figure 3 data: per-method solved/unsolved instance scatter."""
    lines = ["Figure 3: solved (+) / unsolved (-) instances by #edges x #vertices"]
    for method, points in scatter.items():
        solved = sum(1 for p in points if p.solved)
        lines.append(f"  {method}: {solved}/{len(points)} solved")
        for point in sorted(points, key=lambda p: (p.num_edges, p.num_vertices)):
            marker = "+" if point.solved else "-"
            lines.append(
                f"    {marker} |E|={point.num_edges:<4} |V|={point.num_vertices:<4} "
                f"{point.instance_name}"
            )
    return "\n".join(lines)


def render_depth_series(series: Mapping[str, Sequence[tuple[int, int]]]) -> str:
    """Render the recursion-depth growth series (Theorem 4.1)."""
    lines = ["Recursion depth vs. instance size (Theorem 4.1)"]
    for method, points in series.items():
        rendered = ", ".join(f"(|E|={m}, depth={d})" for m, d in points)
        lines.append(f"  {method}: {rendered}")
    return "\n".join(lines)
