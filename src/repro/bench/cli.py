"""Command-line entry point for regenerating the paper's experiments.

Usage (installed as ``repro-bench`` or via ``python -m repro.bench``)::

    repro-bench table1 --scale small --budget 2.0
    repro-bench table2
    repro-bench table3
    repro-bench table4
    repro-bench table5
    repro-bench figure1 --cores 1 2 3 4
    repro-bench figure3
    repro-bench depth
    repro-bench all
    repro-bench --list-algorithms

Each command prints the corresponding table or figure data to stdout.  The
defaults are sized for a laptop run; EXPERIMENTS.md records the output of a
full run next to the values reported in the paper.

Decomposers are built through :mod:`repro.pipeline.registry` and run through
the staged engine (simplification + caching); pass ``--no-simplify`` to
measure raw-search behaviour instead.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from ..pipeline.registry import registry
from .corpus import generate_corpus, hb_large
from .figures import build_figure1, build_figure3, build_recursion_depth_series
from .reporting import (
    render_depth_series,
    render_scaling_series,
    render_scatter,
    render_table,
)
from .runner import run_experiment
from .tables import build_table1, build_table2, build_table3, build_table4, build_table5

__all__ = ["main"]

EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure1",
    "figure3",
    "depth",
    "all",
)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of the log-k-decomp paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=EXPERIMENTS,
        help="which experiment to run",
    )
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--budget", type=float, default=2.0, help="seconds per (instance, k) run")
    parser.add_argument("--max-width", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cores", type=int, nargs="+", default=[1, 2, 3, 4])
    parser.add_argument("--quiet", action="store_true", help="suppress per-run progress output")
    parser.add_argument(
        "--list-algorithms",
        action="store_true",
        help="list the registered decomposition algorithms and exit",
    )
    parser.add_argument(
        "--no-simplify",
        action="store_true",
        help="bypass the staged engine (no simplification/caching) to measure raw search",
    )
    return parser


def _render_algorithm_listing() -> str:
    lines = ["Registered decomposition algorithms:"]
    for name, aliases, description in registry.describe():
        alias_note = f" (aliases: {', '.join(aliases)})" if aliases else ""
        lines.append(f"  {name:<12}{alias_note}")
        if description:
            lines.append(f"      {description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _parser()
    args = parser.parse_args(argv)
    if args.list_algorithms:
        print(_render_algorithm_listing())
        return 0
    if args.experiment is None:
        parser.error("an experiment is required (or use --list-algorithms)")
    simplify = not args.no_simplify
    instances = generate_corpus(scale=args.scale, seed=args.seed)
    progress = None if args.quiet else (lambda line: print(line, file=sys.stderr))

    wanted = EXPERIMENTS[:-1] if args.experiment == "all" else (args.experiment,)
    needs_grid = {"table1", "table3", "table4", "figure3"} & set(wanted)
    data = None
    if needs_grid:
        data = run_experiment(
            instances,
            time_budget=args.budget,
            max_width=args.max_width,
            simplify=simplify,
            progress=progress,
        )

    outputs: list[str] = []
    large = hb_large(instances)
    for experiment in wanted:
        if experiment == "table1":
            outputs.append(render_table(build_table1(data)))
        elif experiment == "table2":
            outputs.append(
                render_table(
                    build_table2(
                        large,
                        time_budget=args.budget,
                        max_width=args.max_width,
                        simplify=simplify,
                    )
                )
            )
        elif experiment == "table3":
            outputs.append(render_table(build_table3(data, max_width=args.max_width)))
        elif experiment == "table4":
            outputs.append(render_table(build_table4(data, max_width=args.max_width)))
        elif experiment == "table5":
            outputs.append(
                render_table(
                    build_table5(instances, short_budget=args.budget, max_width=args.max_width)
                )
            )
        elif experiment == "figure1":
            series = build_figure1(
                large,
                core_counts=args.cores,
                time_budget=max(args.budget * 10, 10.0),
                fixed_width=2,
                simplify=simplify,
            )
            outputs.append(render_scaling_series(series))
        elif experiment == "figure3":
            outputs.append(render_scatter(build_figure3(data)))
        elif experiment == "depth":
            outputs.append(
                render_depth_series(build_recursion_depth_series(simplify=simplify))
            )

    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
