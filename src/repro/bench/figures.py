"""Data series for the paper's figures (Figure 1 and Figure 3).

The harness produces the *data* behind the figures (series of points /
categorised scatter data) rather than rendered images, so no plotting
dependency is needed; :mod:`repro.bench.reporting` prints the series as text
tables.

* **Figure 1** — parallel scaling: for 1..n cores, the average time to find
  and verify the optimal width over the HB_large analogue, plus timeout
  counts, for log-k-decomp, its hybrid and the single-core det-k-decomp
  reference.
* **Figure 3** — solved/unsolved scatter per algorithm over #edges ×
  #vertices.
* **Recursion depth** (Theorem 4.1 claim) — maximum recursion depth of
  log-k-decomp vs det-k-decomp on growing instance families, showing the
  logarithmic vs. linear growth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..hypergraph import generators
from .corpus import Instance
from .runner import (
    DEFAULT_HYBRID_THRESHOLD,
    ExperimentData,
    RunRecord,
    bench_decomposer,
    run_parametrised,
)
from .stats import runtime_stats

__all__ = [
    "ScalingSeries",
    "ScatterPoint",
    "build_figure1",
    "build_figure3",
    "build_recursion_depth_series",
]


@dataclass
class ScalingSeries:
    """One line of Figure 1: average runtime per core count, plus timeouts."""

    method: str
    cores: list[int] = field(default_factory=list)
    average_runtimes: list[float] = field(default_factory=list)
    timeouts: int = 0

    def add(self, cores: int, average_runtime: float) -> None:
        self.cores.append(cores)
        self.average_runtimes.append(average_runtime)

    def speedup(self) -> list[float]:
        """Speedup relative to the single-core measurement."""
        if not self.average_runtimes or self.average_runtimes[0] == 0:
            return [1.0 for _ in self.average_runtimes]
        base = self.average_runtimes[0]
        return [base / value if value else float("inf") for value in self.average_runtimes]


@dataclass(frozen=True)
class ScatterPoint:
    """One point of Figure 3: an instance and whether the method solved it."""

    instance_name: str
    num_edges: int
    num_vertices: int
    solved: bool


def build_figure1(
    instances: Sequence[Instance],
    core_counts: Sequence[int] = (1, 2, 3, 4),
    time_budget: float = 2.0,
    max_width: int = 6,
    include_detk_reference: bool = True,
    hybrid: bool = True,
    fixed_width: int | None = None,
    simplify: bool = True,
) -> list[ScalingSeries]:
    """Measure parallel scaling of log-k-decomp (Figure 1).

    Average runtimes are taken only over instances that do not time out for
    any core count (the paper's convention, which prevents a shrinking
    timeout set from skewing the averages).

    Two protocols are supported.  With ``fixed_width=None`` (default) every
    instance's optimal width is found and verified by iterative deepening, as
    in the paper.  With ``fixed_width=k`` every instance is decided at that
    single width; using ``k = hw - 1`` (a refutation workload) isolates the
    separator search whose space the parallel backend partitions, which is the
    regime where scaling is measurable at this reproduction's small instance
    sizes.
    """
    if fixed_width is not None:
        return _build_figure1_fixed_width(
            instances,
            core_counts,
            time_budget,
            fixed_width,
            include_detk_reference,
            hybrid,
            simplify,
        )
    methods: list[tuple[str, bool]] = [("log-k", False)]
    if hybrid:
        methods.append(("log-k (Hybrid)", True))

    per_method_records: dict[str, dict[int, list[RunRecord]]] = {}
    for label, use_hybrid in methods:
        per_cores: dict[int, list[RunRecord]] = {}
        for cores in core_counts:
            def factory(timeout: float | None, _cores=cores, _hybrid=use_hybrid):
                return bench_decomposer(
                    "parallel",
                    timeout=timeout,
                    num_workers=_cores,
                    hybrid=_hybrid,
                    threshold=DEFAULT_HYBRID_THRESHOLD,
                    simplify=simplify,
                )

            per_cores[cores] = [
                run_parametrised(instance, label, factory, time_budget, max_width)
                for instance in instances
            ]
        per_method_records[label] = per_cores

    series: list[ScalingSeries] = []
    for label, per_cores in per_method_records.items():
        # Instances that never time out for this method.
        always_solved = set(instance.name for instance in instances)
        timeouts = 0
        for records in per_cores.values():
            for record in records:
                if not record.solved:
                    always_solved.discard(record.instance_name)
                    timeouts += 1
        line = ScalingSeries(method=label, timeouts=timeouts)
        for cores in core_counts:
            usable = [
                record
                for record in per_cores[cores]
                if record.instance_name in always_solved
            ]
            stats = runtime_stats(usable)
            line.add(cores, stats.avg)
        series.append(line)

    if include_detk_reference:
        detk_records = [
            run_parametrised(
                instance,
                "NewDetKDecomp",
                lambda t: bench_decomposer("detk", timeout=t, simplify=simplify),
                time_budget,
                max_width,
            )
            for instance in instances
        ]
        stats = runtime_stats([r for r in detk_records if r.solved])
        reference = ScalingSeries(
            method="NewDetKDecomp (1 core)",
            timeouts=sum(1 for r in detk_records if not r.solved),
        )
        for cores in core_counts:
            reference.add(cores, stats.avg)
        series.append(reference)
    return series


def _build_figure1_fixed_width(
    instances: Sequence[Instance],
    core_counts: Sequence[int],
    time_budget: float,
    width: int,
    include_detk_reference: bool,
    hybrid: bool,
    simplify: bool = True,
) -> list[ScalingSeries]:
    """Fixed-width variant of Figure 1 (see :func:`build_figure1`)."""
    methods: list[tuple[str, bool]] = [("log-k", False)]
    if hybrid:
        methods.append(("log-k (Hybrid)", True))

    series: list[ScalingSeries] = []
    for label, use_hybrid in methods:
        per_cores: dict[int, dict[str, tuple[bool, float]]] = {}
        for cores in core_counts:
            runs: dict[str, tuple[bool, float]] = {}
            for instance in instances:
                decomposer = bench_decomposer(
                    "parallel",
                    timeout=time_budget,
                    num_workers=cores,
                    hybrid=use_hybrid,
                    threshold=DEFAULT_HYBRID_THRESHOLD,
                    simplify=simplify,
                )
                result = decomposer.decompose(instance.hypergraph, width)
                runs[instance.name] = (not result.timed_out, result.elapsed)
            per_cores[cores] = runs
        decided_everywhere = {
            instance.name
            for instance in instances
            if all(per_cores[cores][instance.name][0] for cores in core_counts)
        }
        line = ScalingSeries(
            method=label,
            timeouts=sum(
                1
                for cores in core_counts
                for instance in instances
                if not per_cores[cores][instance.name][0]
            ),
        )
        for cores in core_counts:
            usable = [
                per_cores[cores][name][1] for name in decided_everywhere
            ]
            line.add(cores, sum(usable) / len(usable) if usable else 0.0)
        series.append(line)

    if include_detk_reference:
        times = []
        timeouts = 0
        for instance in instances:
            result = bench_decomposer(
                "detk", timeout=time_budget, simplify=simplify
            ).decompose(instance.hypergraph, width)
            if result.timed_out:
                timeouts += 1
            else:
                times.append(result.elapsed)
        average = sum(times) / len(times) if times else time_budget
        reference = ScalingSeries(method="NewDetKDecomp (1 core)", timeouts=timeouts)
        for cores in core_counts:
            reference.add(cores, average)
        series.append(reference)
    return series


def build_figure3(data: ExperimentData) -> dict[str, list[ScatterPoint]]:
    """Scatter data of solved/unsolved instances per method (Figure 3)."""
    scatter: dict[str, list[ScatterPoint]] = {}
    for method in data.methods():
        points = [
            ScatterPoint(
                instance_name=record.instance_name,
                num_edges=record.num_edges,
                num_vertices=record.num_vertices,
                solved=record.solved,
            )
            for record in data.records_for(method)
        ]
        scatter[method] = points
    return scatter


def build_recursion_depth_series(
    sizes: Sequence[int] = (8, 16, 32, 64),
    k: int = 2,
    family: str = "cycle",
    simplify: bool = True,
) -> dict[str, list[tuple[int, int]]]:
    """Recursion depth of log-k-decomp vs det-k-decomp on a growing family.

    Returns, per method, a list of (number of edges, max recursion depth)
    pairs.  log-k-decomp grows logarithmically (Theorem 4.1) while the strict
    top-down det-k-decomp grows linearly on path-like structures.
    """
    hypergraphs = generators.family(family, list(sizes))
    result: dict[str, list[tuple[int, int]]] = {"log-k-decomp": [], "det-k-decomp": []}
    for hypergraph in hypergraphs:
        logk = bench_decomposer("logk", simplify=simplify).decompose(hypergraph, k)
        detk = bench_decomposer("detk", simplify=simplify).decompose(hypergraph, k)
        result["log-k-decomp"].append(
            (hypergraph.num_edges, logk.statistics.max_recursion_depth)
        )
        result["det-k-decomp"].append(
            (hypergraph.num_edges, detk.statistics.max_recursion_depth)
        )
    return result
