"""HyperBench-like benchmark corpus.

HyperBench [Fischl et al. 2021] collects 3648 hypergraphs underlying CQs and
CSPs from industry and the literature.  The benchmark itself cannot be
downloaded in this environment, so this module generates a deterministic
synthetic corpus with the same *taxonomy* the paper's evaluation groups
instances by:

* origin: ``Application`` (query-shaped instances: chains, stars, snowflakes,
  random join queries, cyclic queries) vs. ``Synthetic`` (random CSPs, grids,
  cliques, hypercycles, chordal cycles);
* size group by number of edges: ``|E| <= 10``, ``10 < |E| <= 50``,
  ``50 < |E| <= 75``, ``75 < |E| <= 100`` and ``|E| > 100`` (the last group
  only occurs for Synthetic instances, exactly as in Table 1).

Instance difficulty spans the same qualitative range: many small acyclic or
width-2 instances, medium instances of width 2-4, and a tail of instances
whose width exceeds the widths the harness searches (these time out or are
proven unsolvable within the width limit, which is the behaviour Table 1 and
Figure 3 rely on).

The corpus is seeded and therefore fully reproducible; three scales are
provided so that unit tests (``tiny``), the pytest benchmarks (``small``) and
manual runs (``medium``) can trade coverage for runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..exceptions import SolverError
from ..hypergraph import Hypergraph, generators

__all__ = [
    "Instance",
    "SIZE_GROUPS",
    "size_group",
    "generate_corpus",
    "corpus_summary",
    "hb_large",
]

#: Size groups in the order used by Table 1 of the paper.
SIZE_GROUPS = (
    "|E| > 100",
    "75 < |E| <= 100",
    "50 < |E| <= 75",
    "10 < |E| <= 50",
    "|E| <= 10",
)


def size_group(num_edges: int) -> str:
    """The Table-1 size group of an instance with ``num_edges`` edges."""
    if num_edges > 100:
        return SIZE_GROUPS[0]
    if num_edges > 75:
        return SIZE_GROUPS[1]
    if num_edges > 50:
        return SIZE_GROUPS[2]
    if num_edges > 10:
        return SIZE_GROUPS[3]
    return SIZE_GROUPS[4]


@dataclass(frozen=True)
class Instance:
    """One benchmark instance: a named hypergraph with its origin category."""

    name: str
    origin: str  # "Application" or "Synthetic"
    hypergraph: Hypergraph
    family: str = ""

    @property
    def num_edges(self) -> int:
        return self.hypergraph.num_edges

    @property
    def num_vertices(self) -> int:
        return self.hypergraph.num_vertices

    @property
    def group(self) -> str:
        """The Table-1 size group."""
        return size_group(self.num_edges)


@dataclass(frozen=True)
class _Scale:
    """Counts controlling how many instances of each family are generated."""

    small_queries: int = 6
    medium_queries: int = 4
    large_queries: int = 2
    small_csps: int = 5
    medium_csps: int = 3
    large_csps: int = 2
    huge_csps: int = 1
    cycles: Sequence[int] = (4, 6, 8)
    grids: Sequence[tuple[int, int]] = ((2, 3), (3, 3))
    cliques: Sequence[int] = (4, 5)


_SCALES = {
    "tiny": _Scale(
        small_queries=2,
        medium_queries=1,
        large_queries=1,
        small_csps=2,
        medium_csps=1,
        large_csps=1,
        huge_csps=1,
        cycles=(4, 6),
        grids=((2, 3),),
        cliques=(4,),
    ),
    "small": _Scale(),
    "medium": _Scale(
        small_queries=12,
        medium_queries=8,
        large_queries=4,
        small_csps=10,
        medium_csps=6,
        large_csps=4,
        huge_csps=2,
        cycles=(4, 6, 8, 10, 12),
        grids=((2, 3), (3, 3), (3, 4)),
        cliques=(4, 5, 6),
    ),
}


def generate_corpus(scale: str = "small", seed: int = 0) -> list[Instance]:
    """Generate the deterministic HyperBench-like corpus at the given scale."""
    if scale not in _SCALES:
        raise SolverError(f"unknown corpus scale {scale!r}; known: {sorted(_SCALES)}")
    spec = _SCALES[scale]
    instances: list[Instance] = []
    instances.extend(_application_instances(spec, seed))
    instances.extend(_synthetic_instances(spec, seed))
    return instances


# --------------------------------------------------------------------------- #
# application-style instances (CQ workloads)
# --------------------------------------------------------------------------- #
def _application_instances(spec: _Scale, seed: int) -> list[Instance]:
    instances: list[Instance] = []

    # Small acyclic query shapes (the large |E| <= 10 group of HyperBench).
    for i in range(spec.small_queries):
        instances.append(
            Instance(f"app-path-{i}", "Application", generators.path(3 + i), "path")
        )
        instances.append(
            Instance(f"app-star-{i}", "Application", generators.star(3 + i), "star")
        )
        instances.append(
            Instance(
                f"app-chain-{i}",
                "Application",
                generators.chain_query(3 + i, arity=3),
                "chain",
            )
        )

    # Small cyclic queries (width 2).
    for i, length in enumerate((3, 5, 7, 9)[: max(2, spec.small_queries // 2)]):
        instances.append(
            Instance(f"app-cycle-{i}", "Application", generators.cycle(length), "cycle")
        )
        instances.append(
            Instance(
                f"app-triangles-{i}",
                "Application",
                generators.triangle_cascade(2 + i),
                "triangles",
            )
        )

    # Medium join workloads, 10 < |E| <= 50.
    for i in range(spec.medium_queries):
        instances.append(
            Instance(
                f"app-snowflake-{i}",
                "Application",
                generators.snowflake_query(4 + i, branch_length=3),
                "snowflake",
            )
        )
        instances.append(
            Instance(
                f"app-query-m-{i}",
                "Application",
                generators.random_query(
                    18 + 4 * i, 14 + 3 * i, seed=seed + i, acyclic_bias=0.65
                ),
                "random-query",
            )
        )
        instances.append(
            Instance(
                f"app-cycle-m-{i}",
                "Application",
                generators.with_chords(
                    generators.cycle(14 + 4 * i), chords=2 + i, seed=seed + i
                ),
                "chordal-cycle",
            )
        )

    # Large join workloads, 50 < |E| <= 100.  The chordal cycles use fixed
    # (length, chords, chord-seed) triples whose hypertree widths (2 or 3)
    # were verified with the exact solver; the width-3 ones are precisely the
    # instances on which strict top-down search (det-k-decomp) struggles to
    # refute width 2 within a small budget while balanced separation does not
    # — the behaviour Table 1 of the paper hinges on.
    large_cycles = [
        (60, 6, 7),
        (78, 6, 9),
        (64, 7, 2),
        (72, 7, 3),
        (85, 7, 12),
        (92, 6, 2),
    ][: 3 * spec.large_queries]
    for i, (length, chords, chord_seed) in enumerate(large_cycles):
        instances.append(
            Instance(
                f"app-cycle-l-{i}",
                "Application",
                generators.with_chords(
                    generators.cycle(length), chords=chords, seed=chord_seed
                ),
                "chordal-cycle",
            )
        )
    for i in range(spec.large_queries):
        instances.append(
            Instance(
                f"app-query-l-{i}",
                "Application",
                generators.random_query(
                    55 + 10 * i, 40 + 8 * i, seed=seed + 100 + i, acyclic_bias=0.75
                ),
                "random-query",
            )
        )
        instances.append(
            Instance(
                f"app-snowflake-l-{i}",
                "Application",
                generators.snowflake_query(8 + 2 * i, branch_length=7),
                "snowflake",
            )
        )
    return instances


# --------------------------------------------------------------------------- #
# synthetic instances (CSP-style)
# --------------------------------------------------------------------------- #
def _synthetic_instances(spec: _Scale, seed: int) -> list[Instance]:
    instances: list[Instance] = []

    for i in range(spec.small_csps):
        instances.append(
            Instance(
                f"syn-csp-s-{i}",
                "Synthetic",
                generators.random_csp(8 + i, 6 + i, arity=3, seed=seed + i),
                "random-csp",
            )
        )

    for i, length in enumerate(spec.cycles):
        instances.append(
            Instance(
                f"syn-cycle-{i}", "Synthetic", generators.cycle(length), "cycle"
            )
        )
        instances.append(
            Instance(
                f"syn-hypercycle-{i}",
                "Synthetic",
                generators.hypercycle(length, arity=3),
                "hypercycle",
            )
        )

    for i, (rows, cols) in enumerate(spec.grids):
        instances.append(
            Instance(f"syn-grid-{i}", "Synthetic", generators.grid(rows, cols), "grid")
        )

    for i, size in enumerate(spec.cliques):
        instances.append(
            Instance(f"syn-clique-{i}", "Synthetic", generators.clique(size), "clique")
        )

    # Medium random CSPs, 10 < |E| <= 50.
    for i in range(spec.medium_csps):
        instances.append(
            Instance(
                f"syn-csp-m-{i}",
                "Synthetic",
                generators.random_csp(20 + 4 * i, 25 + 6 * i, arity=3, seed=seed + 50 + i),
                "random-csp",
            )
        )

    # Large random CSPs, 50 < |E| <= 100 (these are the hard instances).
    for i in range(spec.large_csps):
        instances.append(
            Instance(
                f"syn-csp-l-{i}",
                "Synthetic",
                generators.random_csp(45 + 8 * i, 60 + 15 * i, arity=3, seed=seed + 80 + i),
                "random-csp",
            )
        )
        instances.append(
            Instance(
                f"syn-grid-l-{i}",
                "Synthetic",
                generators.grid(5 + i, 7 + i),
                "grid",
            )
        )

    # Very large instances, |E| > 100 (only in the Synthetic category).  As in
    # HyperBench, the group mixes large-but-benign structures (width 2, fixed
    # calibrated chordal cycles) with genuinely hard ones (dense random CSPs
    # whose width exceeds the searched range).
    huge_cycles = [
        (105, 3, 4),
        (118, 4, 6),
        (130, 5, 8),
        (142, 4, 10),
    ][: 2 * spec.huge_csps]
    for i, (length, chords, chord_seed) in enumerate(huge_cycles):
        instances.append(
            Instance(
                f"syn-cycle-xl-{i}",
                "Synthetic",
                generators.with_chords(
                    generators.cycle(length), chords=chords, seed=chord_seed
                ),
                "chordal-cycle",
            )
        )
    for i in range(spec.huge_csps):
        instances.append(
            Instance(
                f"syn-csp-xl-{i}",
                "Synthetic",
                generators.random_csp(70 + 10 * i, 105 + 20 * i, arity=3, seed=seed + 120 + i),
                "random-csp",
            )
        )
    return instances


def hb_large(
    instances: Iterable[Instance],
    min_edges: int = 20,
    min_vertices: int = 0,
) -> list[Instance]:
    """The HB_large analogue: larger instances used for the scaling and hybrid studies.

    The paper restricts HB_large to instances with more than 50 edges and
    vertices of width at most 6; the defaults here are scaled down in the same
    spirit (the corpus itself is smaller) and can be overridden.
    """
    return [
        inst
        for inst in instances
        if inst.num_edges > min_edges and inst.num_vertices > min_vertices
    ]


def corpus_summary(instances: Iterable[Instance]) -> dict[tuple[str, str], int]:
    """Instance counts per (origin, size group) — the 'Instances in Group' column."""
    counts: dict[tuple[str, str], int] = {}
    for inst in instances:
        key = (inst.origin, inst.group)
        counts[key] = counts.get(key, 0) + 1
    return counts
