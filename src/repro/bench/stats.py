"""Aggregation of run records into the statistics the paper's tables report."""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from .runner import RunRecord

__all__ = [
    "RuntimeStats",
    "runtime_stats",
    "solved_count",
    "group_records",
    "counter_totals",
]


@dataclass(frozen=True)
class RuntimeStats:
    """#solved plus avg/max/stdev of runtimes over the solved instances."""

    solved: int
    total: int
    avg: float
    max: float
    stdev: float

    def as_row(self) -> list[str]:
        """Render as the four Table-1 columns (#solved, avg, max, stdev)."""
        return [
            str(self.solved),
            f"{self.avg:.2f}",
            f"{self.max:.2f}",
            f"{self.stdev:.2f}",
        ]


def solved_count(records: Iterable[RunRecord]) -> int:
    """Number of records whose instance was solved optimally."""
    return sum(1 for record in records if record.solved)


def runtime_stats(records: Sequence[RunRecord]) -> RuntimeStats:
    """Compute the Table-1 statistics over a set of records.

    Runtimes are averaged only over *solved* instances; timed-out instances
    contribute to the totals but not to the runtime statistics — exactly the
    convention stated in Section 5.1 of the paper.
    """
    solved_times = [record.runtime for record in records if record.solved]
    if not solved_times:
        return RuntimeStats(solved=0, total=len(records), avg=0.0, max=0.0, stdev=0.0)
    avg = sum(solved_times) / len(solved_times)
    spread = 0.0
    if len(solved_times) > 1:
        spread = math.sqrt(
            sum((t - avg) ** 2 for t in solved_times) / (len(solved_times) - 1)
        )
    return RuntimeStats(
        solved=len(solved_times),
        total=len(records),
        avg=avg,
        max=max(solved_times),
        stdev=spread,
    )


def counter_totals(records: Iterable[RunRecord]) -> dict[str, int]:
    """Sum the per-record search-kernel counters over a set of records.

    Aggregation helper for experiment reports over :class:`RunRecord` grids
    (labels tried, branches pruned, domination skips, splitter memo traffic);
    the ablation bench reads the same counters per run directly from
    ``result.statistics``.
    """
    totals: dict[str, int] = {}
    for record in records:
        for key, value in record.search_counters.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def group_records(
    records: Iterable[RunRecord],
) -> dict[tuple[str, str], list[RunRecord]]:
    """Group records by (origin, size group) — the row structure of Table 1."""
    grouped: dict[tuple[str, str], list[RunRecord]] = {}
    for record in records:
        grouped.setdefault((record.origin, record.group), []).append(record)
    return grouped
