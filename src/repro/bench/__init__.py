"""Benchmark harness: HyperBench-like corpus, runner, tables and figures."""

from .corpus import Instance, SIZE_GROUPS, corpus_summary, generate_corpus, hb_large, size_group
from .runner import (
    DecomposerSpec,
    ExperimentData,
    RunRecord,
    default_method_specs,
    run_experiment,
    run_optimal_solver,
    run_parametrised,
)
from .stats import RuntimeStats, group_records, runtime_stats, solved_count
from .tables import Table, build_table1, build_table2, build_table3, build_table4, build_table5
from .figures import (
    ScalingSeries,
    ScatterPoint,
    build_figure1,
    build_figure3,
    build_recursion_depth_series,
)
from .reporting import (
    render_depth_series,
    render_scaling_series,
    render_scatter,
    render_table,
)

__all__ = [
    "Instance",
    "SIZE_GROUPS",
    "corpus_summary",
    "generate_corpus",
    "hb_large",
    "size_group",
    "DecomposerSpec",
    "ExperimentData",
    "RunRecord",
    "default_method_specs",
    "run_experiment",
    "run_optimal_solver",
    "run_parametrised",
    "RuntimeStats",
    "group_records",
    "runtime_stats",
    "solved_count",
    "Table",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_table5",
    "ScalingSeries",
    "ScatterPoint",
    "build_figure1",
    "build_figure3",
    "build_recursion_depth_series",
    "render_depth_series",
    "render_scaling_series",
    "render_scatter",
    "render_table",
]
