"""Builders for the paper's tables (Tables 1-5).

Every builder consumes :class:`~repro.bench.runner.ExperimentData` (or runs a
dedicated sweep) and returns a :class:`Table`: a title, column headers and
string rows, rendered by :mod:`repro.bench.reporting`.  The structure of each
table follows the paper:

* **Table 1** — #solved and runtime statistics per method, grouped by origin
  and size group.
* **Table 2** — the hybridisation study on the HB_large analogue: the two
  switching metrics at several thresholds, against the det-k and optimal
  baselines.
* **Table 3** — instances solved per (optimal) width, including the Virtual
  Best method.
* **Table 4** — for how many instances the question ``hw <= w`` is decided.
* **Table 5** — the optimal solver re-run with an extended time budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from .corpus import SIZE_GROUPS, Instance, corpus_summary
from .runner import (
    bench_decomposer,
    ExperimentData,
    RunRecord,
    run_optimal_solver,
    run_parametrised,
)
from .stats import group_records, runtime_stats

__all__ = [
    "Table",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_table5",
]


@dataclass
class Table:
    """A rendered-ready table: title, headers and rows of strings."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, row: Sequence[str]) -> None:
        self.rows.append([str(cell) for cell in row])


# --------------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------------- #
def build_table1(data: ExperimentData) -> Table:
    """Comparison of the methods: #solved and runtimes per origin/size group."""
    methods = data.methods()
    headers = ["Origin", "Size group", "Instances"]
    for method in methods:
        headers.extend([f"{method} #solved", "avg", "max", "stdev"])
    table = Table("Table 1: solved instances and runtimes (seconds)", headers)

    counts = corpus_summary(data.instances)
    grouped_per_method = {m: group_records(data.records_for(m)) for m in methods}

    for origin in ("Application", "Synthetic"):
        for group in SIZE_GROUPS:
            key = (origin, group)
            if counts.get(key, 0) == 0:
                continue
            row: list[str] = [origin, group, str(counts[key])]
            for method in methods:
                stats = runtime_stats(grouped_per_method[method].get(key, []))
                row.extend(stats.as_row())
            table.add_row(row)

    total_row: list[str] = ["Total", "-", str(len(data.instances))]
    for method in methods:
        stats = runtime_stats(data.records_for(method))
        total_row.extend(stats.as_row())
    table.add_row(total_row)
    return table


# --------------------------------------------------------------------------- #
# Table 2
# --------------------------------------------------------------------------- #
def build_table2(
    instances: Sequence[Instance],
    weighted_thresholds: Sequence[float] = (20.0, 40.0, 80.0),
    edge_thresholds: Sequence[float] = (10.0, 20.0, 40.0),
    time_budget: float = 2.0,
    max_width: int = 6,
    include_baselines: bool = True,
    simplify: bool = True,
) -> Table:
    """The hybridisation-metric study (Table 2) on the HB_large analogue.

    The default thresholds are the paper's thresholds (200/400/600 for
    WeightedCount, 20/40/80 for EdgeCount) scaled down by roughly the same
    factor as the corpus' instance sizes; pass the paper's values explicitly
    to run the original grid.
    """
    table = Table(
        "Table 2: hybrid metrics on HB_large",
        ["Method", "Threshold", "Solved", "Av. runtime (sec.)"],
    )

    def run_method(label: str, factory) -> list[RunRecord]:
        return [
            run_parametrised(instance, label, factory, time_budget, max_width)
            for instance in instances
        ]

    for threshold in weighted_thresholds:
        label = "WeightedCount"
        records = run_method(
            label,
            lambda t, thr=threshold: bench_decomposer(
                "hybrid",
                timeout=t,
                metric="WeightedCount",
                threshold=thr,
                simplify=simplify,
            ),
        )
        stats = runtime_stats(records)
        table.add_row([label, f"{threshold:g}", stats.solved, f"{stats.avg:.2f}"])

    for threshold in edge_thresholds:
        label = "EdgeCount"
        records = run_method(
            label,
            lambda t, thr=threshold: bench_decomposer(
                "hybrid",
                timeout=t,
                metric="EdgeCount",
                threshold=thr,
                simplify=simplify,
            ),
        )
        stats = runtime_stats(records)
        table.add_row([label, f"{threshold:g}", stats.solved, f"{stats.avg:.2f}"])

    if include_baselines:
        detk_records = run_method(
            "NewDetKDecomp",
            lambda t: bench_decomposer("detk", timeout=t, simplify=simplify),
        )
        stats = runtime_stats(detk_records)
        table.add_row(["NewDetKDecomp", "-", stats.solved, f"{stats.avg:.2f}"])

        optimal_records = [
            run_optimal_solver(instance, "HtdLEO", time_budget * 2, max_width)
            for instance in instances
        ]
        stats = runtime_stats(optimal_records)
        table.add_row(["HtdLEO", "-", stats.solved, f"{stats.avg:.2f}"])
    return table


# --------------------------------------------------------------------------- #
# Table 3
# --------------------------------------------------------------------------- #
def build_table3(data: ExperimentData, max_width: int = 6) -> Table:
    """Instances solved per optimal width, with the Virtual Best aggregate."""
    methods = data.methods()
    table = Table(
        "Table 3: instances solved per width",
        ["Width", "Virtual Best"] + methods,
    )
    # The virtual best solves an instance at width w if any method solved it
    # and determined that width.
    per_instance_best: dict[str, int] = {}
    for method in methods:
        for record in data.records_for(method):
            if record.solved and record.optimal_width is not None:
                previous = per_instance_best.get(record.instance_name)
                if previous is None or record.optimal_width < previous:
                    per_instance_best[record.instance_name] = record.optimal_width

    for width in range(1, max_width + 1):
        virtual_best = sum(1 for w in per_instance_best.values() if w == width)
        row = [str(width), str(virtual_best)]
        for method in methods:
            solved_here = sum(
                1
                for record in data.records_for(method)
                if record.solved and record.optimal_width == width
            )
            row.append(str(solved_here))
        table.add_row(row)
    return table


# --------------------------------------------------------------------------- #
# Table 4
# --------------------------------------------------------------------------- #
def build_table4(data: ExperimentData, max_width: int = 6) -> Table:
    """For how many instances each method decides ``hw <= w`` (w = 1..max)."""
    methods = data.methods()
    table = Table(
        "Table 4: upper-bound questions decided (hw <= w)",
        ["Problem", "Virtual Best"] + methods,
    )
    for width in range(1, max_width + 1):
        decided_by: dict[str, set[str]] = {m: set() for m in methods}
        for method in methods:
            for record in data.records_for(method):
                if record.decides_width_at_most(width):
                    decided_by[method].add(record.instance_name)
        virtual = set().union(*decided_by.values()) if methods else set()
        row = [f"hw <= {width}", str(len(virtual))]
        row.extend(str(len(decided_by[m])) for m in methods)
        table.add_row(row)
    return table


# --------------------------------------------------------------------------- #
# Table 5
# --------------------------------------------------------------------------- #
def build_table5(
    instances: Sequence[Instance],
    short_budget: float = 2.0,
    extension_factor: float = 10.0,
    max_width: int = 6,
) -> Table:
    """The optimal solver with an extended budget (Table 5): solved and delta."""
    table = Table(
        "Table 5: HtdLEO-style solver with extended timeout",
        ["Origin", "Size group", "Instances", "#solved (short)", "#solved (long)", "Change"],
    )
    short_records = [
        run_optimal_solver(instance, "HtdLEO", short_budget, max_width)
        for instance in instances
    ]
    long_records = [
        run_optimal_solver(
            instance, "HtdLEO-long", short_budget * extension_factor, max_width
        )
        for instance in instances
    ]
    counts = corpus_summary(instances)
    short_by_group = group_records(short_records)
    long_by_group = group_records(long_records)
    total_short = 0
    total_long = 0
    for origin in ("Application", "Synthetic"):
        for group in SIZE_GROUPS:
            key = (origin, group)
            if counts.get(key, 0) == 0:
                continue
            short_solved = sum(1 for r in short_by_group.get(key, []) if r.solved)
            long_solved = sum(1 for r in long_by_group.get(key, []) if r.solved)
            total_short += short_solved
            total_long += long_solved
            delta = long_solved - short_solved
            table.add_row(
                [
                    origin,
                    group,
                    str(counts[key]),
                    str(short_solved),
                    str(long_solved),
                    f"+{delta}" if delta > 0 else ("±0" if delta == 0 else str(delta)),
                ]
            )
    delta_total = total_long - total_short
    table.add_row(
        [
            "Total",
            "-",
            str(len(list(instances))),
            str(total_short),
            str(total_long),
            f"+{delta_total}" if delta_total > 0 else ("±0" if delta_total == 0 else str(delta_total)),
        ]
    )
    return table
