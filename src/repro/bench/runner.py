"""Execution harness: run (algorithm, instance) grids with time budgets.

The harness mirrors the paper's experimental protocol (Section 5.1):

* the parametrised algorithms (det-k-decomp, log-k-decomp and its hybrid) are
  run for increasing width ``k`` with a per-run time budget; an instance
  counts as *solved* when an HD of some width ``k`` was found **and** all
  smaller widths were refuted within the budget (i.e. the optimum is proven);
* the HtdLEO-style optimal solver takes no width parameter and either returns
  the optimum within its budget or times out;
* running times are reported only over solved instances (timeouts excluded),
  exactly as the paper's Table 1 caption specifies.

Budgets in this reproduction are seconds rather than the paper's one hour —
the corpus and the substrate are smaller — but the bookkeeping (what counts
as solved, which decisions are recorded for Table 4) is identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence

from ..core.base import Decomposer
from ..core.optimal import OptimalHDSolver
from ..pipeline.engine import DecompositionEngine
from ..pipeline.registry import registry
from .corpus import Instance

__all__ = [
    "RunRecord",
    "ExperimentData",
    "DecomposerSpec",
    "bench_decomposer",
    "default_method_specs",
    "run_parametrised",
    "run_optimal_solver",
    "run_experiment",
]


def bench_decomposer(name: str, *, simplify: bool = True, **options) -> Decomposer:
    """Build a decomposer for harness *measurements*.

    With ``simplify=True`` the decomposer runs the staged engine, but with a
    private cache-less engine: preprocessing is part of the measurement while
    result caching is disabled, so identically-configured runs in later
    tables of the same process measure real search work instead of hitting
    the process-wide default cache.  ``simplify=False`` bypasses the engine
    entirely (raw search).
    """
    if not simplify:
        return registry.build(name, use_engine=False, **options)
    return registry.build(name, engine=DecompositionEngine(cache=None), **options)

DecomposerFactory = Callable[[float | None], Decomposer]


@dataclass(frozen=True)
class DecomposerSpec:
    """A named decomposition method: a label plus a factory taking a timeout."""

    label: str
    factory: DecomposerFactory
    parametrised: bool = True


#: Default hybridisation threshold used by the harness.  The paper's best
#: threshold (WeightedCount 400) is calibrated to HyperBench instance sizes;
#: the synthetic corpus here is roughly an order of magnitude smaller, so the
#: threshold is scaled down accordingly (see EXPERIMENTS.md).
DEFAULT_HYBRID_THRESHOLD = 40.0


def default_method_specs(
    num_workers: int = 1,
    hybrid_threshold: float = DEFAULT_HYBRID_THRESHOLD,
    simplify: bool = True,
) -> list[DecomposerSpec]:
    """The three methods compared in Table 1 of the paper.

    All decomposers are built through the algorithm registry; ``simplify=False``
    disables the staged engine (``use_engine=False``) so the harness measures
    raw-search behaviour, as the paper's figures do.
    """
    return [
        DecomposerSpec(
            "NewDetKDecomp",
            lambda t: bench_decomposer("detk", timeout=t, simplify=simplify),
        ),
        DecomposerSpec("HtdLEO", _optimal_factory, parametrised=False),
        DecomposerSpec(
            "log-k-decomp Hybrid",
            lambda t: _hybrid_factory(t, num_workers, hybrid_threshold, simplify),
        ),
    ]


def _optimal_factory(timeout: float | None) -> Decomposer:  # pragma: no cover - trivial
    raise RuntimeError("the optimal solver is run through run_optimal_solver")


def _hybrid_factory(
    timeout: float | None, num_workers: int, threshold: float, simplify: bool = True
) -> Decomposer:
    if num_workers > 1:
        return bench_decomposer(
            "parallel",
            timeout=timeout,
            num_workers=num_workers,
            hybrid=True,
            threshold=threshold,
            simplify=simplify,
        )
    return bench_decomposer(
        "hybrid", timeout=timeout, threshold=threshold, simplify=simplify
    )


@dataclass
class RunRecord:
    """Outcome of resolving one instance with one method."""

    instance_name: str
    origin: str
    group: str
    num_edges: int
    num_vertices: int
    method: str
    solved: bool
    optimal_width: int | None
    runtime: float
    timed_out: bool
    decisions: dict[int, bool] = field(default_factory=dict)
    max_recursion_depth: int = 0
    #: Accumulated search-kernel counters (labels tried, branches pruned,
    #: domination skips, splitter memo traffic) over all (k) runs of this
    #: record; see :meth:`repro.core.base.SearchStatistics.search_counters`.
    search_counters: dict[str, int] = field(default_factory=dict)

    def decides_width_at_most(self, width: int) -> bool:
        """True iff this run decided the question ``hw <= width``.

        A positive decision for some width ``k0 <= width`` or an explicit
        negative/positive decision at ``width`` both qualify (finding an HD of
        width ``k0`` proves ``hw <= width`` for every ``width >= k0``).
        """
        if width in self.decisions:
            return True
        return any(k <= width and answer for k, answer in self.decisions.items())


@dataclass
class ExperimentData:
    """All run records of an experiment, grouped per method."""

    instances: list[Instance]
    records: dict[str, list[RunRecord]] = field(default_factory=dict)

    def add(self, record: RunRecord) -> None:
        self.records.setdefault(record.method, []).append(record)

    def methods(self) -> list[str]:
        return list(self.records)

    def records_for(self, method: str) -> list[RunRecord]:
        return self.records.get(method, [])


# --------------------------------------------------------------------------- #
# single-instance runs
# --------------------------------------------------------------------------- #
def run_parametrised(
    instance: Instance,
    method: str,
    factory: DecomposerFactory,
    time_budget: float,
    max_width: int = 6,
) -> RunRecord:
    """Resolve the optimal width of ``instance`` by iterative deepening.

    ``time_budget`` is the budget for each (instance, k) run, matching the
    per-run timeout of the paper's setup.
    """
    decisions: dict[int, bool] = {}
    total_runtime = 0.0
    timed_out = False
    optimal_width: int | None = None
    max_depth = 0
    counters: dict[str, int] = {}
    for k in range(1, max_width + 1):
        decomposer = factory(time_budget)
        result = decomposer.decompose(instance.hypergraph, k)
        total_runtime += result.elapsed
        max_depth = max(max_depth, result.statistics.max_recursion_depth)
        for key, value in result.statistics.search_counters().items():
            counters[key] = counters.get(key, 0) + value
        if result.timed_out:
            timed_out = True
            break
        decisions[k] = result.success
        if result.success:
            optimal_width = k
            break
    solved = optimal_width is not None
    return RunRecord(
        instance_name=instance.name,
        origin=instance.origin,
        group=instance.group,
        num_edges=instance.num_edges,
        num_vertices=instance.num_vertices,
        method=method,
        solved=solved,
        optimal_width=optimal_width,
        runtime=total_runtime,
        timed_out=timed_out,
        decisions=decisions,
        max_recursion_depth=max_depth,
        search_counters=counters,
    )


def run_optimal_solver(
    instance: Instance,
    method: str = "HtdLEO",
    time_budget: float = 5.0,
    max_width: int = 6,
) -> RunRecord:
    """Resolve an instance with the HtdLEO-style direct optimal solver."""
    solver = OptimalHDSolver(timeout=time_budget, max_width=max_width)
    outcome = solver.solve(instance.hypergraph)
    decisions: dict[int, bool] = {}
    if outcome.width is not None:
        for k in range(1, max_width + 1):
            decisions[k] = k >= outcome.width
    return RunRecord(
        instance_name=instance.name,
        origin=instance.origin,
        group=instance.group,
        num_edges=instance.num_edges,
        num_vertices=instance.num_vertices,
        method=method,
        solved=outcome.width is not None,
        optimal_width=outcome.width,
        runtime=outcome.elapsed,
        timed_out=outcome.timed_out,
        decisions=decisions,
        max_recursion_depth=outcome.statistics.max_recursion_depth,
    )


# --------------------------------------------------------------------------- #
# experiment grids
# --------------------------------------------------------------------------- #
def run_experiment(
    instances: Sequence[Instance],
    methods: Iterable[DecomposerSpec] | None = None,
    time_budget: float = 2.0,
    optimal_budget_factor: float = 2.0,
    max_width: int = 6,
    num_workers: int = 1,
    simplify: bool = True,
    progress: Callable[[str], None] | None = None,
) -> ExperimentData:
    """Run every method on every instance and collect the records.

    ``optimal_budget_factor`` scales the budget of the direct optimal solver
    relative to ``time_budget`` (the paper similarly grants HtdLEO a larger
    memory budget because SMT solving is more resource-hungry).
    ``simplify=False`` runs the parametrised methods without the staged
    engine (raw search), matching the pre-pipeline measurement setup.
    """
    specs = (
        list(methods)
        if methods is not None
        else default_method_specs(num_workers, simplify=simplify)
    )
    data = ExperimentData(instances=list(instances))
    for instance in instances:
        for spec in specs:
            start = time.monotonic()
            if spec.parametrised:
                record = run_parametrised(
                    instance, spec.label, spec.factory, time_budget, max_width
                )
            else:
                record = run_optimal_solver(
                    instance,
                    spec.label,
                    time_budget * optimal_budget_factor,
                    max_width,
                )
            data.add(record)
            if progress is not None:
                progress(
                    f"{spec.label:>22} {instance.name:<20} "
                    f"{'solved' if record.solved else 'unsolved':<9} "
                    f"width={record.optimal_width} "
                    f"{time.monotonic() - start:6.2f}s"
                )
    return data
