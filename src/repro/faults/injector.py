"""Deterministic, seeded fault injection behind named fault points.

The library's failure paths — catalog I/O, the engine decompose path, the
service worker pool, the process parallel backend — are instrumented with
*fault points*: named call sites that invoke :func:`fire`.  With no injector
installed (the production default) a fault point is one module-global read
and an immediate return; nothing is allocated, no lock is taken, and the
measured per-call cost is tens of nanoseconds (``benchmarks/bench_faults.py``
asserts the end-to-end overhead bound).

An installed :class:`FaultInjector` matches each fired point against its
:class:`FaultRule` list and can

* **raise** an injected exception (``error=...``),
* **delay** the caller (``delay=...`` seconds), or
* **kill the process** (``kill=True`` → ``os._exit``; used to simulate an
  OOM-killed process worker — never use it on a thread of the main process).

Rules fire deterministically: ``times`` bounds how often a rule fires (so an
injected outage always ends and recovery paths run), ``skip`` lets the first
hits pass, ``probability`` draws from a :class:`random.Random` seeded at
injector construction, and ``where`` filters on the keyword context the
fault point supplies (e.g. ``fire("parallel.worker", slot=0, attempt=1)``).

Injectors cross process boundaries explicitly: :meth:`FaultInjector.spec`
returns a picklable description and :func:`install_spec` re-creates it in a
child process — the parallel backend ships the currently-installed spec to
its workers, so injection behaves identically under fork and spawn.

Example::

    from repro import faults

    rule = faults.FaultRule(point="catalog.get", error=RuntimeError("boom"), times=2)
    with faults.injected(rule, seed=7) as injector:
        ...  # the first two catalog reads raise RuntimeError("boom")
    injector.injected_counts()  # {"catalog.get": 2}
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from random import Random

__all__ = [
    "FaultRule",
    "FaultInjector",
    "fire",
    "install",
    "uninstall",
    "installed",
    "injected",
    "current_spec",
    "install_spec",
    "KILL_EXIT_CODE",
]

#: Exit status used by ``kill=True`` rules, chosen to be recognisable in
#: worker post-mortems (and distinct from signal-death negative codes).
KILL_EXIT_CODE = 17


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where* it applies and *what* it does.

    ``point`` is an ``fnmatch`` pattern over fault-point names, so
    ``"catalog.*"`` targets every catalog operation.  Exactly one action is
    taken per firing, checked in order ``delay`` → ``kill`` → ``error``
    (a rule may combine a delay with an error).  The rule is inert once
    ``times`` firings have happened — schedules always terminate, which is
    what lets the chaos suite assert *recovery*, not just degradation.
    """

    point: str
    error: BaseException | type[BaseException] | None = None
    delay: float = 0.0
    kill: bool = False
    probability: float = 1.0
    times: int | None = None
    skip: int = 0
    where: tuple[tuple[str, object], ...] | dict | None = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.error is None and not self.kill and self.delay <= 0.0:
            raise ValueError("a FaultRule needs an error, a delay or kill=True")
        if isinstance(self.where, dict):
            # Normalise to a tuple so the rule stays hashable and picklable.
            object.__setattr__(self, "where", tuple(sorted(self.where.items())))

    def matches(self, point: str, context: dict) -> bool:
        if not fnmatchcase(point, self.point):
            return False
        if self.where:
            for key, value in self.where:
                if context.get(key) != value:
                    return False
        return True


@dataclass
class _RuleState:
    """Mutable per-injector bookkeeping for one rule."""

    hits: int = 0
    fires: int = 0


@dataclass
class _Spec:
    """Picklable description of an injector (rules are frozen dataclasses)."""

    seed: int
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)


class FaultInjector:
    """A seeded rule engine evaluated at every fired fault point.

    Thread-safe: rule state and the RNG sit behind one lock.  Counters are
    observable while installed — ``point_hits`` records *every* fired point
    (whether or not a rule matched; the overhead benchmark uses this to
    count instrumentation traffic), ``injected_counts`` only actual
    injections.
    """

    def __init__(self, rules: tuple | list = (), seed: int = 0) -> None:
        self.seed = seed
        self.rules = tuple(rules)
        self._rng = Random(seed)
        self._lock = threading.Lock()
        self._states = [_RuleState() for _ in self.rules]
        self._hits: dict[str, int] = {}
        self._injected: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def fire(self, point: str, **context) -> None:
        """Evaluate ``point`` against the rules; may sleep, raise or exit."""
        action: FaultRule | None = None
        with self._lock:
            self._hits[point] = self._hits.get(point, 0) + 1
            for rule, state in zip(self.rules, self._states):
                if not rule.matches(point, context):
                    continue
                state.hits += 1
                if state.hits <= rule.skip:
                    continue
                if rule.times is not None and state.fires >= rule.times:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                state.fires += 1
                self._injected[point] = self._injected.get(point, 0) + 1
                action = rule
                break
        if action is None:
            return
        if action.delay > 0.0:
            time.sleep(action.delay)
        if action.kill:
            os._exit(KILL_EXIT_CODE)
        if action.error is not None:
            raise self._build_error(action.error, point)

    @staticmethod
    def _build_error(error, point: str) -> BaseException:
        if isinstance(error, BaseException):
            # Re-raising one shared instance from many sites would tangle
            # tracebacks; hand every firing a fresh twin instead.
            return type(error)(*error.args)
        if isinstance(error, type) and issubclass(error, BaseException):
            return error(f"injected fault at {point!r}")
        raise TypeError(f"FaultRule.error must be an exception or class, got {error!r}")

    # ------------------------------------------------------------------ #
    # observation
    # ------------------------------------------------------------------ #
    def point_hits(self) -> dict[str, int]:
        """Fault-point traffic seen while installed (injected or not)."""
        with self._lock:
            return dict(self._hits)

    def injected_counts(self) -> dict[str, int]:
        """Actual injections per fault point."""
        with self._lock:
            return dict(self._injected)

    def total_injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    # ------------------------------------------------------------------ #
    # process-boundary plumbing
    # ------------------------------------------------------------------ #
    def spec(self) -> _Spec:
        """A picklable description re-creating this injector's *rules*.

        State (hit counts, RNG position) does not travel: a child process
        starts a fresh deterministic evaluation of the same schedule.
        """
        return _Spec(seed=self.seed, rules=self.rules)

    @classmethod
    def from_spec(cls, spec: _Spec) -> "FaultInjector":
        return cls(rules=spec.rules, seed=spec.seed)


# --------------------------------------------------------------------------- #
# the module-global hook the instrumented call sites use
# --------------------------------------------------------------------------- #
_installed: FaultInjector | None = None


def fire(point: str, **context) -> None:
    """The fault-point hook: free when no injector is installed."""
    injector = _installed
    if injector is not None:
        injector.fire(point, **context)


def install(injector: FaultInjector) -> FaultInjector | None:
    """Install ``injector`` globally; returns the previously installed one."""
    global _installed
    previous = _installed
    _installed = injector
    return previous


def uninstall() -> None:
    """Remove the installed injector (idempotent)."""
    global _installed
    _installed = None


def installed() -> FaultInjector | None:
    """The currently installed injector, or ``None``."""
    return _installed


@contextmanager
def injected(*rules: FaultRule, seed: int = 0):
    """Install a fresh injector for the duration of a ``with`` block.

    Restores whatever was installed before, so blocks nest.
    """
    injector = FaultInjector(rules=rules, seed=seed)
    previous = install(injector)
    try:
        yield injector
    finally:
        global _installed
        _installed = previous


def current_spec() -> _Spec | None:
    """Picklable spec of the installed injector (``None`` when disabled)."""
    injector = _installed
    return injector.spec() if injector is not None else None


def install_spec(spec: _Spec | None) -> None:
    """Re-create and install an injector from a spec (child-process entry)."""
    if spec is not None:
        install(FaultInjector.from_spec(spec))
