"""Fault injection and resilience primitives (see ``docs/architecture.md``).

The package has two halves:

* :mod:`repro.faults.injector` — named fault points + a deterministic,
  seeded :class:`FaultInjector` (zero overhead while no injector is
  installed);
* :mod:`repro.faults.resilience` — :class:`RetryPolicy` (exponential
  backoff + jitter) and :class:`CircuitBreaker`, the building blocks of the
  supervised layers (catalog re-attach, worker respawn, poison quarantine).

Import the package itself at instrumentation sites (``from repro import
faults`` … ``faults.fire("catalog.get")``) so the disabled-path check stays
a single module-global read.
"""

from .injector import (
    KILL_EXIT_CODE,
    FaultInjector,
    FaultRule,
    current_spec,
    fire,
    install,
    install_spec,
    installed,
    injected,
    uninstall,
)
from .resilience import CircuitBreaker, RetryPolicy

__all__ = [
    "KILL_EXIT_CODE",
    "FaultInjector",
    "FaultRule",
    "CircuitBreaker",
    "RetryPolicy",
    "fire",
    "install",
    "uninstall",
    "installed",
    "injected",
    "current_spec",
    "install_spec",
]
