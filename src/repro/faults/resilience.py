"""Resilience primitives built over the fault-injection framework.

Two small, dependency-free building blocks shared by the supervised layers:

* :class:`RetryPolicy` — bounded retries with exponential backoff plus
  deterministic (seedable) jitter; the catalog wraps every SQLite operation
  in one, so transient errors heal without tripping anything.
* :class:`CircuitBreaker` — the classic three-state breaker.  Repeated
  failures *open* the circuit (callers stop touching the broken dependency
  and degrade); after a cooling-off interval a single *half-open* probe is
  allowed through; a successful probe *closes* the circuit again and the
  ``reattaches`` counter proves recovery happened.

Both are plain state machines: they decide, the caller acts.  Neither
sleeps on its own (the retry policy yields delays; the breaker compares
timestamps), which keeps them trivially testable with a fake clock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from random import Random

__all__ = ["RetryPolicy", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter: ``base * 2^attempt``, capped.

    ``jitter`` scales a multiplicative random component in
    ``[1, 1 + jitter]`` drawn from a :class:`random.Random` seeded with
    ``seed`` — the default seed makes delay sequences reproducible, which
    the deterministic chaos suite relies on; pass ``seed=None`` for
    entropy-seeded jitter in production fleets (it decorrelates retry
    storms across processes).
    """

    max_retries: int = 2
    backoff_base: float = 0.01
    backoff_cap: float = 0.25
    jitter: float = 0.5
    seed: int | None = 0

    def delays(self):
        """Yield one sleep duration per permitted retry."""
        rng = Random(self.seed)
        for attempt in range(self.max_retries):
            delay = min(self.backoff_cap, self.backoff_base * (2**attempt))
            if self.jitter > 0.0:
                delay *= 1.0 + self.jitter * rng.random()
            yield delay

    def call(self, fn, *, retry_on=(Exception,), on_retry=None, sleep=time.sleep):
        """Run ``fn()`` retrying on ``retry_on``; re-raises when exhausted."""
        delays = self.delays()
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as exc:
                # next(..., None) rather than catching StopIteration: a bare
                # ``raise`` inside that handler would re-raise StopIteration,
                # not the caller's exception.
                delay = next(delays, None)
                if delay is None:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(delay)
                attempt += 1


class CircuitBreaker:
    """Closed → open → half-open → closed, with counters proving each hop.

    * ``record_failure`` increments a consecutive-failure count; reaching
      ``failure_threshold`` (or any failure while half-open) opens the
      circuit and stamps the time.
    * ``allow`` answers "may I touch the dependency?": always while closed;
      while open only once ``reset_interval`` has elapsed, which moves the
      breaker to half-open (that caller is the probe; concurrent callers
      are refused until the probe reports).
    * ``record_success`` closes the circuit; from half-open it also counts a
      ``reattach`` — the recovery the chaos suite asserts on.

    Thread-safe; ``clock`` is injectable for tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_interval: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_interval < 0:
            raise ValueError("reset_interval must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_interval = reset_interval
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._consecutive_failures = 0
        self.opens = 0
        self.probes = 0
        self.reattaches = 0
        self.failures = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self, *, force_probe: bool = False) -> bool:
        """Whether the caller may attempt the guarded operation now.

        From the open state, returns True exactly once per cooldown window
        (transitioning to half-open); ``force_probe=True`` skips the
        cooldown — the catalog's public ``probe()`` uses it.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if force_probe or self._clock() - self._opened_at >= self.reset_interval:
                    self._state = self.HALF_OPEN
                    self.probes += 1
                    return True
                return False
            # Half-open: a probe is already in flight; only a forced probe
            # (same caller retrying synchronously) may pass.
            if force_probe:
                self.probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self.reattaches += 1
            self._state = self.CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> bool:
        """Record one failure; returns True when this opened the circuit."""
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            should_open = self._state == self.HALF_OPEN or (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            )
            if self._state == self.OPEN:
                # Late failure reports while already open just re-stamp the
                # cooldown so a flapping dependency does not probe-storm.
                self._opened_at = self._clock()
                return False
            if should_open:
                self._open_locked()
                return True
            return False

    def trip(self) -> None:
        """Open the circuit immediately (hard failure, no counting)."""
        with self._lock:
            if self._state != self.OPEN:
                self._open_locked()

    def _open_locked(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self.opens += 1

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (feeds ``stats().health``)."""
        with self._lock:
            return {
                "state": self._state,
                "opens": self.opens,
                "probes": self.probes,
                "reattaches": self.reattaches,
                "failures": self.failures,
            }
