"""The durable decomposition catalog: a SQLite-backed L2 cache with provenance.

Every in-memory cache of the library dies with the process; the catalog is
the tier below them — a zero-config local SQLite file (WAL mode, stdlib
:mod:`sqlite3`) mapping ``namespace × canonical_hash × k × configuration``
to a serialized certificate plus full provenance:

* the producing **algorithm** and its resolved registry configuration,
* a **search-statistics snapshot** and the decompose-stage wall time,
* a UTC **timestamp** and the library **code version**,
* the **validation status** recorded at store time,
* the instance itself in **HIF** form (:func:`repro.hypergraph.io.to_hif`),
  so a row can be audited standalone by any HIF-aware tool.

Design decisions that make the catalog safe to share:

* **Validate on load.**  A row is only trusted after its certificate has
  been decoded over the *caller's* hypergraph and has passed the independent
  ``validate_hd``/``validate_ghd`` oracle.  Rows failing validation (a
  tampered or torn write) are deleted and counted as ``validate_rejects`` —
  the caller simply recomputes.
* **Exactly-once rows.**  Stores go through ``INSERT OR IGNORE`` on the
  primary key, so many processes racing to store one key agree on a single
  surviving row without any cross-process locking.
* **Write-behind.**  :meth:`DecompositionCatalog.put` enqueues; a daemon
  writer thread serializes, validates and inserts off the caller's hot
  path.  :meth:`flush` drains the queue (tests and clean shutdowns call it;
  :meth:`close` flushes implicitly).  Because rows are only ever *decided*
  answers and inserts are idempotent, losing queued writes in a crash costs
  recomputation, never correctness.  The writer thread is supervised: an
  unexpected exception loses at most the one write it was applying (counted
  as ``lost_writes``), and a *dead* writer is detected — :meth:`flush`
  raises :class:`~repro.exceptions.CatalogError` instead of silently
  dropping the queue, and the next :meth:`put` respawns the thread.
* **Retry, then break the circuit — degradation is temporary.**  Every
  SQLite operation runs under a :class:`~repro.faults.RetryPolicy`
  (exponential backoff + jitter), so transient errors heal invisibly.
  Persistent failure opens a :class:`~repro.faults.CircuitBreaker`: the
  file connection is dropped and the catalog serves from a private
  in-memory *shadow* database (``stats().memory_fallback`` is True while
  degraded — serving keeps working, merely without durability).  After
  ``reset_interval`` seconds each operation first attempts a half-open
  probe; a successful probe **re-attaches** the file, replays the shadow's
  rows into it (``reattach_replays``) and closes the circuit —
  ``circuit_reattaches`` proves the recovery.  :meth:`probe` forces the
  attempt without waiting for the cooldown.

Fault points (see :mod:`repro.faults`): ``catalog.open``, ``catalog.probe``
and ``catalog.<op>`` for every SQLite operation (``get``, ``put``,
``delete``, ``query``, ``evict``, ``vacuum``), plus ``catalog.writer``
around each write-behind application — the chaos suite drives the whole
retry → break → probe → re-attach ladder through them.

Namespaces isolate tenants sharing one file: a catalog handle is bound to
one namespace; rows of other namespaces are invisible to `get`/`put` and
are managed through the CLI (``python -m repro.catalog``).
"""

from __future__ import annotations

import json
import logging
import queue
import sqlite3
import threading
import time
from dataclasses import asdict, dataclass, replace
from datetime import datetime, timezone
from pathlib import Path

from .. import faults
from ..core.base import SearchStatistics
from ..core.codec import (
    class_for_kind,
    decomposition_from_json,
    decomposition_to_dict,
    kind_of,
)
from ..decomp.decomposition import (
    Decomposition,
    DecompositionNode,
    HypertreeDecomposition,
)
from ..decomp.validation import validate_ghd, validate_hd
from ..exceptions import CatalogError, ReproError
from ..faults import CircuitBreaker, RetryPolicy
from ..hypergraph import Hypergraph
from ..hypergraph.io import from_hif, to_hif

__all__ = ["CatalogStats", "CatalogRecord", "DecompositionCatalog", "configuration_text"]

logger = logging.getLogger("repro.catalog")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    namespace      TEXT    NOT NULL,
    canonical_hash TEXT    NOT NULL,
    k              INTEGER NOT NULL,
    configuration  TEXT    NOT NULL,
    algorithm      TEXT    NOT NULL,
    success        INTEGER NOT NULL,
    kind           TEXT    NOT NULL,
    certificate    TEXT,
    hypergraph     TEXT    NOT NULL,
    statistics     TEXT    NOT NULL,
    wall_seconds   REAL    NOT NULL,
    created_at     TEXT    NOT NULL,
    code_version   TEXT    NOT NULL,
    validated      INTEGER NOT NULL,
    PRIMARY KEY (namespace, canonical_hash, k, configuration)
)
"""

#: Number of columns in ``entries`` (the re-attach replay binds them all).
_NUM_COLUMNS = 14


def _stable(value):
    """Recursively order-normalise a configuration value for stable text."""
    if isinstance(value, frozenset):
        return ("frozenset", sorted(_stable(item) for item in value))
    if isinstance(value, tuple):
        return ("tuple", [_stable(item) for item in value])
    return ("atom", repr(value))


def configuration_text(configuration: tuple) -> str:
    """A deterministic text rendering of an algorithm-configuration key.

    Configuration keys (:meth:`repro.core.base.Decomposer.cache_key` /
    :meth:`repro.pipeline.registry.DecomposerRegistry.configuration_key`)
    are nested tuples of primitives, possibly containing frozensets whose
    ``repr`` order is not deterministic — so the rendering sorts set
    contents before serialising.  The text is an opaque identity column,
    not meant to be decoded.
    """
    return json.dumps(_stable(configuration), sort_keys=True)


@dataclass
class CatalogStats:
    """Traffic and resilience counters of one catalog handle (not persisted).

    ``memory_fallback`` is True *while* the circuit is open and the handle
    serves from its in-memory shadow; it flips back to False on re-attach.
    ``retries`` counts healed transient errors, ``circuit_*`` the breaker's
    state transitions, ``reattach_replays`` shadow rows replayed into the
    file on recovery, and ``lost_writes`` / ``writer_respawns`` the
    write-behind supervisor's interventions.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    duplicate_stores: int = 0
    validate_rejects: int = 0
    errors: int = 0
    retries: int = 0
    lost_writes: int = 0
    writer_respawns: int = 0
    reattach_replays: int = 0
    circuit_opens: int = 0
    circuit_probes: int = 0
    circuit_reattaches: int = 0
    circuit_state: str = "closed"
    memory_fallback: bool = False

    def as_dict(self) -> dict:
        """JSON-friendly rendering (feeds the service stats snapshot)."""
        return dict(asdict(self))

    def merge(self, other: "CatalogStats") -> None:
        """Accumulate ``other`` into this snapshot."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.duplicate_stores += other.duplicate_stores
        self.validate_rejects += other.validate_rejects
        self.errors += other.errors
        self.retries += other.retries
        self.lost_writes += other.lost_writes
        self.writer_respawns += other.writer_respawns
        self.reattach_replays += other.reattach_replays
        self.circuit_opens += other.circuit_opens
        self.circuit_probes += other.circuit_probes
        self.circuit_reattaches += other.circuit_reattaches
        if other.circuit_state != "closed":
            self.circuit_state = other.circuit_state
        self.memory_fallback = self.memory_fallback or other.memory_fallback


@dataclass
class CatalogRecord:
    """One catalog row, decoded for the engine or the CLI.

    ``root`` is the decomposition tree of the stored (reduced) instance —
    ``None`` for negative entries — and ``kind`` the decomposition class it
    re-validates as.  The remaining fields are provenance.
    """

    namespace: str
    canonical_hash: str
    k: int
    algorithm: str
    success: bool
    root: DecompositionNode | None
    kind: type
    stats: SearchStatistics
    hypergraph: Hypergraph
    wall_seconds: float
    created_at: str
    code_version: str
    validated: bool
    configuration: str = ""


@dataclass
class _PendingWrite:
    """A queued write-behind store, fully resolved off the caller's objects."""

    canonical_hash: str
    k: int
    configuration: str
    algorithm: str
    success: bool
    decomposition: Decomposition | None
    kind: type
    hypergraph: Hypergraph
    stats: SearchStatistics
    wall_seconds: float


def _statistics_payload(stats: SearchStatistics) -> str:
    counters = asdict(replace(stats, stage_seconds={}))
    counters.pop("stage_seconds", None)
    return json.dumps(counters, sort_keys=True)


def _statistics_from_payload(text: str) -> SearchStatistics:
    counters = json.loads(text)
    known = {name for name in SearchStatistics.__dataclass_fields__ if name != "stage_seconds"}
    return SearchStatistics(**{k: v for k, v in counters.items() if k in known})


class DecompositionCatalog:
    """A durable, namespaced store of decided decomposition outcomes.

    Parameters
    ----------
    path:
        The SQLite file (created on demand); parent directories must exist.
    namespace:
        The tenant namespace this handle reads and writes (default
        ``"default"``).  Other namespaces in the same file are invisible.
    synchronous_writes:
        Bypass the write-behind queue and insert inline — slower ``put`` but
        no :meth:`flush` needed before handing the file to another process.
    retry_policy:
        The :class:`~repro.faults.RetryPolicy` wrapped around every SQLite
        operation (default: 2 retries, 10 ms base backoff with jitter).
    failure_threshold / reset_interval:
        The circuit breaker's knobs: consecutive attempt failures before the
        circuit opens, and the cooldown before a half-open re-attach probe.

    The handle is thread-safe: one connection guarded by a lock (SQLite WAL
    handles cross-process concurrency).  Use as a context manager or call
    :meth:`close` to flush queued writes and release the file.
    """

    def __init__(
        self,
        path: str | Path,
        namespace: str = "default",
        *,
        synchronous_writes: bool = False,
        retry_policy: RetryPolicy | None = None,
        failure_threshold: int = 3,
        reset_interval: float = 1.0,
    ) -> None:
        if not namespace or any(ch.isspace() for ch in namespace):
            raise ReproError(f"invalid catalog namespace {namespace!r}")
        self.path = Path(path)
        self.namespace = namespace
        self.synchronous_writes = synchronous_writes
        self._retry = retry_policy if retry_policy is not None else RetryPolicy()
        self._breaker = CircuitBreaker(
            failure_threshold=failure_threshold, reset_interval=reset_interval
        )
        self._lock = threading.Lock()
        self._stats = CatalogStats()
        self._closed = False
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._pending = 0
        self._drained = threading.Condition(self._lock)
        self._writer: threading.Thread | None = None
        self._writer_died = False
        self._attached = False
        self._connection = self._open()

    # ------------------------------------------------------------------ #
    # connection management, circuit breaking, re-attach
    # ------------------------------------------------------------------ #
    def _connect_file(self) -> sqlite3.Connection:
        """Open (and initialise) the durable file; raises on failure."""
        faults.fire("catalog.open")
        connection = sqlite3.connect(str(self.path), check_same_thread=False)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(_SCHEMA)
            connection.commit()
        except BaseException:
            connection.close()
            raise
        return connection

    def _open(self) -> sqlite3.Connection:
        try:
            connection = self._connect_file()
        except (sqlite3.Error, OSError) as exc:
            self._breaker.trip()
            return self._shadow_connection(f"cannot open catalog {self.path}: {exc}")
        self._attached = True
        return connection

    def _shadow_connection(self, reason: str) -> sqlite3.Connection:
        """Build the in-memory shadow the handle serves from while degraded."""
        logger.warning(
            "%s — circuit open, continuing with a memory-only catalog "
            "(no durability) until the file re-attaches",
            reason,
        )
        self._stats.memory_fallback = True
        self._stats.errors += 1
        connection = sqlite3.connect(":memory:", check_same_thread=False)
        connection.execute(_SCHEMA)
        connection.commit()
        return connection

    def _degrade_locked(self, label: str, exc: BaseException) -> None:
        """Drop the file connection and switch to the shadow (lock held)."""
        try:
            self._connection.close()
        except sqlite3.Error:
            pass
        self._attached = False
        self._connection = self._shadow_connection(f"catalog {label} failed: {exc}")

    def _probe_locked(self, force: bool = False) -> bool:
        """Attempt a half-open re-attach if the breaker allows one (lock held).

        On success the shadow's rows are replayed into the file (idempotent
        ``INSERT OR IGNORE``), the shadow is discarded, and the circuit
        closes.  Returns whether the handle is attached afterwards.
        """
        if self._attached:
            return True
        if not self._breaker.allow(force_probe=force):
            return False
        try:
            faults.fire("catalog.probe")
            connection = self._connect_file()
        except (sqlite3.Error, OSError) as exc:
            self._breaker.record_failure()
            logger.debug("catalog re-attach probe failed: %s", exc)
            return False
        replayed = 0
        try:
            placeholders = ", ".join("?" * _NUM_COLUMNS)
            for row in self._connection.execute("SELECT * FROM entries"):
                cursor = connection.execute(
                    f"INSERT OR IGNORE INTO entries VALUES ({placeholders})", row
                )
                replayed += cursor.rowcount
            connection.commit()
        except sqlite3.Error as exc:
            self._breaker.record_failure()
            connection.close()
            logger.debug("catalog re-attach replay failed: %s", exc)
            return False
        try:
            self._connection.close()
        except sqlite3.Error:
            pass
        self._connection = connection
        self._attached = True
        self._breaker.record_success()
        self._stats.memory_fallback = False
        self._stats.reattach_replays += replayed
        logger.info(
            "catalog re-attached to %s (%d shadow row(s) replayed)",
            self.path,
            replayed,
        )
        return True

    def probe(self) -> bool:
        """Force a re-attach attempt now; True iff the file is attached after.

        Bypasses the breaker's cooldown — operational tooling (and the chaos
        harness) calls this to confirm recovery instead of waiting for the
        next organic operation to probe.
        """
        with self._lock:
            if self._closed:
                return False
            return self._probe_locked(force=True)

    def _run(self, label: str, fn, default=None):
        """Run ``fn(connection)`` with retry, circuit breaking and degradation.

        While attached: each attempt fires the ``catalog.<label>`` fault
        point and is retried per the policy; exhausted retries (or the
        breaker opening) degrade the handle to its shadow, on which the
        operation is then served best-effort.  While degraded: a cooldown-
        gated re-attach probe runs first, then the operation hits whichever
        connection is now active.
        """
        with self._lock:
            if self._closed:
                return default
            if not self._attached:
                self._probe_locked()
            if self._attached:
                delays = self._retry.delays()
                while True:
                    try:
                        faults.fire(f"catalog.{label}")
                        result = fn(self._connection)
                        self._breaker.record_success()
                        return result
                    except (sqlite3.Error, OSError) as exc:
                        self._stats.errors += 1
                        try:
                            self._connection.rollback()
                        except sqlite3.Error:
                            pass
                        opened = self._breaker.record_failure()
                        if opened:
                            self._degrade_locked(label, exc)
                            break
                        try:
                            delay = next(delays)
                        except StopIteration:
                            self._breaker.trip()
                            self._degrade_locked(label, exc)
                            break
                        self._stats.retries += 1
                        time.sleep(delay)
            try:
                return fn(self._connection)
            except sqlite3.Error:
                self._stats.errors += 1
                return default

    def close(self) -> None:
        """Flush queued writes and close the underlying connection.

        A dead write-behind writer discovered during the flush has already
        been accounted (``lost_writes``) — close proceeds regardless.
        """
        try:
            self.flush()
        except CatalogError:
            pass  # loss already flagged in stats; close must still succeed
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._connection.close()

    def __enter__(self) -> "DecompositionCatalog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the L2 protocol: get / put / flush
    # ------------------------------------------------------------------ #
    def get(
        self, hypergraph: Hypergraph, k: int, configuration: tuple | str
    ) -> CatalogRecord | None:
        """Look up a decided outcome for ``(hypergraph, k, configuration)``.

        Positive entries are decoded over the *given* hypergraph and must
        pass the independent ``validate_hd``/``validate_ghd`` oracle before
        they are returned; a row failing decode or validation is deleted,
        counted as a ``validate_reject`` and reported as a miss, so the
        caller transparently recomputes (and re-stores) it.
        """
        config_text = self._configuration_text(configuration)
        canonical_hash = hypergraph.canonical_hash()
        row = self._fetch_row(canonical_hash, k, config_text)
        if row is None:
            with self._lock:
                self._stats.misses += 1
            return None
        record = self._decode_row(row, hypergraph)
        with self._lock:
            if record is None:
                self._stats.validate_rejects += 1
                self._stats.misses += 1
            else:
                self._stats.hits += 1
        if record is None:
            self._delete_row(canonical_hash, k, config_text)
        return record

    def put(
        self,
        hypergraph: Hypergraph,
        k: int,
        configuration: tuple | str,
        *,
        algorithm: str,
        success: bool,
        decomposition: Decomposition | None,
        stats: SearchStatistics | None = None,
        wall_seconds: float = 0.0,
    ) -> None:
        """Persist a decided outcome (write-behind unless ``synchronous_writes``).

        ``decomposition`` must be hosted on ``hypergraph`` (the engine passes
        the *reduced* instance and its certificate); negative outcomes pass
        ``success=False`` with ``decomposition=None``.  Timed-out or
        cancelled runs must never reach the catalog — the engine enforces
        that, mirroring its L1 policy.
        """
        pending = _PendingWrite(
            canonical_hash=hypergraph.canonical_hash(),
            k=k,
            configuration=self._configuration_text(configuration),
            algorithm=algorithm,
            success=bool(success),
            decomposition=decomposition,
            kind=type(decomposition) if decomposition is not None else HypertreeDecomposition,
            hypergraph=hypergraph,
            stats=stats if stats is not None else SearchStatistics(),
            wall_seconds=wall_seconds,
        )
        if self.synchronous_writes:
            self._write(pending)
            return
        with self._lock:
            if self._closed:
                return
            if self._writer is not None and not self._writer.is_alive():
                # The write-behind thread died (an escaped BaseException):
                # account whatever it stranded, then respawn below.
                self._reap_dead_writer_locked()
            self._pending += 1
            if self._writer is None:
                if self._writer_died:
                    self._stats.writer_respawns += 1
                    self._writer_died = False
                self._writer = threading.Thread(
                    target=self._writer_loop, name="repro-catalog-writer", daemon=True
                )
                self._writer.start()
        self._queue.put(pending)

    def _reap_dead_writer_locked(self) -> int:
        """Account a dead writer's stranded queue; returns the writes lost.

        The caller holds the lock.  Stranded writes are drained and counted
        as ``lost_writes``, the pending counter is reset so later flushes
        don't block on work nobody will do, and the circuit is tripped —
        an unexplained writer death is not a healthy catalog.
        """
        lost = self._pending
        self._stats.lost_writes += lost
        self._pending = 0
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._writer = None
        self._writer_died = True
        self._breaker.trip()
        self._drained.notify_all()
        if lost:
            logger.warning(
                "catalog write-behind writer died; %d queued write(s) lost", lost
            )
        return lost

    def flush(self, timeout: float | None = 30.0) -> bool:
        """Block until every queued write-behind store has been applied.

        Returns False if ``timeout`` elapses first.  Raises
        :class:`~repro.exceptions.CatalogError` if the writer thread is
        found dead with writes still queued — the loss is counted
        (``lost_writes``), the circuit is tripped, and a later :meth:`put`
        respawns the writer; silently dropping the queue is exactly the
        failure mode this guard exists to surface.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._drained:
            while self._pending:
                writer = self._writer
                if writer is not None and not writer.is_alive():
                    lost = self._reap_dead_writer_locked()
                    raise CatalogError(
                        f"catalog write-behind writer died; {lost} queued "
                        "write(s) were lost (the circuit is now open; the "
                        "next put() respawns the writer)"
                    )
                wait = 0.05
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    wait = min(wait, remaining)
                self._drained.wait(timeout=wait)
            return True

    def stats(self) -> CatalogStats:
        """A snapshot of this handle's traffic and resilience counters."""
        with self._lock:
            snapshot = replace(self._stats)
        circuit = self._breaker.as_dict()
        snapshot.circuit_state = circuit["state"]
        snapshot.circuit_opens = circuit["opens"]
        snapshot.circuit_probes = circuit["probes"]
        snapshot.circuit_reattaches = circuit["reattaches"]
        return snapshot

    # ------------------------------------------------------------------ #
    # enumeration / maintenance (the CLI's surface)
    # ------------------------------------------------------------------ #
    def namespaces(self) -> list[str]:
        """All namespaces present in the file, sorted."""
        rows = self._run(
            "query",
            lambda connection: connection.execute(
                "SELECT DISTINCT namespace FROM entries ORDER BY namespace"
            ).fetchall(),
        )
        return [row[0] for row in rows] if rows is not None else []

    def entries(
        self,
        namespace: str | None = None,
        *,
        hash_prefix: str = "",
        k: int | None = None,
    ) -> list[CatalogRecord]:
        """Decode matching rows (``namespace=None`` means this handle's own).

        Rows whose certificate fails validation against their *stored*
        hypergraph are skipped (and counted) — enumeration never returns an
        untrusted record.
        """
        clauses, parameters = self._filters(namespace, hash_prefix, k)
        sql = (
            "SELECT namespace, canonical_hash, k, configuration, algorithm, success, "
            "kind, certificate, hypergraph, statistics, wall_seconds, created_at, "
            f"code_version, validated FROM entries WHERE {' AND '.join(clauses)} "
            "ORDER BY created_at, canonical_hash, k"
        )
        rows = self._run(
            "query",
            lambda connection: connection.execute(sql, tuple(parameters)).fetchall(),
        )
        records = []
        for row in rows or []:
            record = self._decode_row(row, host=None)
            if record is None:
                with self._lock:
                    self._stats.validate_rejects += 1
                continue
            records.append(record)
        return records

    def evict(
        self,
        namespace: str | None = None,
        *,
        hash_prefix: str = "",
        k: int | None = None,
    ) -> int:
        """Delete matching rows; returns the number removed."""
        clauses, parameters = self._filters(namespace, hash_prefix, k)
        sql = f"DELETE FROM entries WHERE {' AND '.join(clauses)}"

        def delete(connection):
            cursor = connection.execute(sql, tuple(parameters))
            connection.commit()
            return cursor.rowcount

        removed = self._run("evict", delete, default=0)
        return int(removed)

    def _filters(self, namespace, hash_prefix, k) -> tuple[list, list]:
        clauses = ["namespace = ?"]
        parameters: list = [namespace if namespace is not None else self.namespace]
        if hash_prefix:
            clauses.append("canonical_hash LIKE ?")
            parameters.append(hash_prefix + "%")
        if k is not None:
            clauses.append("k = ?")
            parameters.append(k)
        return clauses, parameters

    def vacuum(self) -> None:
        """Reclaim the space of evicted rows (SQLite ``VACUUM``)."""
        self.flush()
        self._run("vacuum", lambda connection: connection.execute("VACUUM"))

    def __len__(self) -> int:
        rows = self._run(
            "query",
            lambda connection: connection.execute(
                "SELECT COUNT(*) FROM entries WHERE namespace = ?", (self.namespace,)
            ).fetchall(),
        )
        return int(rows[0][0]) if rows else 0

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _configuration_text(configuration: tuple | str) -> str:
        if isinstance(configuration, str):
            return configuration
        return configuration_text(configuration)

    def _fetch_row(self, canonical_hash: str, k: int, config_text: str):
        sql = (
            "SELECT namespace, canonical_hash, k, configuration, algorithm, success, "
            "kind, certificate, hypergraph, statistics, wall_seconds, created_at, "
            "code_version, validated FROM entries WHERE namespace = ? AND "
            "canonical_hash = ? AND k = ? AND configuration = ?"
        )
        parameters = (self.namespace, canonical_hash, k, config_text)
        rows = self._run(
            "get", lambda connection: connection.execute(sql, parameters).fetchall()
        )
        return rows[0] if rows else None

    def _delete_row(self, canonical_hash: str, k: int, config_text: str) -> None:
        def delete(connection):
            connection.execute(
                "DELETE FROM entries WHERE namespace = ? AND canonical_hash = ? "
                "AND k = ? AND configuration = ?",
                (self.namespace, canonical_hash, k, config_text),
            )
            connection.commit()

        self._run("delete", delete)

    def _decode_row(self, row, host: Hypergraph | None) -> CatalogRecord | None:
        """Decode and (for positive entries) validate one row.

        ``host`` is the caller's hypergraph for `get` lookups; for
        enumeration it is ``None`` and the stored HIF instance is used.
        Any decode or validation failure yields ``None`` — the row is not
        to be trusted.
        """
        (
            namespace,
            canonical_hash,
            k,
            configuration,
            algorithm,
            success,
            kind_name,
            certificate,
            hif_text,
            stats_text,
            wall_seconds,
            created_at,
            code_version,
            validated,
        ) = row
        try:
            hypergraph = host if host is not None else from_hif(hif_text)
            stats = _statistics_from_payload(stats_text)
            root: DecompositionNode | None = None
            kind: type = HypertreeDecomposition
            if success:
                decomposition = decomposition_from_json(hypergraph, certificate)
                if decomposition.kind != kind_name:
                    return None
                if isinstance(decomposition, HypertreeDecomposition):
                    validate_hd(decomposition)
                else:
                    validate_ghd(decomposition)
                if decomposition.width > k:
                    return None
                root = decomposition.root
                kind = type(decomposition)
            else:
                kind = class_for_kind(kind_name)
        except (ReproError, ValueError, TypeError, KeyError):
            return None
        return CatalogRecord(
            namespace=namespace,
            canonical_hash=canonical_hash,
            k=int(k),
            algorithm=algorithm,
            success=bool(success),
            root=root,
            kind=kind,
            stats=stats,
            hypergraph=hypergraph,
            wall_seconds=float(wall_seconds),
            created_at=created_at,
            code_version=code_version,
            validated=bool(validated),
            configuration=configuration,
        )

    def _writer_loop(self) -> None:
        while True:
            pending = self._queue.get()
            try:
                faults.fire("catalog.writer")
                self._write(pending)
            except Exception:
                # One queued write is lost; the writer itself survives.  A
                # BaseException (thread killed) escapes past this handler —
                # flush() and the next put() detect the dead thread.
                logger.warning(
                    "catalog write-behind failed unexpectedly for %s (k=%d); "
                    "dropping this write",
                    pending.canonical_hash[:12],
                    pending.k,
                    exc_info=True,
                )
                with self._lock:
                    self._stats.lost_writes += 1
                    self._stats.errors += 1
            finally:
                with self._drained:
                    self._pending -= 1
                    if self._pending == 0:
                        self._drained.notify_all()

    def _write(self, pending: _PendingWrite) -> None:
        from .. import __version__

        validated = False
        certificate = None
        kind_name = kind_of(pending.kind) if pending.decomposition is None else ""
        try:
            if pending.decomposition is not None:
                # Validate before persisting: a row in the catalog is a
                # *trusted-at-store-time* certificate, and the check runs on
                # the writer thread, off the serving hot path.
                if isinstance(pending.decomposition, HypertreeDecomposition):
                    validate_hd(pending.decomposition)
                else:
                    validate_ghd(pending.decomposition)
                validated = True
                certificate = json.dumps(
                    decomposition_to_dict(pending.decomposition), sort_keys=True
                )
                kind_name = pending.decomposition.kind
        except ReproError:
            logger.warning(
                "refusing to store an invalid certificate for %s (k=%d)",
                pending.canonical_hash[:12],
                pending.k,
            )
            with self._lock:
                self._stats.errors += 1
            return

        row = (
            self.namespace,
            pending.canonical_hash,
            pending.k,
            pending.configuration,
            pending.algorithm,
            int(pending.success),
            kind_name,
            certificate,
            json.dumps(to_hif(pending.hypergraph), sort_keys=True),
            _statistics_payload(pending.stats),
            pending.wall_seconds,
            datetime.now(timezone.utc).isoformat(timespec="seconds"),
            __version__,
            int(validated),
        )

        def insert(connection):
            cursor = connection.execute(
                "INSERT OR IGNORE INTO entries (namespace, canonical_hash, k, "
                "configuration, algorithm, success, kind, certificate, hypergraph, "
                "statistics, wall_seconds, created_at, code_version, validated) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                row,
            )
            connection.commit()
            return cursor.rowcount

        rowcount = self._run("put", insert)
        with self._lock:
            if rowcount is None:
                pass  # even the shadow failed; already counted as an error
            elif rowcount:
                self._stats.stores += 1
            else:
                # Another handle/process stored the key first: the
                # INSERT OR IGNORE race resolution, not an error.
                self._stats.duplicate_stores += 1
