"""The durable decomposition catalog: a SQLite-backed L2 cache with provenance.

Every in-memory cache of the library dies with the process; the catalog is
the tier below them — a zero-config local SQLite file (WAL mode, stdlib
:mod:`sqlite3`) mapping ``namespace × canonical_hash × k × configuration``
to a serialized certificate plus full provenance:

* the producing **algorithm** and its resolved registry configuration,
* a **search-statistics snapshot** and the decompose-stage wall time,
* a UTC **timestamp** and the library **code version**,
* the **validation status** recorded at store time,
* the instance itself in **HIF** form (:func:`repro.hypergraph.io.to_hif`),
  so a row can be audited standalone by any HIF-aware tool.

Design decisions that make the catalog safe to share:

* **Validate on load.**  A row is only trusted after its certificate has
  been decoded over the *caller's* hypergraph and has passed the independent
  ``validate_hd``/``validate_ghd`` oracle.  Rows failing validation (a
  tampered or torn write) are deleted and counted as ``validate_rejects`` —
  the caller simply recomputes.
* **Exactly-once rows.**  Stores go through ``INSERT OR IGNORE`` on the
  primary key, so many processes racing to store one key agree on a single
  surviving row without any cross-process locking.
* **Write-behind.**  :meth:`DecompositionCatalog.put` enqueues; a daemon
  writer thread serializes, validates and inserts off the caller's hot
  path.  :meth:`flush` drains the queue (tests and clean shutdowns call it;
  :meth:`close` flushes implicitly).  Because rows are only ever *decided*
  answers and inserts are idempotent, losing queued writes in a crash costs
  recomputation, never correctness.
* **Graceful degradation.**  If the file cannot be opened, is corrupt, or a
  write fails mid-flight, the catalog logs one warning and falls back to a
  private in-memory database: serving keeps working, merely without
  durability (``stats().memory_fallback`` makes the degradation visible).

Namespaces isolate tenants sharing one file: a catalog handle is bound to
one namespace; rows of other namespaces are invisible to `get`/`put` and
are managed through the CLI (``python -m repro.catalog``).
"""

from __future__ import annotations

import json
import logging
import queue
import sqlite3
import threading
from dataclasses import asdict, dataclass, replace
from datetime import datetime, timezone
from pathlib import Path

from ..core.base import SearchStatistics
from ..core.codec import (
    class_for_kind,
    decomposition_from_json,
    decomposition_to_dict,
    kind_of,
)
from ..decomp.decomposition import (
    Decomposition,
    DecompositionNode,
    HypertreeDecomposition,
)
from ..decomp.validation import validate_ghd, validate_hd
from ..exceptions import ReproError
from ..hypergraph import Hypergraph
from ..hypergraph.io import from_hif, to_hif

__all__ = ["CatalogStats", "CatalogRecord", "DecompositionCatalog", "configuration_text"]

logger = logging.getLogger("repro.catalog")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    namespace      TEXT    NOT NULL,
    canonical_hash TEXT    NOT NULL,
    k              INTEGER NOT NULL,
    configuration  TEXT    NOT NULL,
    algorithm      TEXT    NOT NULL,
    success        INTEGER NOT NULL,
    kind           TEXT    NOT NULL,
    certificate    TEXT,
    hypergraph     TEXT    NOT NULL,
    statistics     TEXT    NOT NULL,
    wall_seconds   REAL    NOT NULL,
    created_at     TEXT    NOT NULL,
    code_version   TEXT    NOT NULL,
    validated      INTEGER NOT NULL,
    PRIMARY KEY (namespace, canonical_hash, k, configuration)
)
"""


def _stable(value):
    """Recursively order-normalise a configuration value for stable text."""
    if isinstance(value, frozenset):
        return ("frozenset", sorted(_stable(item) for item in value))
    if isinstance(value, tuple):
        return ("tuple", [_stable(item) for item in value])
    return ("atom", repr(value))


def configuration_text(configuration: tuple) -> str:
    """A deterministic text rendering of an algorithm-configuration key.

    Configuration keys (:meth:`repro.core.base.Decomposer.cache_key` /
    :meth:`repro.pipeline.registry.DecomposerRegistry.configuration_key`)
    are nested tuples of primitives, possibly containing frozensets whose
    ``repr`` order is not deterministic — so the rendering sorts set
    contents before serialising.  The text is an opaque identity column,
    not meant to be decoded.
    """
    return json.dumps(_stable(configuration), sort_keys=True)


@dataclass
class CatalogStats:
    """Traffic counters of one catalog handle (not persisted)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    duplicate_stores: int = 0
    validate_rejects: int = 0
    errors: int = 0
    memory_fallback: bool = False

    def as_dict(self) -> dict:
        """JSON-friendly rendering (feeds the service stats snapshot)."""
        return dict(asdict(self))

    def merge(self, other: "CatalogStats") -> None:
        """Accumulate ``other`` into this snapshot."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.duplicate_stores += other.duplicate_stores
        self.validate_rejects += other.validate_rejects
        self.errors += other.errors
        self.memory_fallback = self.memory_fallback or other.memory_fallback


@dataclass
class CatalogRecord:
    """One catalog row, decoded for the engine or the CLI.

    ``root`` is the decomposition tree of the stored (reduced) instance —
    ``None`` for negative entries — and ``kind`` the decomposition class it
    re-validates as.  The remaining fields are provenance.
    """

    namespace: str
    canonical_hash: str
    k: int
    algorithm: str
    success: bool
    root: DecompositionNode | None
    kind: type
    stats: SearchStatistics
    hypergraph: Hypergraph
    wall_seconds: float
    created_at: str
    code_version: str
    validated: bool
    configuration: str = ""


@dataclass
class _PendingWrite:
    """A queued write-behind store, fully resolved off the caller's objects."""

    canonical_hash: str
    k: int
    configuration: str
    algorithm: str
    success: bool
    decomposition: Decomposition | None
    kind: type
    hypergraph: Hypergraph
    stats: SearchStatistics
    wall_seconds: float


def _statistics_payload(stats: SearchStatistics) -> str:
    counters = asdict(replace(stats, stage_seconds={}))
    counters.pop("stage_seconds", None)
    return json.dumps(counters, sort_keys=True)


def _statistics_from_payload(text: str) -> SearchStatistics:
    counters = json.loads(text)
    known = {name for name in SearchStatistics.__dataclass_fields__ if name != "stage_seconds"}
    return SearchStatistics(**{k: v for k, v in counters.items() if k in known})


class DecompositionCatalog:
    """A durable, namespaced store of decided decomposition outcomes.

    Parameters
    ----------
    path:
        The SQLite file (created on demand); parent directories must exist.
    namespace:
        The tenant namespace this handle reads and writes (default
        ``"default"``).  Other namespaces in the same file are invisible.
    synchronous_writes:
        Bypass the write-behind queue and insert inline — slower ``put`` but
        no :meth:`flush` needed before handing the file to another process.

    The handle is thread-safe: one connection guarded by a lock (SQLite WAL
    handles cross-process concurrency).  Use as a context manager or call
    :meth:`close` to flush queued writes and release the file.
    """

    def __init__(
        self,
        path: str | Path,
        namespace: str = "default",
        *,
        synchronous_writes: bool = False,
    ) -> None:
        if not namespace or any(ch.isspace() for ch in namespace):
            raise ReproError(f"invalid catalog namespace {namespace!r}")
        self.path = Path(path)
        self.namespace = namespace
        self.synchronous_writes = synchronous_writes
        self._lock = threading.Lock()
        self._stats = CatalogStats()
        self._closed = False
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._pending = 0
        self._drained = threading.Condition(self._lock)
        self._writer: threading.Thread | None = None
        self._connection = self._open()

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #
    def _open(self) -> sqlite3.Connection:
        try:
            connection = sqlite3.connect(str(self.path), check_same_thread=False)
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(_SCHEMA)
            connection.commit()
            return connection
        except (sqlite3.Error, OSError) as exc:
            return self._fall_back_to_memory(f"cannot open catalog {self.path}: {exc}")

    def _fall_back_to_memory(self, reason: str) -> sqlite3.Connection:
        """Degrade to a private in-memory database; caller may hold the lock."""
        logger.warning(
            "%s — continuing with a memory-only catalog (no durability)", reason
        )
        self._stats.memory_fallback = True
        self._stats.errors += 1
        connection = sqlite3.connect(":memory:", check_same_thread=False)
        connection.execute(_SCHEMA)
        connection.commit()
        return connection

    def close(self) -> None:
        """Flush queued writes and close the underlying connection."""
        self.flush()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._connection.close()

    def __enter__(self) -> "DecompositionCatalog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the L2 protocol: get / put / flush
    # ------------------------------------------------------------------ #
    def get(
        self, hypergraph: Hypergraph, k: int, configuration: tuple | str
    ) -> CatalogRecord | None:
        """Look up a decided outcome for ``(hypergraph, k, configuration)``.

        Positive entries are decoded over the *given* hypergraph and must
        pass the independent ``validate_hd``/``validate_ghd`` oracle before
        they are returned; a row failing decode or validation is deleted,
        counted as a ``validate_reject`` and reported as a miss, so the
        caller transparently recomputes (and re-stores) it.
        """
        config_text = self._configuration_text(configuration)
        canonical_hash = hypergraph.canonical_hash()
        row = self._fetch_row(canonical_hash, k, config_text)
        if row is None:
            with self._lock:
                self._stats.misses += 1
            return None
        record = self._decode_row(row, hypergraph)
        with self._lock:
            if record is None:
                self._stats.validate_rejects += 1
                self._stats.misses += 1
            else:
                self._stats.hits += 1
        if record is None:
            self._delete_row(canonical_hash, k, config_text)
        return record

    def put(
        self,
        hypergraph: Hypergraph,
        k: int,
        configuration: tuple | str,
        *,
        algorithm: str,
        success: bool,
        decomposition: Decomposition | None,
        stats: SearchStatistics | None = None,
        wall_seconds: float = 0.0,
    ) -> None:
        """Persist a decided outcome (write-behind unless ``synchronous_writes``).

        ``decomposition`` must be hosted on ``hypergraph`` (the engine passes
        the *reduced* instance and its certificate); negative outcomes pass
        ``success=False`` with ``decomposition=None``.  Timed-out or
        cancelled runs must never reach the catalog — the engine enforces
        that, mirroring its L1 policy.
        """
        pending = _PendingWrite(
            canonical_hash=hypergraph.canonical_hash(),
            k=k,
            configuration=self._configuration_text(configuration),
            algorithm=algorithm,
            success=bool(success),
            decomposition=decomposition,
            kind=type(decomposition) if decomposition is not None else HypertreeDecomposition,
            hypergraph=hypergraph,
            stats=stats if stats is not None else SearchStatistics(),
            wall_seconds=wall_seconds,
        )
        if self.synchronous_writes:
            self._write(pending)
            return
        with self._lock:
            if self._closed:
                return
            self._pending += 1
            if self._writer is None:
                self._writer = threading.Thread(
                    target=self._writer_loop, name="repro-catalog-writer", daemon=True
                )
                self._writer.start()
        self._queue.put(pending)

    def flush(self, timeout: float | None = 30.0) -> bool:
        """Block until every queued write-behind store has been applied."""
        with self._drained:
            return self._drained.wait_for(lambda: self._pending == 0, timeout=timeout)

    def stats(self) -> CatalogStats:
        """A snapshot of this handle's traffic counters."""
        with self._lock:
            return replace(self._stats)

    # ------------------------------------------------------------------ #
    # enumeration / maintenance (the CLI's surface)
    # ------------------------------------------------------------------ #
    def namespaces(self) -> list[str]:
        """All namespaces present in the file, sorted."""
        rows = self._execute(
            "SELECT DISTINCT namespace FROM entries ORDER BY namespace"
        )
        return [row[0] for row in rows] if rows is not None else []

    def entries(
        self,
        namespace: str | None = None,
        *,
        hash_prefix: str = "",
        k: int | None = None,
    ) -> list[CatalogRecord]:
        """Decode matching rows (``namespace=None`` means this handle's own).

        Rows whose certificate fails validation against their *stored*
        hypergraph are skipped (and counted) — enumeration never returns an
        untrusted record.
        """
        clauses = ["namespace = ?"]
        parameters: list = [namespace if namespace is not None else self.namespace]
        if hash_prefix:
            clauses.append("canonical_hash LIKE ?")
            parameters.append(hash_prefix + "%")
        if k is not None:
            clauses.append("k = ?")
            parameters.append(k)
        rows = self._execute(
            "SELECT namespace, canonical_hash, k, configuration, algorithm, success, "
            "kind, certificate, hypergraph, statistics, wall_seconds, created_at, "
            f"code_version, validated FROM entries WHERE {' AND '.join(clauses)} "
            "ORDER BY created_at, canonical_hash, k",
            tuple(parameters),
        )
        records = []
        for row in rows or []:
            record = self._decode_row(row, host=None)
            if record is None:
                with self._lock:
                    self._stats.validate_rejects += 1
                continue
            records.append(record)
        return records

    def evict(
        self,
        namespace: str | None = None,
        *,
        hash_prefix: str = "",
        k: int | None = None,
    ) -> int:
        """Delete matching rows; returns the number removed."""
        clauses = ["namespace = ?"]
        parameters: list = [namespace if namespace is not None else self.namespace]
        if hash_prefix:
            clauses.append("canonical_hash LIKE ?")
            parameters.append(hash_prefix + "%")
        if k is not None:
            clauses.append("k = ?")
            parameters.append(k)
        with self._lock:
            if self._closed:
                return 0
            try:
                cursor = self._connection.execute(
                    f"DELETE FROM entries WHERE {' AND '.join(clauses)}",
                    tuple(parameters),
                )
                self._connection.commit()
                return cursor.rowcount
            except sqlite3.Error as exc:
                self._connection = self._fall_back_to_memory(
                    f"catalog evict failed: {exc}"
                )
                return 0

    def vacuum(self) -> None:
        """Reclaim the space of evicted rows (SQLite ``VACUUM``)."""
        self.flush()
        with self._lock:
            if self._closed:
                return
            try:
                self._connection.execute("VACUUM")
            except sqlite3.Error as exc:
                self._connection = self._fall_back_to_memory(
                    f"catalog vacuum failed: {exc}"
                )

    def __len__(self) -> int:
        rows = self._execute(
            "SELECT COUNT(*) FROM entries WHERE namespace = ?", (self.namespace,)
        )
        return int(rows[0][0]) if rows else 0

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _configuration_text(configuration: tuple | str) -> str:
        if isinstance(configuration, str):
            return configuration
        return configuration_text(configuration)

    def _execute(self, sql: str, parameters: tuple = ()) -> list | None:
        with self._lock:
            if self._closed:
                return None
            try:
                return self._connection.execute(sql, parameters).fetchall()
            except sqlite3.Error as exc:
                self._connection = self._fall_back_to_memory(
                    f"catalog query failed: {exc}"
                )
                return None

    def _fetch_row(self, canonical_hash: str, k: int, config_text: str):
        rows = self._execute(
            "SELECT namespace, canonical_hash, k, configuration, algorithm, success, "
            "kind, certificate, hypergraph, statistics, wall_seconds, created_at, "
            "code_version, validated FROM entries WHERE namespace = ? AND "
            "canonical_hash = ? AND k = ? AND configuration = ?",
            (self.namespace, canonical_hash, k, config_text),
        )
        return rows[0] if rows else None

    def _delete_row(self, canonical_hash: str, k: int, config_text: str) -> None:
        with self._lock:
            if self._closed:
                return
            try:
                self._connection.execute(
                    "DELETE FROM entries WHERE namespace = ? AND canonical_hash = ? "
                    "AND k = ? AND configuration = ?",
                    (self.namespace, canonical_hash, k, config_text),
                )
                self._connection.commit()
            except sqlite3.Error as exc:
                self._connection = self._fall_back_to_memory(
                    f"catalog delete failed: {exc}"
                )

    def _decode_row(self, row, host: Hypergraph | None) -> CatalogRecord | None:
        """Decode and (for positive entries) validate one row.

        ``host`` is the caller's hypergraph for `get` lookups; for
        enumeration it is ``None`` and the stored HIF instance is used.
        Any decode or validation failure yields ``None`` — the row is not
        to be trusted.
        """
        (
            namespace,
            canonical_hash,
            k,
            configuration,
            algorithm,
            success,
            kind_name,
            certificate,
            hif_text,
            stats_text,
            wall_seconds,
            created_at,
            code_version,
            validated,
        ) = row
        try:
            hypergraph = host if host is not None else from_hif(hif_text)
            stats = _statistics_from_payload(stats_text)
            root: DecompositionNode | None = None
            kind: type = HypertreeDecomposition
            if success:
                decomposition = decomposition_from_json(hypergraph, certificate)
                if decomposition.kind != kind_name:
                    return None
                if isinstance(decomposition, HypertreeDecomposition):
                    validate_hd(decomposition)
                else:
                    validate_ghd(decomposition)
                if decomposition.width > k:
                    return None
                root = decomposition.root
                kind = type(decomposition)
            else:
                kind = class_for_kind(kind_name)
        except (ReproError, ValueError, TypeError, KeyError):
            return None
        return CatalogRecord(
            namespace=namespace,
            canonical_hash=canonical_hash,
            k=int(k),
            algorithm=algorithm,
            success=bool(success),
            root=root,
            kind=kind,
            stats=stats,
            hypergraph=hypergraph,
            wall_seconds=float(wall_seconds),
            created_at=created_at,
            code_version=code_version,
            validated=bool(validated),
            configuration=configuration,
        )

    def _writer_loop(self) -> None:
        while True:
            pending = self._queue.get()
            try:
                self._write(pending)
            finally:
                with self._drained:
                    self._pending -= 1
                    if self._pending == 0:
                        self._drained.notify_all()

    def _write(self, pending: _PendingWrite) -> None:
        from .. import __version__

        validated = False
        certificate = None
        kind_name = kind_of(pending.kind) if pending.decomposition is None else ""
        try:
            if pending.decomposition is not None:
                # Validate before persisting: a row in the catalog is a
                # *trusted-at-store-time* certificate, and the check runs on
                # the writer thread, off the serving hot path.
                if isinstance(pending.decomposition, HypertreeDecomposition):
                    validate_hd(pending.decomposition)
                else:
                    validate_ghd(pending.decomposition)
                validated = True
                certificate = json.dumps(
                    decomposition_to_dict(pending.decomposition), sort_keys=True
                )
                kind_name = pending.decomposition.kind
        except ReproError:
            logger.warning(
                "refusing to store an invalid certificate for %s (k=%d)",
                pending.canonical_hash[:12],
                pending.k,
            )
            with self._lock:
                self._stats.errors += 1
            return

        row = (
            self.namespace,
            pending.canonical_hash,
            pending.k,
            pending.configuration,
            pending.algorithm,
            int(pending.success),
            kind_name,
            certificate,
            json.dumps(to_hif(pending.hypergraph), sort_keys=True),
            _statistics_payload(pending.stats),
            pending.wall_seconds,
            datetime.now(timezone.utc).isoformat(timespec="seconds"),
            __version__,
            int(validated),
        )
        with self._lock:
            if self._closed:
                return
            try:
                cursor = self._connection.execute(
                    "INSERT OR IGNORE INTO entries (namespace, canonical_hash, k, "
                    "configuration, algorithm, success, kind, certificate, hypergraph, "
                    "statistics, wall_seconds, created_at, code_version, validated) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    row,
                )
                self._connection.commit()
                if cursor.rowcount:
                    self._stats.stores += 1
                else:
                    # Another handle/process stored the key first: the
                    # INSERT OR IGNORE race resolution, not an error.
                    self._stats.duplicate_stores += 1
            except sqlite3.Error as exc:
                self._connection = self._fall_back_to_memory(
                    f"catalog write failed: {exc}"
                )
