"""Maintenance CLI for the durable decomposition catalog.

Usage::

    python -m repro.catalog list   my.db [--namespace NS] [--all-namespaces]
    python -m repro.catalog show   my.db HASH_PREFIX [--namespace NS]
    python -m repro.catalog evict  my.db [--namespace NS] [--hash PREFIX] [--k K]
    python -m repro.catalog vacuum my.db

``list`` prints one line per entry; ``show`` prints the provenance of a
single entry, the stored instance in HIF JSON, and (for positive entries)
the decomposition tree; ``evict`` deletes matching rows; ``vacuum``
reclaims their space.  All commands address one namespace (default
``default``) except ``list --all-namespaces``.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..decomp.decomposition import Decomposition
from ..exceptions import ReproError
from ..hypergraph.io import to_hif
from .store import CatalogRecord, DecompositionCatalog

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.catalog",
        description="Inspect and maintain a durable decomposition catalog.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("path", help="the catalog SQLite file")
        p.add_argument(
            "--namespace", default="default", help="namespace to address (default: default)"
        )

    list_parser = sub.add_parser("list", help="list catalog entries")
    common(list_parser)
    list_parser.add_argument(
        "--all-namespaces",
        action="store_true",
        help="list entries of every namespace in the file",
    )
    list_parser.add_argument("--k", type=int, default=None, help="filter by width bound k")

    show_parser = sub.add_parser("show", help="show one entry in full")
    common(show_parser)
    show_parser.add_argument("hash_prefix", help="canonical-hash prefix of the entry")
    show_parser.add_argument("--k", type=int, default=None, help="disambiguate by k")

    evict_parser = sub.add_parser("evict", help="delete matching entries")
    common(evict_parser)
    evict_parser.add_argument("--hash", default="", help="canonical-hash prefix filter")
    evict_parser.add_argument("--k", type=int, default=None, help="width-bound filter")

    vacuum_parser = sub.add_parser("vacuum", help="reclaim space of evicted rows")
    common(vacuum_parser)
    return parser


def _entry_line(record: CatalogRecord) -> str:
    outcome = f"width<={record.k}" if record.success else f"no-hd(k={record.k})"
    return (
        f"{record.namespace:<12} {record.canonical_hash[:12]}  k={record.k}  "
        f"{outcome:<12} {record.kind.kind:<4} {record.algorithm:<10} "
        f"{record.created_at}  v{record.code_version}"
    )


def _cmd_list(catalog: DecompositionCatalog, args: argparse.Namespace) -> int:
    namespaces = (
        catalog.namespaces() if args.all_namespaces else [args.namespace]
    )
    total = 0
    for namespace in namespaces:
        for record in catalog.entries(namespace, k=args.k):
            print(_entry_line(record))
            total += 1
    print(f"{total} entr{'y' if total == 1 else 'ies'}")
    return 0


def _cmd_show(catalog: DecompositionCatalog, args: argparse.Namespace) -> int:
    records = catalog.entries(args.namespace, hash_prefix=args.hash_prefix, k=args.k)
    if not records:
        print(
            f"no entry matching {args.hash_prefix!r} in namespace {args.namespace!r}",
            file=sys.stderr,
        )
        return 1
    if len(records) > 1:
        print(
            f"{len(records)} entries match {args.hash_prefix!r}; "
            "narrow the prefix or pass --k:",
            file=sys.stderr,
        )
        for record in records:
            print(_entry_line(record), file=sys.stderr)
        return 1
    record = records[0]
    print(f"namespace:      {record.namespace}")
    print(f"canonical hash: {record.canonical_hash}")
    print(f"k:              {record.k}")
    print(f"algorithm:      {record.algorithm}")
    print(f"configuration:  {record.configuration}")
    print(f"outcome:        {'decomposition found' if record.success else 'no decomposition'}")
    print(f"kind:           {record.kind.kind}")
    print(f"stored:         {record.created_at} (code version {record.code_version})")
    print(f"wall seconds:   {record.wall_seconds:.6f}")
    print(f"validated:      {'yes' if record.validated else 'no'}")
    print()
    print("instance (HIF):")
    print(json.dumps(to_hif(record.hypergraph), indent=2, sort_keys=True))
    if record.root is not None:
        print()
        print("decomposition:")
        print(Decomposition(record.hypergraph, record.root).describe())
    return 0


def _cmd_evict(catalog: DecompositionCatalog, args: argparse.Namespace) -> int:
    removed = catalog.evict(args.namespace, hash_prefix=args.hash, k=args.k)
    print(f"evicted {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


def _cmd_vacuum(catalog: DecompositionCatalog, args: argparse.Namespace) -> int:
    catalog.vacuum()
    print("vacuumed")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "show": _cmd_show,
    "evict": _cmd_evict,
    "vacuum": _cmd_vacuum,
}


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    try:
        with DecompositionCatalog(args.path, namespace=args.namespace) as catalog:
            if catalog.stats().memory_fallback:
                print(f"cannot open catalog file {args.path!r}", file=sys.stderr)
                return 1
            return _COMMANDS[args.command](catalog, args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
