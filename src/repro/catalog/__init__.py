"""Durable decomposition catalog: SQLite-backed L2 cache with provenance.

See :mod:`repro.catalog.store` for the design notes; ``python -m
repro.catalog`` is the maintenance CLI (list / show / evict / vacuum).
"""

from .store import CatalogRecord, CatalogStats, DecompositionCatalog, configuration_text

__all__ = [
    "DecompositionCatalog",
    "CatalogRecord",
    "CatalogStats",
    "configuration_text",
]
