"""A thread-safe serving layer over the decomposition pipeline and query engine.

:class:`DecompositionService` multiplexes many concurrent callers onto one
:class:`~repro.pipeline.engine.DecompositionEngine` and one
:class:`~repro.query.workload.QueryEngine`.  Three mechanisms turn the
single-caller library into something that can sit behind traffic:

* **Sharded caches** — the engine result cache, the compiled-plan cache and
  the per-database column stores are lock-striped
  (:class:`~repro.lru.ShardedLRU`), so concurrent cache hits on different
  keys never serialise on a global lock.  The service adds its own sharded
  memo of completed results for a submit-time fast path that bypasses the
  queue entirely.
* **In-flight deduplication** — concurrent requests for the same
  ``(canonical hash, k, algorithm configuration)`` coalesce onto one
  computation: followers attach a ticket to the in-flight task and all
  tickets are released together when it completes.  Under duplicate-heavy
  traffic the expensive search runs exactly once per distinct key.
* **Batched priority scheduling** — requests drain through a bounded worker
  pool from a priority queue; interactive answers (boolean / count queries)
  are served ahead of full enumeration, with FIFO order within a priority
  class.

Per-request timeouts ride on the engine's deadline machinery, and
cancellation reuses the cancellation-event plumbing of
:mod:`repro.core.parallel`: cancelling the last ticket of a task sets its
event and the running computation — decomposition search or columnar query
execution alike — aborts at its next periodic check.

Two execution backends share this front end: ``backend="thread"`` (the
default) runs tasks on in-process worker threads against one shared engine;
``backend="process"`` dispatches them to long-lived worker processes with
cache-affinity routing and batch admission
(:mod:`repro.service.process_backend`), buying real multi-core scaling for
CPU-bound traffic.

Example::

    >>> from repro.hypergraph import generators
    >>> from repro.service import DecompositionService
    >>> with DecompositionService(num_workers=2) as service:
    ...     ticket = service.submit(generators.cycle(6), 2)
    ...     result = ticket.result()
    >>> result.success
    True
    >>> service.stats().completed
    1
"""

from __future__ import annotations

import queue as pyqueue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from itertools import count

from .. import faults
from ..core.base import DecompositionResult
from ..exceptions import ServiceError, SolverError, TimeoutExceeded
from ..hypergraph import Hypergraph
from ..lru import ShardStats, ShardedLRU
from ..pipeline.engine import DecompositionEngine, default_engine
from ..pipeline.registry import PRIMITIVE_OPTION_TYPES, registry
from ..query.plan import AnswerMode
from ..query.workload import QueryEngine, QueryResult, query_signature
from .process_backend import ProcessBackend

__all__ = [
    "PRIORITY_INTERACTIVE",
    "PRIORITY_NORMAL",
    "PRIORITY_BULK",
    "ServiceStats",
    "ServiceTicket",
    "DecompositionService",
]

#: Scheduling classes: lower value drains first.  Boolean/count queries are
#: interactive (a client is waiting on a yes/no or a number), decomposition
#: decisions sit in the middle, full enumeration is bulk work.
PRIORITY_INTERACTIVE = 0
PRIORITY_NORMAL = 1
PRIORITY_BULK = 2

_SHUTDOWN_PRIORITY = 1 << 30


class _Task:
    """One scheduled computation; possibly shared by many coalesced tickets."""

    __slots__ = (
        "key",
        "priority",
        "run",
        "memoize",
        "tickets",
        "done",
        "cancel_event",
        "cancelled",
        "started",
        "attempts",
        "counted",
        "result",
        "error",
        "error_tb",
        "request",
        "proc_seq",
    )

    def __init__(self, key: tuple, priority: int, run, memoize: bool) -> None:
        self.key = key
        self.priority = priority
        self.run = run
        self.memoize = memoize
        #: Process-backend payloads: the prepared codec request (set at
        #: admission) and the dispatch sequence number the worker knows the
        #: task by (set at dispatch; the cancel ring targets it).
        self.request = None
        self.proc_seq: int | None = None
        self.tickets: list[ServiceTicket] = []
        self.done = threading.Event()
        self.cancel_event = threading.Event()
        self.cancelled = False
        self.started = False
        #: Number of times this task crashed its worker (not counting
        #: ordinary failures, which finalize on the first delivery); the
        #: poison-quarantine threshold compares against it.
        self.attempts = 0
        #: Whether this task was already counted as a computation — crash
        #: retries re-run the same logical computation, so it counts once.
        self.counted = False
        self.result = None
        self.error: BaseException | None = None
        #: The worker-side traceback captured at finalize time.  Re-raising
        #: through :meth:`ServiceTicket.result` restores it on every raise,
        #: so coalesced waiters each see the pristine worker frames instead
        #: of an ever-growing chain of re-raise frames on the shared
        #: exception instance.
        self.error_tb = None


class ServiceTicket:
    """A future-like handle on one submitted request.

    Tickets attached to the same in-flight computation share its outcome;
    :meth:`result` blocks until the computation finishes (or the wait
    times out), :meth:`cancel` detaches this ticket — the underlying
    computation is only aborted once *every* attached ticket has cancelled,
    so one impatient caller never tears down work others still wait on.
    """

    __slots__ = ("_service", "_task", "submitted_at", "cancelled")

    def __init__(self, service: "DecompositionService", task: _Task, submitted_at: float) -> None:
        self._service = service
        self._task = task
        self.submitted_at = submitted_at
        self.cancelled = False

    @property
    def key(self) -> tuple:
        """The deduplication key this request was scheduled under."""
        return self._task.key

    def done(self) -> bool:
        """Whether the outcome is available (never blocks)."""
        return self._task.done.is_set()

    def result(self, timeout: float | None = None):
        """The request's outcome, waiting up to ``timeout`` seconds for it.

        Raises :class:`~repro.exceptions.TimeoutExceeded` if the wait (not
        the computation) times out, :class:`~repro.exceptions.ServiceError`
        if this ticket was cancelled, and re-raises the worker's exception
        if the computation itself failed — with the worker-side traceback
        restored, so the frames that actually failed are debuggable from
        the caller.  Like :meth:`concurrent.futures.Future.result`,
        coalesced tickets re-raise the *same* exception instance — don't
        mutate it (e.g. via ``add_note``) if other waiters may still
        observe it.
        """
        if self.cancelled:
            raise ServiceError("request was cancelled")
        if not self._task.done.wait(timeout):
            raise TimeoutExceeded("timed out waiting for the service result")
        if self.cancelled:
            # Cancelled by another thread while we were blocked waiting; a
            # cancelled-and-skipped task finalizes with result=None, so
            # returning would hand the caller nothing instead of the
            # documented error.
            raise ServiceError("request was cancelled")
        error = self._task.error
        if error is not None:
            # ``raise error`` alone would *append* this frame to the shared
            # instance's traceback on every coalesced waiter's call;
            # restoring the traceback captured at finalize time keeps each
            # raise anchored at the worker frames that actually failed.
            raise error.with_traceback(self._task.error_tb)
        return self._task.result

    def cancel(self) -> bool:
        """Detach from the computation; returns False if already finished.

        The computation's cancellation event is only set once no attached
        ticket remains.  A still-queued task is then dropped before it
        runs; a *running* task — decomposition search or query execution
        alike — aborts at its next periodic cancellation check (the
        columnar executor polls the event inside its semijoin/join
        kernels, mirroring the searches).  Under the process backend the
        signal reaches the worker through its slot's cancel ring.  The
        two outcomes are distinguished in :meth:`DecompositionService.stats`:
        ``cancelled`` counts every cancelled ticket, ``cancelled_running``
        additionally counts the computations that were already executing
        when their last ticket cancelled.
        """
        return self._service._cancel_ticket(self)


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    index = min(len(samples) - 1, int(fraction * (len(samples) - 1) + 0.5))
    return samples[index]


@dataclass
class ServiceStats:
    """A point-in-time snapshot of the service's serving behaviour."""

    submitted: int = 0
    completed: int = 0
    computations: int = 0
    computations_by_kind: dict = field(default_factory=dict)
    coalesced: int = 0
    fast_path_hits: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Of the fully-cancelled computations, how many were already executing
    #: when their last ticket cancelled (aborted in flight via the
    #: cancellation event / cancel ring, not dropped from the queue).
    cancelled_running: int = 0
    queue_depth: int = 0
    inflight: int = 0
    workers: int = 0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    #: Aggregate of the decomposition searches' kernel counters (labels
    #: tried, splitter/bitset memo hits, mask-table builds, ...) summed over
    #: every computation this service actually ran.
    search_counters: dict = field(default_factory=dict)
    result_memo: ShardStats = field(default_factory=ShardStats)
    engine_cache: ShardStats = field(default_factory=ShardStats)
    engine_cache_shards: list[ShardStats] = field(default_factory=list)
    #: Traffic of the engine's durable L2 tier (``None`` without a catalog):
    #: a :class:`repro.catalog.CatalogStats` with hit / miss /
    #: validate-reject / store counters and the memory-fallback flag.
    catalog: object | None = None
    #: The resilience snapshot (PR 8): worker liveness, crash / respawn /
    #: requeue / quarantine counters, process-backend respawns, and the
    #: catalog circuit breaker's state — everything the chaos suite asserts
    #: recovery on.
    health: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """A JSON-friendly rendering (used by ``python -m repro.serve``)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "computations": self.computations,
            "computations_by_kind": dict(self.computations_by_kind),
            "coalesced": self.coalesced,
            "fast_path_hits": self.fast_path_hits,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "cancelled_running": self.cancelled_running,
            "queue_depth": self.queue_depth,
            "inflight": self.inflight,
            "workers": self.workers,
            "latency_p50_ms": self.latency_p50 * 1000.0,
            "latency_p95_ms": self.latency_p95 * 1000.0,
            "search_counters": dict(self.search_counters),
            "result_memo_hit_rate": self.result_memo.hit_rate,
            "engine_cache_hit_rate": self.engine_cache.hit_rate,
            "engine_cache_shards": [
                {"hits": s.hits, "misses": s.misses, "hit_rate": s.hit_rate}
                for s in self.engine_cache_shards
            ],
            "catalog": self.catalog.as_dict() if self.catalog is not None else None,
            "health": dict(self.health),
        }


class DecompositionService:
    """Concurrent facade over the decomposition pipeline and query engine.

    Parameters
    ----------
    num_workers:
        Size of the worker pool draining the request queue.
    backend:
        ``"thread"`` (default) runs tasks on a pool of threads sharing the
        engine in-process; ``"process"`` dispatches them to long-lived
        worker processes, each with its own warm engine/query-engine/column
        stores, routed by cache affinity (see
        :mod:`repro.service.process_backend`).  Thread mode keeps zero IPC
        cost and shares one cache; process mode buys real multi-core
        scaling for CPU-bound traffic at the price of shipping inputs
        across the boundary (hypergraphs/databases ship once per worker).
    workers:
        Alias for ``num_workers`` (takes precedence when both are given) —
        reads naturally next to ``backend``.
    engine:
        The shared :class:`~repro.pipeline.engine.DecompositionEngine`;
        defaults to the process-wide engine, so results are shared with
        direct library callers.
    algorithm / algorithm_options:
        Default registry algorithm (and options) for decomposition requests;
        both can be overridden per :meth:`submit`.  A ``timeout`` option
        here becomes the default per-request computation timeout.
    query_engine:
        An explicit :class:`~repro.query.workload.QueryEngine` for query
        requests; by default one is built lazily over ``engine``.
    result_memo_entries:
        Capacity of the service's sharded completed-result memo (the
        submit-time fast path).
    latency_window:
        Number of most recent request latencies kept for the p50/p95
        snapshot.
    poison_threshold:
        Number of worker crashes (exceptions escaping task execution — not
        ordinary failures, which finalize on first delivery) after which a
        task is quarantined: finalized as failed with a descriptive
        :class:`ServiceError` instead of retried forever or left hanging.
    """

    def __init__(
        self,
        num_workers: int = 4,
        engine: DecompositionEngine | None = None,
        algorithm: str = "hybrid",
        query_engine: QueryEngine | None = None,
        result_memo_entries: int = 4096,
        latency_window: int = 2048,
        poison_threshold: int = 3,
        backend: str = "thread",
        workers: int | None = None,
        **algorithm_options,
    ) -> None:
        if workers is not None:
            num_workers = workers
        if num_workers < 1:
            raise ServiceError("num_workers must be >= 1")
        if poison_threshold < 1:
            raise ServiceError("poison_threshold must be >= 1")
        if backend not in {"thread", "process"}:
            raise ServiceError(f"unknown service backend {backend!r}")
        self.backend = backend
        self.poison_threshold = poison_threshold
        self.engine = engine if engine is not None else default_engine()
        self.algorithm = algorithm
        # timeout is handled as an explicit parameter everywhere downstream
        # (submit, configuration_key, registry.build, QueryEngine); leaving
        # it inside algorithm_options would collide with those keywords.
        self.default_timeout = algorithm_options.pop("timeout", None)
        self.algorithm_options = dict(algorithm_options)
        self.num_workers = num_workers

        self._queue: pyqueue.PriorityQueue = pyqueue.PriorityQueue()
        self._seq = count()
        self._lock = threading.Lock()
        self._inflight: dict[tuple, _Task] = {}
        self._results = ShardedLRU(result_memo_entries)
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._closed = False

        self._submitted = 0
        self._completed = 0
        self._computations = 0
        self._computations_by_kind: dict[str, int] = {}
        self._coalesced = 0
        self._fast_path_hits = 0
        self._failed = 0
        self._cancelled = 0
        self._cancelled_running = 0
        self._worker_crashes = 0
        self._worker_respawns = 0
        self._tasks_requeued = 0
        self._quarantined = 0
        #: Aggregated search-kernel counters of every decomposition computed
        #: by this service (see SearchStatistics.search_counters): cache and
        #: memo-served requests do not add to them, so the snapshot reflects
        #: the actual kernel work done, not the request volume.
        self._search_counters: dict[str, int] = {}

        self._query_engine = query_engine
        self._query_engine_lock = threading.Lock()

        if backend == "process":
            # No thread pool: the backend's dispatcher thread drains the
            # same priority queue and the collector finalizes through
            # _complete, so dedup/memoization/supervision stay in one place.
            self._workers: list[threading.Thread] = []
            self._process_backend: ProcessBackend | None = ProcessBackend(
                self, num_workers
            )
        else:
            self._process_backend = None
            self._workers = [
                threading.Thread(
                    target=self._worker_loop, name=f"repro-service-{i}", daemon=True
                )
                for i in range(num_workers)
            ]
            for worker in self._workers:
                worker.start()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        hypergraph: Hypergraph,
        k: int,
        *,
        algorithm: str | None = None,
        timeout: float | None = None,
        priority: int | None = None,
        **options,
    ) -> ServiceTicket:
        """Schedule ``decompose(hypergraph, k)`` and return a ticket.

        ``timeout`` bounds the *computation* (enforced by the engine's
        deadline machinery; a timed-out request completes with
        ``result.timed_out``), not the caller's wait.  Requests for the
        same ``(canonical hash, k, configuration)`` key are deduplicated:
        already-completed keys return an immediately-done ticket from the
        sharded result memo, in-flight keys coalesce onto the running
        computation.

        Coalesced and memo-served callers share one
        :class:`~repro.core.base.DecompositionResult` object (hosted on the
        hypergraph of the request that computed it — by construction an
        edge-for-edge equal instance); treat it as read-only, as concurrent
        callers do.  Requests carrying non-primitive option values (e.g. a
        metric *instance*) are never shared: their configuration identity
        cannot be compared safely, so they bypass dedup and memoization.
        """
        if hypergraph.num_edges == 0:
            raise SolverError("cannot decompose a hypergraph without edges")
        name = algorithm if algorithm is not None else self.algorithm
        # Service-level options are tailored to the service's default
        # algorithm; a per-request override of a *different* algorithm must
        # not inherit them (it may not accept those keywords at all).
        if registry.resolve(name) == registry.resolve(self.algorithm):
            merged = {**self.algorithm_options, **options}
        else:
            merged = dict(options)
        # A timeout inside **options would collide with the explicit
        # keyword below; fold it into the timeout parameter instead.
        # Precedence: explicit argument > per-request option > service default.
        if timeout is None:
            timeout = merged.pop("timeout", None)
        else:
            merged.pop("timeout", None)
        if timeout is None:
            timeout = self.default_timeout
        configuration = registry.configuration_key(name, timeout=timeout, **merged)
        key = ("decompose", hypergraph.canonical_hash(), k, configuration)
        memoize = True
        if not all(
            isinstance(value, PRIMITIVE_OPTION_TYPES) for value in merged.values()
        ):
            # configuration_key collapses object-valued options (e.g. a
            # hybrid metric instance) to their type name, so two requests
            # with differently-parameterized objects of one class would
            # collide.  Make such requests unique instead of risking a
            # wrong shared result: no cross-request dedup or memoization.
            key = key + ("unshared", next(self._seq))
            memoize = False
        submitted_at = time.monotonic()

        request = None
        if self._process_backend is not None:
            # Raises ServiceError for option values that cannot cross the
            # process boundary (anything but str/int/float/bool/None).
            request = self._process_backend.decompose_request(
                hypergraph, name, k, timeout, merged
            )

        def run(cancel_event):
            decomposer = registry.build(name, timeout=timeout, **merged)
            return self.engine.decompose(decomposer, hypergraph, k, cancel_event=cancel_event)

        return self._admit(
            key,
            run,
            submitted_at,
            memoize=memoize,
            priority=PRIORITY_NORMAL if priority is None else priority,
            request=request,
        )

    def submit_query(
        self,
        query,
        database,
        mode: AnswerMode | str = AnswerMode.ENUMERATE,
        *,
        executor: str = "columnar",
        timeout: float | None = None,
        priority: int | None = None,
    ) -> ServiceTicket:
        """Schedule a conjunctive query; the ticket resolves to a
        :class:`~repro.query.workload.QueryResult` (thread backend) or a
        :class:`~repro.query.workload.QueryAnswer` (process backend) — the
        read surface (``mode``/``answers``/``boolean``/``count``/``width``)
        is shared.

        Boolean and count queries are scheduled at interactive priority,
        ahead of full enumeration.  Identical concurrent (query shape,
        mode, database, timeout) requests coalesce; completed query results
        are not memoized by the service — the plan cache and the database's
        column store already make repeats cheap, and the memo would have to
        pin the database alive.  Cancelling a query ticket before the task
        starts removes it from the queue; once executing, the columnar
        executor aborts at its next periodic cancellation check and the
        SQL executor interrupts its in-flight statement (see
        :meth:`ServiceTicket.cancel`).  ``timeout`` bounds the execution
        stage the same way (the ticket then raises
        :class:`~repro.exceptions.TimeoutExceeded`).

        ``executor`` selects the query engine's execution arm
        (``"columnar"`` or ``"sql"``); with the process backend, a
        path-backed :class:`~repro.query.sqlgen.SQLDatabase` ships as its
        *path* token, so on-disk databases larger than memory never cross
        the worker pipe.
        """
        mode = AnswerMode.coerce(mode)
        if executor not in ("columnar", "sql"):
            raise ServiceError(
                f"unknown executor {executor!r}; known: columnar, sql"
            )
        query_engine = self._resolve_query_engine()
        if priority is None:
            priority = (
                PRIORITY_INTERACTIVE if mode.is_interactive else PRIORITY_BULK
            )
        # id(database) is safe here because the key is only used for
        # *in-flight* dedup: the task references the database, so its id
        # cannot be recycled while the key is live.
        key = (
            "query",
            query_signature(query),
            mode.value,
            query_engine.configuration,
            id(database),
            timeout,
            executor,
        )
        submitted_at = time.monotonic()

        request = None
        if self._process_backend is not None:
            # Raises ServiceError when the database holds values that
            # cannot cross the process boundary (non-JSON-scalar tuples).
            request = self._process_backend.query_request(
                query, database, mode, timeout, executor=executor
            )

        def run(cancel_event) -> QueryResult:
            return query_engine.execute(
                query,
                database,
                mode,
                executor=executor,
                cancel_event=cancel_event,
                timeout=timeout,
            )

        return self._admit(
            key, run, submitted_at, memoize=False, priority=priority, request=request
        )

    def map(self, hypergraphs, k: int, **options) -> list[DecompositionResult]:
        """Submit many decomposition requests and gather results in order."""
        tickets = [self.submit(h, k, **options) for h in hypergraphs]
        return [ticket.result() for ticket in tickets]

    def _admit(
        self,
        key: tuple,
        run,
        submitted_at: float,
        *,
        memoize: bool,
        priority: int,
        request=None,
    ) -> ServiceTicket:
        if not isinstance(priority, int) or priority >= _SHUTDOWN_PRIORITY:
            # A priority sorting behind the shutdown sentinels would make
            # the task undrainable and its tickets unresolvable.
            raise ServiceError(f"priority out of range: {priority!r}")
        with self._lock:
            if self._closed:
                raise ServiceError("service is shut down")
            self._submitted += 1
            task = self._inflight.get(key)
            if task is not None and not task.cancelled:
                ticket = ServiceTicket(self, task, submitted_at)
                task.tickets.append(ticket)
                self._coalesced += 1
                if priority < task.priority and not task.started:
                    # A more urgent caller joined a queued task: escalate by
                    # re-enqueueing at the stronger priority.  The stale
                    # queue entry is skipped when dequeued (_execute ignores
                    # tasks that already started or finished).
                    task.priority = priority
                    self._queue.put((priority, next(self._seq), task))
                return ticket
            if memoize:
                # Probe the completed-result memo under the lock.  Workers
                # memoize BEFORE dropping the in-flight entry, so a key is
                # always either in flight, memoized, or genuinely new —
                # there is no window in which a decided key gets recomputed.
                cached = self._results.get(key)
                if cached is not None:
                    self._fast_path_hits += 1
                    self._completed += 1
                    self._latencies.append(time.monotonic() - submitted_at)
                    done_task = _Task(key, priority, run=None, memoize=False)
                    done_task.result = cached
                    done_task.done.set()
                    return ServiceTicket(self, done_task, submitted_at)
            task = _Task(key, priority, run, memoize)
            task.request = request
            ticket = ServiceTicket(self, task, submitted_at)
            task.tickets.append(ticket)
            self._inflight[key] = task
            self._queue.put((priority, next(self._seq), task))
            return ticket

    # ------------------------------------------------------------------ #
    # worker pool
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        """Drain tasks until the shutdown sentinel arrives — supervised.

        :meth:`_execute` converts *task* failures into ticket outcomes, so
        nothing should escape it; but an exception that does (the
        ``service.worker`` fault point injects exactly that, simulating a
        bug in the dispatch path itself) would kill the thread and silently
        shrink the pool.  The supervisor instead hands the task to
        :meth:`_supervise_crash` (requeue / quarantine / fail) and revives
        the worker in place — the pool never shrinks and no ticket is left
        hanging.
        """
        while True:
            _priority, _seq, task = self._queue.get()
            if task is None:
                return
            try:
                faults.fire("service.worker", kind=task.key[0], attempt=task.attempts)
                self._execute(task)
            except BaseException as exc:
                self._supervise_crash(task, exc)

    def _supervise_crash(self, task: _Task, exc: BaseException) -> None:
        """A task crashed its worker: requeue it, quarantine it, or fail it.

        Runs on the reviving worker thread.  A key that keeps crashing
        workers is poison — after ``poison_threshold`` crashes it is
        finalized as failed with a descriptive error chaining the last
        crash, instead of being retried forever or leaving its tickets
        hanging.
        """
        with self._lock:
            self._worker_crashes += 1
            self._worker_respawns += 1
            if task.done.is_set():
                return
            task.attempts += 1
            task.started = False
            if task.cancelled:
                self._finalize_locked(task, None, None)
                return
            if task.attempts >= self.poison_threshold:
                self._quarantined += 1
                error: BaseException = ServiceError(
                    f"request {task.key[0]!r} key quarantined after "
                    f"{task.attempts} worker crash(es); last crash: {exc!r}"
                )
                error.__cause__ = exc
                self._finalize_locked(task, None, error)
                return
            if self._closed:
                # The sentinels may already be drained; a requeued task
                # could sit in the queue forever with no worker coming back
                # for it.  Fail it loudly instead of hanging its tickets.
                error = ServiceError("service shut down while retrying a crashed request")
                error.__cause__ = exc
                self._finalize_locked(task, None, error)
                return
            self._tasks_requeued += 1
            self._queue.put((task.priority, next(self._seq), task))

    def _execute(self, task: _Task) -> None:
        with self._lock:
            if task.started or task.done.is_set():
                return  # stale queue entry from a priority escalation
            if task.cancelled:
                self._finalize_locked(task, None, None)
                return
            task.started = True
            if not task.counted:
                # Crash retries re-execute the same logical computation;
                # counting it once keeps the exactly-once accounting
                # (computations <= distinct keys) honest under chaos.
                task.counted = True
                self._computations += 1
                kind = task.key[0]
                self._computations_by_kind[kind] = (
                    self._computations_by_kind.get(kind, 0) + 1
                )
        try:
            result = task.run(task.cancel_event)
            error = None
        except BaseException as exc:  # surfaced through the tickets
            result, error = None, exc
        self._complete(task, result, error)

    def _complete(self, task: _Task, result, error) -> None:
        """Deliver a task outcome (thread workers and the process-backend
        collector share this tail: memo, counter merge, finalize)."""
        # Memoize BEFORE the task leaves the in-flight table: a concurrent
        # submit that misses the in-flight entry re-probes the memo under
        # the service lock, so there is no window in which a duplicate
        # computation can be scheduled for a decided key.
        if (
            task.memoize
            and error is None
            and result is not None
            and not task.cancelled
            and not getattr(result, "timed_out", False)
        ):
            self._results.put(task.key, result)
        with self._lock:
            statistics = getattr(result, "statistics", None)
            if statistics is not None and hasattr(statistics, "search_counters"):
                counters = self._search_counters
                for counter, value in statistics.search_counters().items():
                    counters[counter] = counters.get(counter, 0) + value
            self._finalize_locked(task, result, error)

    def _finalize_locked(self, task: _Task, result, error) -> None:
        """Publish a task outcome; the caller holds ``self._lock``."""
        now = time.monotonic()
        # Conditional pop: a cancelled task may already have been replaced
        # by a fresh computation under the same key.
        if self._inflight.get(task.key) is task:
            del self._inflight[task.key]
        task.result = result
        task.error = error
        # Pin the worker-side traceback now: each ServiceTicket.result()
        # re-raise restores it, so coalesced waiters don't stack re-raise
        # frames onto the shared instance.
        task.error_tb = error.__traceback__ if error is not None else None
        # Counters are per *ticket* (request), so that eventually
        # submitted == completed + failed + cancelled holds; individually
        # cancelled tickets were already counted by _cancel_ticket.
        if task.cancelled:
            self._cancelled += len(task.tickets)
        elif error is not None:
            self._failed += len(task.tickets)
            for ticket in task.tickets:
                self._latencies.append(now - ticket.submitted_at)
        else:
            self._completed += len(task.tickets)
            for ticket in task.tickets:
                self._latencies.append(now - ticket.submitted_at)
        task.done.set()

    def _cancel_ticket(self, ticket: ServiceTicket) -> bool:
        task = ticket._task
        with self._lock:
            if task.done.is_set():
                return False
            ticket.cancelled = True
            if ticket in task.tickets:
                task.tickets.remove(ticket)
                self._cancelled += 1
            if not task.tickets:
                task.cancelled = True
                task.cancel_event.set()
                if task.started:
                    # Aborting a computation that is already executing —
                    # distinct from dropping a queued one.  The running
                    # search/executor observes the event (thread backend)
                    # or the cancel ring (process backend) at its next
                    # periodic check.
                    self._cancelled_running += 1
                    if self._process_backend is not None:
                        self._process_backend.request_cancel(task)
            return True

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def _resolve_query_engine(self) -> QueryEngine:
        with self._query_engine_lock:
            if self._query_engine is None:
                self._query_engine = QueryEngine(
                    algorithm=self.algorithm,
                    engine=self.engine,
                    timeout=self.default_timeout,
                    **self.algorithm_options,
                )
            return self._query_engine

    def stats(self) -> ServiceStats:
        """A consistent snapshot of counters, cache traffic and latency."""
        backend = self._process_backend
        with self._lock:
            # Only copy under the lock; the O(n log n) percentile sort runs
            # outside so high-frequency monitoring polls never stall
            # submits or worker finalization.
            samples = list(self._latencies)
            if backend is not None:
                workers_alive = backend.alive_workers()
            else:
                workers_alive = sum(1 for worker in self._workers if worker.is_alive())
            stats = ServiceStats(
                submitted=self._submitted,
                completed=self._completed,
                computations=self._computations,
                computations_by_kind=dict(self._computations_by_kind),
                coalesced=self._coalesced,
                fast_path_hits=self._fast_path_hits,
                failed=self._failed,
                cancelled=self._cancelled,
                cancelled_running=self._cancelled_running,
                queue_depth=self._queue.qsize(),
                inflight=len(self._inflight),
                workers=self.num_workers,
                search_counters=dict(self._search_counters),
                health={
                    "backend": self.backend,
                    "workers_alive": workers_alive,
                    "workers_total": self.num_workers,
                    "worker_crashes": self._worker_crashes,
                    "worker_respawns": self._worker_respawns,
                    "tasks_requeued": self._tasks_requeued,
                    "quarantined": self._quarantined,
                    # Replacement *processes* spawned by a supervisor: the
                    # parallel backend's respawns aggregated over this
                    # service's computations (SearchStatistics.worker_respawns)
                    # plus, under the process backend, its own slot respawns.
                    "process_worker_respawns": self._search_counters.get(
                        "worker_respawns", 0
                    )
                    + (backend.respawns if backend is not None else 0),
                    "catalog_circuit": None,
                },
            )
        if backend is not None:
            stats.health["process_backend"] = backend.snapshot()
        samples.sort()
        stats.latency_p50 = _percentile(samples, 0.50)
        stats.latency_p95 = _percentile(samples, 0.95)
        stats.result_memo = self._results.stats()
        cache = self.engine.cache
        if cache is not None:
            stats.engine_cache_shards = cache.shard_statistics()
            for shard in stats.engine_cache_shards:
                stats.engine_cache.merge(shard)
        catalog = getattr(self.engine, "catalog", None)
        if catalog is not None:
            stats.catalog = catalog.stats()
            if backend is not None:
                # The durable tier is shared; fold every worker handle's
                # latest traffic snapshot into the parent's so hit/miss and
                # circuit counters reflect the whole pool.
                stats.catalog = backend.merged_catalog_stats(stats.catalog)
            stats.health["catalog_circuit"] = {
                "state": stats.catalog.circuit_state,
                "opens": stats.catalog.circuit_opens,
                "probes": stats.catalog.circuit_probes,
                "reattaches": stats.catalog.circuit_reattaches,
                "retries": stats.catalog.retries,
                "memory_fallback": stats.catalog.memory_fallback,
            }
        return stats

    def catalog_probe(self) -> bool:
        """Probe the durable catalog tier on every handle this service owns.

        The parent's handle probes directly; under the process backend the
        probe also fans out to each worker's handle (an open worker-side
        circuit breaker only re-attaches when probed).  Returns True iff
        every probed handle is healthy.
        """
        catalog = getattr(self.engine, "catalog", None)
        ok = catalog.probe() if catalog is not None else True
        if self._process_backend is not None:
            ok = self._process_backend.broadcast_probe() and ok
        return ok

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting requests and wind the worker pool down.

        With ``wait=True`` (default) the queue drains first and every
        outstanding ticket resolves.  ``cancel_pending=True`` instead fails
        queued-but-unstarted requests with :class:`ServiceError` and asks
        running searches to abort via their cancellation events.

        Idempotent: only the first call closes, drains and posts the worker
        sentinels, but *every* call with ``wait=True`` joins the workers —
        so ``shutdown(wait=False)`` followed by ``shutdown(wait=True)``
        (e.g. the implicit one from ``with``) still blocks until the pool
        has wound down.
        """
        with self._lock:
            first = not self._closed
            self._closed = True
        if first and cancel_pending:
            while True:
                try:
                    _priority, _seq, task = self._queue.get_nowait()
                except pyqueue.Empty:
                    break
                if task is None:
                    continue
                with self._lock:
                    # Skip stale entries left behind by priority escalation
                    # (same guard as _execute): a started task is the
                    # running worker's to finalize, a done one already was.
                    if task.started or task.done.is_set():
                        continue
                    task.cancelled = True
                    task.cancel_event.set()
                    self._finalize_locked(
                        task, None, ServiceError("service shut down before the request ran")
                    )
            with self._lock:
                for task in list(self._inflight.values()):
                    task.cancel_event.set()
            if self._process_backend is not None:
                # Dispatched requests poll the pool-wide abort event inside
                # their worker-side cancel views; the event reaches them
                # where the parent-side task events cannot.
                self._process_backend.abort_inflight()
        if first:
            if self._process_backend is not None:
                # One sentinel: the dispatcher is the only queue consumer.
                # It sorts behind every admissible priority, so the queue
                # drains before the dispatcher exits.
                self._queue.put((_SHUTDOWN_PRIORITY, next(self._seq), None))
                self._process_backend.begin_shutdown()
            else:
                for _ in self._workers:
                    self._queue.put((_SHUTDOWN_PRIORITY, next(self._seq), None))
        if wait:
            for worker in self._workers:
                worker.join()
            if self._process_backend is not None:
                self._process_backend.join()

    def __enter__(self) -> "DecompositionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)
