"""The concurrent serving layer: sharded caches, dedup, batched scheduling.

See :mod:`repro.service.service` for the design; the short version is that
:class:`DecompositionService` lets many threads share one decomposition
pipeline and one query engine, with concurrent requests for the same work
coalesced onto a single computation.
"""

from .service import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    PRIORITY_NORMAL,
    DecompositionService,
    ServiceStats,
    ServiceTicket,
)

__all__ = [
    "PRIORITY_INTERACTIVE",
    "PRIORITY_NORMAL",
    "PRIORITY_BULK",
    "DecompositionService",
    "ServiceStats",
    "ServiceTicket",
]
