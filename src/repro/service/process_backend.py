"""Process-pool execution backend for :class:`DecompositionService`.

The thread backend shares one interpreter, so CPU-bound decomposition
search and query execution serialise on the GIL.  This backend dispatches
admitted tasks to long-lived **worker processes**, each holding its own
warm :class:`~repro.pipeline.engine.DecompositionEngine` /
:class:`~repro.query.workload.QueryEngine` / column-store state:

* **Cache-affinity routing** — the admission key (canonical hash, k,
  configuration for decompositions; query signature, mode, database for
  queries) hashes onto a fixed worker slot, so a worker's local memos and
  column stores stay hot for the keys it owns.  The shared L2 catalog
  remains the cross-process durability tier; the parent keeps the
  exactly-once in-flight dedup, so coalescing semantics are unchanged.
* **Batch admission** — a dispatcher thread drains the service's priority
  queue in small batches per dispatch, amortising one IPC round trip over
  several requests while preserving priority order (the queue itself is
  the priority structure; the batch is whatever is ready right now).
* **Shipped-once payloads** — hypergraphs and databases cross the
  boundary through :mod:`repro.core.codec` exactly once per worker slot
  (tracked per slot in ``shipped_*`` sets); requests reference them by
  canonical hash / token, so a fat instance is not re-pickled per request.
* **Cancellation side-channel** — each slot owns a small shared ring of
  request sequence numbers; the worker folds it (via
  :class:`~repro.core.parallel.EitherEvent`) with the pool-wide stop and
  abort events into the per-request cancel signal that the decomposition
  search and the columnar executor poll.  ``ServiceTicket.cancel()`` on a
  running request therefore aborts it promptly in this backend too.
* **Crash supervision** — a worker process that dies without reporting is
  respawned on the same slot (affinity routing is stable across respawns);
  its orphaned tasks go through the service's existing requeue /
  quarantine path, and the fresh worker gets the payloads re-shipped.
  Results travel over a **per-slot pipe with exactly one writer** rather
  than a shared ``mp.Queue``: a queue's writers serialise on a shared
  write lock, and a worker killed between ``send_bytes`` and the lock
  release (SIGTERM lands there routinely on a loaded single-core host)
  would take that lock to the grave and silently starve every sibling's
  results.  Single-writer pipes need no lock at all, and the parent's
  framed non-blocking reads mean a half-written frame from a dying
  worker can never block the collector; respawns get a fresh pipe.

Lock ordering: the backend never takes the service lock while holding its
own lock (the service may call into the backend under *its* lock — e.g.
``_cancel_ticket`` → :meth:`ProcessBackend.request_cancel`).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as pyqueue
import select
import threading
import time
import traceback
import weakref
import zlib
from itertools import count

from .. import faults
from ..catalog import CatalogStats
from ..core import codec
from ..core.parallel import EitherEvent
from ..exceptions import ParseError, ServiceError
from ..pipeline.engine import DecompositionEngine
from ..pipeline.registry import registry
from ..query.plan import AnswerMode
from ..query.workload import QueryAnswer, QueryEngine

__all__ = ["ProcessBackend"]

#: Maximum tasks drained per dispatch; small enough that priority inversion
#: within a batch is bounded, large enough to amortise the IPC round trip.
_BATCH_LIMIT = 4
#: Entries in the per-slot cancel ring.  Cancels are rare; the ring only
#: needs to cover the requests concurrently visible to one worker.
_CANCEL_RING = 8
#: Collector poll interval; also bounds crash-detection latency.
_POLL_INTERVAL = 0.05
#: Consecutive empty sweeps before a non-alive worker counts as crashed
#: (its last result may still be in flight through the queue feeder).
_DEAD_STRIKES = 2


def _write_frame(fd: int, message) -> None:
    """Ship one length-prefixed pickle over a result pipe (worker side).

    The pipe has exactly one writer, so frames never interleave and no
    lock is needed — which is the point: a shared write lock is exactly
    what a SIGTERM'd sibling could hold forever.
    """
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    view = memoryview(len(data).to_bytes(4, "big") + data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _drain_frames(buffer: bytearray) -> list:
    """Pop every complete frame off a slot's read buffer (parent side).

    A trailing partial frame — all a dying worker can leave behind —
    simply stays buffered until the sweep replaces the pipe, so the
    collector never blocks on a truncated message.
    """
    messages = []
    while True:
        if len(buffer) < 4:
            break
        size = int.from_bytes(buffer[:4], "big")
        if len(buffer) < 4 + size:
            break
        messages.append(pickle.loads(bytes(buffer[4 : 4 + size])))
        del buffer[: 4 + size]
    return messages


class _Request:
    """A prepared process-boundary request (parent side).

    ``payload`` is the codec request dict, ``decode`` turns the worker's
    answer payload back into the caller-facing result.  ``graph_key`` /
    ``graph_payload`` and ``db_token`` / ``db_payload`` carry the
    ship-once-per-slot attachments.
    """

    __slots__ = (
        "payload",
        "decode",
        "graph_key",
        "graph_payload",
        "db_token",
        "db_payload",
    )

    def __init__(
        self,
        payload: dict,
        decode,
        graph_key: str | None = None,
        graph_payload: dict | None = None,
        db_token: str | None = None,
        db_payload: dict | None = None,
    ) -> None:
        self.payload = payload
        self.decode = decode
        self.graph_key = graph_key
        self.graph_payload = graph_payload
        self.db_token = db_token
        self.db_payload = db_payload


class _RingCancel:
    """Worker-side ``is_set`` view over the slot's shared cancel ring."""

    __slots__ = ("ring", "seq")

    def __init__(self, ring, seq: int) -> None:
        self.ring = ring
        self.seq = seq

    def is_set(self) -> bool:
        return self.seq in self.ring[:]


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #
def _worker_meta(slot, attempt, served, engine):
    cache = engine.cache
    hits = misses = 0
    if cache is not None:
        for shard in cache.shard_statistics():
            hits += shard.hits
            misses += shard.misses
    catalog = engine.catalog
    return {
        "pid": os.getpid(),
        "slot": slot,
        "attempt": attempt,
        "served": served,
        "engine_cache": {"hits": hits, "misses": misses},
        "catalog": catalog.stats().as_dict() if catalog is not None else None,
        "faults_injected": (
            faults.installed().injected_counts() if faults.installed() else {}
        ),
    }


def _run_request(request: dict, engine, query_engine, graphs, databases, cancel):
    decoded = codec.service_request_from_dict(request)
    if decoded["kind"] == "decompose":
        graph = graphs.get(decoded["hypergraph"])
        if graph is None:
            raise ServiceError(
                f"hypergraph {decoded['hypergraph']!r} was never shipped to this worker"
            )
        decomposer = registry.build(
            decoded["algorithm"], timeout=decoded["timeout"], **decoded["options"]
        )
        result = engine.decompose(
            decomposer, graph, decoded["k"], cancel_event=cancel
        )
        return codec.decomposition_answer_to_dict(result)
    database = databases.get(decoded["database"])
    if database is None:
        raise ServiceError(
            f"database {decoded['database']!r} was never shipped to this worker"
        )
    mode = AnswerMode.coerce(decoded["mode"])
    result = query_engine.execute(
        decoded["query"],
        database,
        mode,
        executor=decoded["executor"],
        cancel_event=cancel,
        timeout=decoded["timeout"],
    )
    return codec.query_answer_to_dict(
        mode=mode.value,
        answers=result.answers,
        boolean=result.boolean,
        count=result.count,
        width=result.width,
        plan_cached=result.plan_cached,
        plan_seconds=result.plan_seconds,
        execution_seconds=result.execution_seconds,
        statistics=result.execution.statistics.as_dict(),
    )


def _worker_main(
    slot: int,
    attempt: int,
    config: dict,
    request_queue,
    result_fd: int,
    stop_event,
    abort_event,
    cancel_ring,
) -> None:
    """Long-lived worker: warm engines, drain batches, ship answers back.

    The worker owns a private engine stack (result cache, plan cache,
    column stores) plus its own handle on the shared L2 catalog; batch
    messages carry the parent's fault spec so chaos schedules behave
    identically across the boundary.  Answers go back over this slot's
    private result pipe (``result_fd`` rides across the fork), so the
    backend requires the ``fork`` start method.
    """
    engine = DecompositionEngine(catalog=config["catalog_path"])
    query_engine = QueryEngine(
        algorithm=config["algorithm"],
        engine=engine,
        timeout=config["timeout"],
        **config["options"],
    )
    graphs: dict[str, object] = {}
    databases: dict[str, object] = {}
    served = 0
    # Under fork the child inherits the parent's installed injector; start
    # the fingerprint from it so only a genuinely *changed* spec re-installs
    # (a re-install resets per-rule ``times`` budgets).
    spec = faults.current_spec()
    installed_fingerprint = repr(spec) if spec is not None else None

    def meta():
        return _worker_meta(slot, attempt, served, engine)

    try:
        while True:
            try:
                message = request_queue.get(timeout=0.2)
            except pyqueue.Empty:
                if stop_event.is_set():
                    return
                continue
            if message is None:
                return
            if message["type"] == "probe":
                catalog = engine.catalog
                ok = catalog.probe() if catalog is not None else True
                _write_frame(
                    result_fd, ("probe", slot, message["probe_id"], ok, None, meta())
                )
                continue

            spec = message.get("spec")
            fingerprint = repr(spec) if spec is not None else None
            if fingerprint != installed_fingerprint:
                if spec is None:
                    faults.uninstall()
                else:
                    faults.install_spec(spec)
                installed_fingerprint = fingerprint

            items = message["items"]
            try:
                for graph_key, payload in message["graphs"].items():
                    if graph_key not in graphs:
                        graphs[graph_key] = codec.hypergraph_from_dict(payload)
                for token, payload in message["databases"].items():
                    if token not in databases:
                        databases[token] = codec.database_from_dict(payload)
                # The chaos point of this backend: fired once per batch, so
                # a ``kill`` rule takes the whole worker down mid-flight and
                # exercises the respawn + re-ship + requeue path.
                faults.fire("service.process", slot=slot, attempt=attempt)
            except BaseException as exc:
                text = traceback.format_exc()
                for item in items:
                    _write_frame(
                        result_fd,
                        (
                            "result",
                            slot,
                            item["seq"],
                            "error",
                            codec.error_to_dict(exc, text),
                            meta(),
                        ),
                    )
                continue
            for item in items:
                seq = item["seq"]
                cancel = EitherEvent(
                    EitherEvent(stop_event, abort_event), _RingCancel(cancel_ring, seq)
                )
                try:
                    status, payload = "ok", _run_request(
                        item["request"], engine, query_engine, graphs, databases, cancel
                    )
                except BaseException as exc:
                    status, payload = "error", codec.error_to_dict(
                        exc, traceback.format_exc()
                    )
                served += 1
                _write_frame(result_fd, ("result", slot, seq, status, payload, meta()))
    finally:
        # The write-behind queue of this worker's catalog handle would be
        # dropped with the process; drain it so decided outcomes reach the
        # shared durable tier.
        if engine.catalog is not None:
            try:
                engine.catalog.flush()
                engine.catalog.close()
            except Exception:
                pass


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #
class _Slot:
    """Parent-side state of one worker slot (stable across respawns)."""

    __slots__ = (
        "index",
        "process",
        "queue",
        "ring",
        "ring_cursor",
        "result_rfd",
        "result_wfd",
        "rbuf",
        "attempt",
        "dispatched",
        "completed",
        "shipped_graphs",
        "shipped_dbs",
        "strikes",
        "meta",
    )

    def __init__(self, index: int, queue, ring) -> None:
        self.index = index
        self.process = None
        self.queue = queue
        self.ring = ring
        self.ring_cursor = 0
        self.result_rfd, self.result_wfd = os.pipe()
        self.rbuf = bytearray()
        self.attempt = 0
        self.dispatched = 0
        self.completed = 0
        self.shipped_graphs: set[str] = set()
        self.shipped_dbs: set[str] = set()
        self.strikes = 0
        self.meta: dict | None = None


class ProcessBackend:
    """The process pool, its dispatcher/collector threads, and supervision."""

    def __init__(self, service, num_workers: int, batch_limit: int = _BATCH_LIMIT) -> None:
        for option, value in service.algorithm_options.items():
            if not isinstance(value, codec._SCALAR_TYPES):
                raise ServiceError(
                    f"service option {option!r} holds a non-scalar value of type "
                    f"{type(value).__name__}; the process backend only accepts "
                    "str/int/float/bool/None option values"
                )
        self._service = service
        self.num_workers = num_workers
        self.batch_limit = batch_limit
        catalog = getattr(service.engine, "catalog", None)
        self._config = {
            "algorithm": service.algorithm,
            "timeout": service.default_timeout,
            "options": dict(service.algorithm_options),
            "catalog_path": str(catalog.path) if catalog is not None else None,
        }
        # Result pipes ride across the fork as raw file descriptors, so
        # the backend is pinned to the fork start method (the repo targets
        # Linux, where it is also the default).
        self._ctx = mp.get_context("fork")
        self._stop_event = self._ctx.Event()
        self._abort_event = self._ctx.Event()
        self._lock = threading.Lock()
        self._seq = count(1)
        self._outstanding: dict[int, object] = {}
        self._outstanding_slot: dict[int, int] = {}
        self._precancelled: set = set()
        self._probe_results: dict[str, bool | None] = {}
        self._db_tokens: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._db_counter = count(1)
        self._stopping = threading.Event()
        self._workers_stopped = False
        self.respawns = 0

        self._slots = [
            _Slot(i, self._ctx.Queue(), self._ctx.Array("q", [-1] * _CANCEL_RING))
            for i in range(num_workers)
        ]
        for slot in self._slots:
            slot.process = self._spawn(slot)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-service-collect", daemon=True
        )
        self._dispatcher.start()
        self._collector.start()

    def _spawn(self, slot: _Slot):
        # Daemonic so a crashed parent never leaks workers; consequently a
        # worker cannot itself spawn processes — submit parallel-backend
        # decompositions with ``backend="thread"`` under this backend.
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                slot.index,
                slot.attempt,
                self._config,
                slot.queue,
                slot.result_wfd,
                self._stop_event,
                self._abort_event,
                slot.ring,
            ),
            daemon=True,
            name=f"repro-service-worker-{slot.index}",
        )
        process.start()
        return process

    # ------------------------------------------------------------------ #
    # request preparation (runs on the submitting thread)
    # ------------------------------------------------------------------ #
    def decompose_request(
        self, hypergraph, algorithm: str, k: int, timeout: float | None, options: dict
    ) -> _Request:
        graph_key = hypergraph.canonical_hash()
        try:
            payload = codec.decompose_request_to_dict(
                canonical_hash=graph_key,
                k=k,
                algorithm=algorithm,
                timeout=timeout,
                options=options,
            )
        except ParseError as exc:
            raise ServiceError(str(exc)) from exc

        def decode(answer, _hypergraph=hypergraph):
            return codec.decomposition_answer_from_dict(_hypergraph, answer)

        return _Request(
            payload,
            decode,
            graph_key=graph_key,
            graph_payload=codec.hypergraph_to_dict(hypergraph),
        )

    def query_request(
        self,
        query,
        database,
        mode: AnswerMode,
        timeout: float | None,
        executor: str = "columnar",
    ) -> _Request:
        token, db_payload = self._database_payload(database)
        payload = codec.query_request_to_dict(
            query=query,
            mode=mode.value,
            database=token,
            timeout=timeout,
            executor=executor,
        )

        def decode(answer):
            fields = codec.query_answer_from_dict(answer)
            return QueryAnswer(
                mode=AnswerMode.coerce(fields["mode"]),
                answers=fields["answers"],
                boolean=fields["boolean"],
                count=fields["count"],
                width=fields["width"],
                plan_cached=fields["plan_cached"],
                plan_seconds=fields["plan_seconds"],
                execution_seconds=fields["execution_seconds"],
                statistics=fields["statistics"],
            )

        return _Request(
            payload, decode, db_token=token, db_payload=db_payload
        )

    def _database_payload(self, database) -> tuple[str, dict]:
        # Weakly keyed: tokens are unique counters, so a recycled id() can
        # never alias a previous database, and dead databases drop their
        # cached payloads with them.  Encoding happens once per database.
        with self._lock:
            entry = self._db_tokens.get(database)
            if entry is None:
                try:
                    payload = codec.database_to_dict(database)
                except ParseError as exc:
                    raise ServiceError(str(exc)) from exc
                entry = (f"db-{next(self._db_counter)}", payload)
                self._db_tokens[database] = entry
            return entry

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def slot_for(self, key: tuple) -> int:
        """Cache-affinity routing: one admission key, one worker slot."""
        return zlib.crc32(repr(key).encode("utf-8")) % self.num_workers

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        service = self._service
        stopping = False
        while not stopping:
            batch = []
            _priority, _seq, task = service._queue.get()
            if task is None:
                stopping = True
            else:
                batch.append(task)
                # Batch admission: whatever else is ready right now (up to
                # the limit) rides the same IPC round trip.  The shutdown
                # sentinel sorts behind every real priority, so draining it
                # here means the queue was already empty of work.
                while len(batch) < self.batch_limit:
                    try:
                        _p, _s, extra = service._queue.get_nowait()
                    except pyqueue.Empty:
                        break
                    if extra is None:
                        stopping = True
                        break
                    batch.append(extra)
            if batch:
                self._dispatch(batch)

    def _dispatch(self, batch) -> None:
        service = self._service
        per_slot: dict[int, list] = {}
        for task in batch:
            with service._lock:
                if task.started or task.done.is_set():
                    continue  # stale queue entry from a priority escalation
                if task.cancelled:
                    service._finalize_locked(task, None, None)
                    continue
                task.started = True
                if not task.counted:
                    task.counted = True
                    service._computations += 1
                    kind = task.key[0]
                    service._computations_by_kind[kind] = (
                        service._computations_by_kind.get(kind, 0) + 1
                    )
            try:
                # Same dispatch-path fault point the thread workers fire, so
                # chaos schedules written for one backend hit the other.
                faults.fire("service.worker", kind=task.key[0], attempt=task.attempts)
            except BaseException as exc:
                service._supervise_crash(task, exc)
                continue
            per_slot.setdefault(self.slot_for(task.key), []).append(task)
        if not per_slot:
            return
        spec = faults.current_spec()
        with self._lock:
            for slot_index, tasks in per_slot.items():
                slot = self._slots[slot_index]
                items, graphs, dbs = [], {}, {}
                for task in tasks:
                    seq = next(self._seq)
                    task.proc_seq = seq
                    request = task.request
                    if (
                        request.graph_key is not None
                        and request.graph_key not in slot.shipped_graphs
                    ):
                        graphs[request.graph_key] = request.graph_payload
                        slot.shipped_graphs.add(request.graph_key)
                    if (
                        request.db_token is not None
                        and request.db_token not in slot.shipped_dbs
                    ):
                        dbs[request.db_token] = request.db_payload
                        slot.shipped_dbs.add(request.db_token)
                    self._outstanding[seq] = task
                    self._outstanding_slot[seq] = slot_index
                    slot.dispatched += 1
                    items.append({"seq": seq, "request": request.payload})
                    if task in self._precancelled:
                        # cancel() ran between admission and seq assignment;
                        # both paths hold this lock, so the ring write here
                        # closes the race.
                        self._precancelled.discard(task)
                        self._write_cancel_locked(slot, seq)
                slot.queue.put(
                    {
                        "type": "batch",
                        "spec": spec,
                        "items": items,
                        "graphs": graphs,
                        "databases": dbs,
                    }
                )

    # ------------------------------------------------------------------ #
    # collector
    # ------------------------------------------------------------------ #
    def _collect_loop(self) -> None:
        # The per-slot read fds are mutated only by ``_sweep_dead`` (which
        # runs on this thread) and closed only after this thread has been
        # joined, so the select set needs no locking.
        service = self._service
        last_sweep = time.monotonic()
        while True:
            fds = [slot.result_rfd for slot in self._slots]
            ready, _, _ = select.select(fds, [], [], _POLL_INTERVAL)
            ready_fds = set(ready)
            messages = []
            for slot in self._slots:
                if slot.result_rfd not in ready_fds:
                    continue
                chunk = os.read(slot.result_rfd, 1 << 16)
                if chunk:
                    slot.rbuf += chunk
                    messages.extend(_drain_frames(slot.rbuf))
            now = time.monotonic()
            if not messages or now - last_sweep > _POLL_INTERVAL:
                last_sweep = now
                self._sweep_dead()
                if (
                    not messages
                    and self._stopping.is_set()
                    and not self._dispatcher.is_alive()
                ):
                    with self._lock:
                        idle = not self._outstanding
                    if idle:
                        return
            for message in messages:
                self._handle_message(message)

    def _handle_message(self, message) -> None:
        service = self._service
        kind, slot_index, ref, status, payload, meta = message
        if kind == "probe":
            with self._lock:
                self._slots[slot_index].meta = meta
                if ref in self._probe_results:
                    self._probe_results[ref] = bool(status)
            return
        with self._lock:
            task = self._outstanding.pop(ref, None)
            self._outstanding_slot.pop(ref, None)
            slot = self._slots[slot_index]
            slot.meta = meta
            slot.strikes = 0
            if task is not None:
                slot.completed += 1
        if task is None:
            return  # stale twin from a slot that was respawned
        result = error = None
        if status == "ok":
            try:
                result = task.request.decode(payload)
            except Exception as exc:
                error = ServiceError("failed to decode a worker answer payload")
                error.__cause__ = exc
        else:
            error = codec.error_from_dict(payload)
        service._complete(task, result, error)

    def _sweep_dead(self) -> None:
        orphans = []
        stale_queues = []
        stale_fds = []
        with self._lock:
            if self._workers_stopped:
                return
            for slot in self._slots:
                if slot.process.is_alive():
                    slot.strikes = 0
                    continue
                slot.strikes += 1
                if slot.strikes < _DEAD_STRIKES:
                    continue
                exit_code = slot.process.exitcode
                dead = [
                    seq
                    for seq, index in self._outstanding_slot.items()
                    if index == slot.index
                ]
                tasks = []
                for seq in dead:
                    tasks.append(self._outstanding.pop(seq))
                    del self._outstanding_slot[seq]
                # The fresh worker starts with cold caches and no shipped
                # payloads; clearing the ship ledger makes the requeued
                # tasks re-attach their hypergraphs/databases.
                slot.shipped_graphs.clear()
                slot.shipped_dbs.clear()
                # A worker that died parked inside ``queue.get()`` (e.g. a
                # SIGTERM, as opposed to the fault injector's controlled
                # ``os._exit`` mid-batch) takes the queue's reader lock to
                # the grave — a successor reading the same queue would
                # block forever.  Same story for the cancel-ring lock.
                # Respawned slots therefore get fresh primitives; pending
                # messages on the old queue are exactly the orphans being
                # requeued, so nothing is lost.
                stale_queues.append(slot.queue)
                slot.queue = self._ctx.Queue()
                slot.ring = self._ctx.Array("q", [-1] * _CANCEL_RING)
                slot.ring_cursor = 0
                # The result pipe gets the same treatment: the dead worker
                # may have left a half-written frame behind, which would
                # desync the successor's frames on a reused pipe.
                stale_fds.extend((slot.result_rfd, slot.result_wfd))
                slot.result_rfd, slot.result_wfd = os.pipe()
                slot.rbuf = bytearray()
                slot.strikes = 0
                slot.attempt += 1
                self.respawns += 1
                slot.process = self._spawn(slot)
                orphans.extend((task, exit_code) for task in tasks)
        for queue in stale_queues:
            queue.cancel_join_thread()
            queue.close()
        for fd in stale_fds:
            os.close(fd)
        for task, exit_code in orphans:
            self._service._supervise_crash(
                task,
                ServiceError(f"service worker process died (exit code {exit_code})"),
            )

    # ------------------------------------------------------------------ #
    # cancellation
    # ------------------------------------------------------------------ #
    def _write_cancel_locked(self, slot: _Slot, seq: int) -> None:
        ring = slot.ring
        with ring.get_lock():
            ring[slot.ring_cursor] = seq
            slot.ring_cursor = (slot.ring_cursor + 1) % _CANCEL_RING

    def request_cancel(self, task) -> None:
        """Abort a dispatched task worker-side (caller holds the service lock).

        Writes the task's sequence number into its slot's cancel ring; the
        worker's per-request cancel view polls the ring, so the running
        search/execution raises at its next periodic check.
        """
        with self._lock:
            seq = task.proc_seq
            if seq is None:
                self._precancelled.add(task)
                return
            slot_index = self._outstanding_slot.get(seq)
            if slot_index is None:
                return
            self._write_cancel_locked(self._slots[slot_index], seq)

    # ------------------------------------------------------------------ #
    # health / introspection
    # ------------------------------------------------------------------ #
    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for slot in self._slots if slot.process.is_alive())

    def snapshot(self) -> dict:
        """JSON-friendly per-slot view (feeds ``stats().health``)."""
        with self._lock:
            return {
                "workers": [
                    {
                        "slot": slot.index,
                        "pid": slot.process.pid,
                        "alive": slot.process.is_alive(),
                        "attempt": slot.attempt,
                        "dispatched": slot.dispatched,
                        "completed": slot.completed,
                        "engine_cache": (slot.meta or {}).get("engine_cache"),
                    }
                    for slot in self._slots
                ],
                "respawns": self.respawns,
                "batch_limit": self.batch_limit,
                "outstanding": len(self._outstanding),
            }

    def merged_catalog_stats(self, parent_stats) -> "CatalogStats":
        """Parent handle traffic + the latest snapshot of every worker's."""
        merged = CatalogStats()
        if parent_stats is not None:
            merged.merge(parent_stats)
        with self._lock:
            worker_stats = [
                (slot.meta or {}).get("catalog") for slot in self._slots
            ]
        for stats in worker_stats:
            if stats:
                merged.merge(CatalogStats(**stats))
        return merged

    def broadcast_probe(self, timeout: float = 10.0) -> bool:
        """Ask every live worker to probe its catalog handle.

        An open worker-side circuit breaker only re-attaches when probed;
        the service's ``catalog_probe()`` fans out here so operator probes
        reach worker handles too.  Returns True iff every live worker
        probed successfully.
        """
        with self._lock:
            probes: dict[str, None] = {}
            for slot in self._slots:
                if self._workers_stopped or not slot.process.is_alive():
                    continue
                probe_id = f"probe-{next(self._seq)}"
                self._probe_results[probe_id] = None
                probes[probe_id] = None
                slot.queue.put({"type": "probe", "probe_id": probe_id})
        deadline = time.monotonic() + timeout
        ok = True
        for probe_id in probes:
            while True:
                with self._lock:
                    outcome = self._probe_results.get(probe_id)
                if outcome is not None:
                    ok = ok and outcome
                    break
                if time.monotonic() > deadline:
                    ok = False
                    break
                time.sleep(0.02)
        with self._lock:
            for probe_id in probes:
                self._probe_results.pop(probe_id, None)
        return ok

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def abort_inflight(self) -> None:
        """Shutdown-with-cancel: every in-flight request aborts at its next
        periodic check (the abort event is folded into each cancel view)."""
        self._abort_event.set()

    def begin_shutdown(self) -> None:
        """Arm the collector's exit condition; the service has already posted
        the dispatcher's shutdown sentinel."""
        self._stopping.set()

    def join(self) -> None:
        """Wait for drain and stop the worker processes (idempotent)."""
        self._dispatcher.join()
        self._collector.join()
        self._stop_workers()

    def _stop_workers(self) -> None:
        with self._lock:
            if self._workers_stopped:
                return
            self._workers_stopped = True
            slots = list(self._slots)
        self._stop_event.set()
        for slot in slots:
            slot.queue.put(None)
        for slot in slots:
            slot.process.join(timeout=5.0)
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=1.0)
        for slot in slots:
            slot.queue.close()
            slot.queue.cancel_join_thread()
            os.close(slot.result_rfd)
            os.close(slot.result_wfd)
