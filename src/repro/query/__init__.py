"""Database application substrate: relations, joins, Yannakakis, CQ/CSP evaluation.

Three evaluation arms are provided: the eager, tuple-at-a-time reference
pipeline (:mod:`repro.query.yannakakis` over :class:`Relation`), the
plan-compiled columnar engine (:mod:`repro.query.plan` +
:mod:`repro.query.columnar`), and the SQL pushdown arm
(:mod:`repro.query.sqlgen`), which compiles the same plans to SQL executed
on SQLite so on-disk databases far larger than memory stay reachable — all
fronted by :class:`QueryEngine` / :class:`QueryWorkload` for serving whole
workloads with cached plans.
"""

from .relation import Relation
from .database import Database, random_database_for_query
from .joins import atom_relation, join_all, naive_join_query
from .yannakakis import AnnotatedNode, full_reduce, yannakakis
from .plan import AnswerMode, QueryPlan, compile_plan
from .columnar import (
    ColumnStore,
    ColumnarRelation,
    ExecutionResult,
    PlanExecutor,
    execute_plan,
)
from .cq_eval import EvaluationReport, evaluate_query, materialise_bags
from .sqlgen import (
    SQLDatabase,
    SQLProgram,
    SQLStore,
    compile_sql,
    dump_database,
    execute_plan_sql,
)
from .workload import (
    PlannedQuery,
    QueryEngine,
    QueryResult,
    QueryWorkload,
    WorkloadReport,
)
from .csp import (
    CSPSolution,
    DecompositionCSPSolver,
    backtracking_solve,
    csp_to_query,
)

__all__ = [
    "Relation",
    "Database",
    "random_database_for_query",
    "atom_relation",
    "join_all",
    "naive_join_query",
    "AnnotatedNode",
    "full_reduce",
    "yannakakis",
    "AnswerMode",
    "QueryPlan",
    "compile_plan",
    "ColumnStore",
    "ColumnarRelation",
    "ExecutionResult",
    "PlanExecutor",
    "execute_plan",
    "EvaluationReport",
    "evaluate_query",
    "materialise_bags",
    "SQLDatabase",
    "SQLProgram",
    "SQLStore",
    "compile_sql",
    "dump_database",
    "execute_plan_sql",
    "PlannedQuery",
    "QueryEngine",
    "QueryResult",
    "QueryWorkload",
    "WorkloadReport",
    "CSPSolution",
    "DecompositionCSPSolver",
    "backtracking_solve",
    "csp_to_query",
]
