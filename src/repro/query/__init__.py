"""Database application substrate: relations, joins, Yannakakis, CQ/CSP evaluation."""

from .relation import Relation
from .database import Database, random_database_for_query
from .joins import atom_relation, join_all, naive_join_query
from .yannakakis import AnnotatedNode, full_reduce, yannakakis
from .cq_eval import EvaluationReport, evaluate_query, materialise_bags
from .csp import (
    CSPSolution,
    DecompositionCSPSolver,
    backtracking_solve,
    csp_to_query,
)

__all__ = [
    "Relation",
    "Database",
    "random_database_for_query",
    "atom_relation",
    "join_all",
    "naive_join_query",
    "AnnotatedNode",
    "full_reduce",
    "yannakakis",
    "EvaluationReport",
    "evaluate_query",
    "materialise_bags",
    "CSPSolution",
    "DecompositionCSPSolver",
    "backtracking_solve",
    "csp_to_query",
]
