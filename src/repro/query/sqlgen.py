"""SQL pushdown execution of compiled query plans.

The third executor arm: a :class:`~repro.query.plan.QueryPlan` — already an
explicit operator program — compiles to a SQL program executed on SQLite
(DuckDB is recognised but optional; see :data:`HAS_DUCKDB`).  The planner and
decomposition layers stay untouched; only the operator interpretation moves
into the database engine, which is what lets databases far larger than
memory be answered with Yannakakis-over-SQL:

1. every atom becomes an indexed ``CREATE TEMP TABLE`` over its base table,
   projecting onto the atom's distinct variables and enforcing
   repeated-variable equality (mirrors
   :meth:`~repro.query.columnar.ColumnStore.atom_table`); indexes on the
   probed columns keep the correlated ``EXISTS`` probes at seek cost;
2. every :class:`~repro.query.plan.BagOp` materialises as
   ``CREATE TEMP TABLE bag_i AS SELECT DISTINCT ...`` joining the λ-cover
   views, with one ``EXISTS`` per assigned atom;
3. the bottom-up/top-down semijoin passes run as
   ``DELETE FROM bag_t WHERE NOT EXISTS (...)`` — the full reduction in
   place, no copies;
4. the plan's bottom-up join schedule compiles step by step — each
   :class:`~repro.query.plan.JoinOp` / :class:`~repro.query.plan.ProjectOp`
   becomes one ``CREATE TEMP TABLE res_k AS SELECT DISTINCT ...`` over the
   previous step's tables (never a flat n-way join, which SQLite caps at 64
   tables and misorders long before that), so every intermediate stays
   within Yannakakis' output-bounded guarantee; the answer then reads the
   root's result with mode-specific tails: a plain ``SELECT`` for
   ``enumerate``, ``EXISTS`` for ``boolean``, ``COUNT(*)`` for ``count``
   (rows are never decoded).

Two data sources are supported.  An in-memory
:class:`~repro.query.database.Database` is bulk-loaded once per
:class:`SQLStore` with every value interned to an integer code (the same
trick the columnar store uses), so SQL equality is exactly Python equality
and enumerate answers decode byte-identical to the other executors.  A
:class:`SQLDatabase` wraps an existing SQLite *file*: the executor opens the
file directly and rows never enter Python (except decoded answers), while
``get()`` still lazily materialises relations so the eager/columnar arms —
and the differential tests — accept the same handle.

All equality predicates use SQLite's null-safe ``IS`` operator, so ``None``
values join with themselves exactly as they do in the Python executors.

Cancellation mirrors the columnar ``_Watchdog``: an armed execution runs a
small watcher thread that calls :meth:`sqlite3.Connection.interrupt` when
the cancel event sets or the deadline passes, and the interrupted statement
surfaces as :class:`~repro.exceptions.TimeoutExceeded` with the same
messages — the serving layer's ``cancelled_running`` accounting works
unchanged.  Transient SQLite errors at the ``sqlgen.connect`` /
``sqlgen.exec`` fault points are retried per statement under a
:class:`~repro.faults.RetryPolicy` (each statement is atomic, so a retry can
never double-apply); interrupts are never retried.
"""

from __future__ import annotations

import sqlite3
import threading
import time
import weakref
from dataclasses import dataclass

from .. import faults
from ..exceptions import QueryError, TimeoutExceeded
from ..faults.resilience import RetryPolicy
from .columnar import ExecutionResult, ExecutionStatistics
from .database import Database
from .plan import AnswerMode, JoinOp, ProjectOp, QueryPlan
from .relation import Relation

try:  # Optional second dialect; CI images ship without it.
    import duckdb as _duckdb  # noqa: F401
except ImportError:  # pragma: no cover - exercised on duckdb-less installs
    _duckdb = None

#: Whether the optional DuckDB dialect is importable.  The SQLite program is
#: valid DuckDB SQL except for minor pragma differences; generation is kept
#: dialect-free so a DuckDB runner only needs a different connection factory.
HAS_DUCKDB = _duckdb is not None

__all__ = [
    "HAS_DUCKDB",
    "SQLProgram",
    "SQLDatabase",
    "SQLStore",
    "SQLExecutor",
    "compile_sql",
    "dump_database",
    "execute_plan_sql",
]

#: Watcher poll interval; bounds how late an interrupt lands.
_INTERRUPT_POLL = 0.02


def _quote(name: str) -> str:
    """Quote an arbitrary string as a SQL identifier."""
    return '"' + str(name).replace('"', '""') + '"'


@dataclass(frozen=True)
class SQLProgram:
    """A compiled, connection-independent SQL rendering of one plan.

    ``setup`` holds the atom views and bag ``CREATE``s in execution order;
    ``bottom_up``/``top_down`` pair each ``DELETE`` with its target bag table
    (for the post-delete emptiness probe); ``joins`` renders the plan's join
    schedule as ``CREATE TEMP TABLE res_k`` steps (each tagged ``"join"`` or
    ``"project"`` for statistics); ``answer`` is the final ``SELECT`` and
    ``answer_kind`` says how to interpret its single result — ``"rows"``
    (enumerate), ``"count"`` (a scalar count) or ``"exists"`` (a 0/1
    existence flag).  ``cleanup`` drops every temp object so the connection
    can be reused by the next query.
    """

    mode: AnswerMode
    output: tuple[str, ...]
    setup: tuple[str, ...]
    bag_tables: tuple[str, ...]
    bottom_up: tuple[tuple[str, str], ...]
    top_down: tuple[tuple[str, str], ...]
    joins: tuple[tuple[str, str], ...]
    answer: str
    answer_kind: str
    cleanup: tuple[str, ...]

    @property
    def statements(self) -> tuple[str, ...]:
        """Every statement of the program in execution order (answer last)."""
        return (
            self.setup
            + tuple(sql for sql, _ in self.bottom_up)
            + tuple(sql for sql, _ in self.top_down)
            + tuple(sql for sql, _ in self.joins)
            + (self.answer,)
        )

    def describe(self) -> str:
        """The SQL program as one script (cleanup omitted)."""
        return ";\n".join(self.statements) + ";"


def compile_sql(plan: QueryPlan, catalog: dict[str, tuple[str, tuple[str, ...]]]) -> SQLProgram:
    """Compile ``plan`` into a :class:`SQLProgram`.

    ``catalog`` maps each relation name used by the plan to its base table
    — ``(quoted SQL table reference, column names in schema order)`` — which
    is the only source-specific input: the interned in-memory tables and an
    attached database file compile through the same generator.
    """
    setup: list[str] = []
    # -- atom tables: project onto distinct variables, enforce repeats ------ #
    # Materialised (not views): the assigned-atom EXISTS probes below are
    # correlated subqueries, and SQLite re-evaluates a *view* body per outer
    # row — an indexed temp table turns each probe into one B-tree lookup.
    for index, binding in enumerate(plan.atoms):
        try:
            table, columns = catalog[binding.relation]
        except KeyError:
            raise QueryError(f"unknown relation {binding.relation!r}") from None
        if len(columns) != len(binding.arguments):
            raise QueryError(
                f"atom {binding.edge} has arity {len(binding.arguments)} but "
                f"relation {binding.relation!r} has arity {len(columns)}"
            )
        selects = []
        for variable in binding.variables:
            position = binding.arguments.index(variable)
            selects.append(f"{_quote(columns[position])} AS {_quote(variable)}")
        where = [
            f"{_quote(columns[i])} IS {_quote(columns[binding.arguments.index(v)])}"
            for i, v in enumerate(binding.arguments)
            if binding.arguments.index(v) != i
        ]
        sql = (
            f"CREATE TEMP TABLE atom_{index} AS "
            f"SELECT DISTINCT {', '.join(selects)} FROM {table}"
        )
        if where:
            sql += f" WHERE {' AND '.join(where)}"
        setup.append(sql)

    # -- bag materialisation ---------------------------------------------- #
    bag_tables: list[str] = []
    indexed: set[tuple[str, tuple[str, ...]]] = set()

    def ensure_index(table: str, columns: tuple[str, ...]) -> None:
        """Index ``table`` on ``columns`` (once) so correlated probes seek."""
        if not columns or (table, columns) in indexed:
            return
        indexed.add((table, columns))
        cols = ", ".join(_quote(c) for c in columns)
        setup.append(f"CREATE INDEX idx_{len(indexed)}_{table} ON {table} ({cols})")

    for bag in plan.bags:
        aliases = [f"c{j}" for j in range(len(bag.cover))]
        canonical: dict[str, str] = {}
        predicates: list[str] = []
        for alias, atom_index in zip(aliases, bag.cover):
            for variable in plan.atoms[atom_index].variables:
                first = canonical.get(variable)
                if first is None:
                    canonical[variable] = alias
                else:
                    predicates.append(
                        f"{alias}.{_quote(variable)} IS {first}.{_quote(variable)}"
                    )
        missing = [v for v in bag.variables if v not in canonical]
        if missing:
            raise QueryError(
                f"bag variables {missing} are not covered by the node's λ-label"
            )
        for atom_index in bag.assigned:
            binding = plan.atoms[atom_index]
            shared = [v for v in binding.variables if v in canonical]
            ensure_index(f"atom_{atom_index}", tuple(shared))
            inner = f"SELECT 1 FROM atom_{atom_index} AS e"
            if shared:
                inner += " WHERE " + " AND ".join(
                    f"e.{_quote(v)} IS {canonical[v]}.{_quote(v)}" for v in shared
                )
            predicates.append(f"EXISTS ({inner})")
        if bag.variables:
            select = ", ".join(
                f"{canonical[v]}.{_quote(v)} AS {_quote(v)}" for v in bag.variables
            )
        else:
            select = '1 AS "__unit__"'  # a 0-ary bag still has 0 or 1 rows
        sources = ", ".join(
            f"atom_{atom_index} AS {alias}"
            for alias, atom_index in zip(aliases, bag.cover)
        )
        table_name = f"bag_{bag.node}"
        sql = f"CREATE TEMP TABLE {table_name} AS SELECT DISTINCT {select} FROM {sources}"
        if predicates:
            sql += f" WHERE {' AND '.join(predicates)}"
        setup.append(sql)
        bag_tables.append(table_name)

    # -- the semijoin passes (full reduction, in place) -------------------- #
    def delete_for(op) -> tuple[str, str]:
        target, source = f"bag_{op.target}", f"bag_{op.source}"
        inner = f"SELECT 1 FROM {source}"
        if op.on:
            inner += " WHERE " + " AND ".join(
                f"{source}.{_quote(v)} IS {target}.{_quote(v)}" for v in op.on
            )
        return (f"DELETE FROM {target} WHERE NOT EXISTS ({inner})", target)

    bottom_up = tuple(delete_for(op) for op in plan.bottom_up)
    top_down = tuple(delete_for(op) for op in plan.top_down)
    # Each DELETE probes its *source* bag per surviving target row; an index
    # on the join columns makes that probe a seek instead of a scan.
    for op in plan.bottom_up + plan.top_down:
        ensure_index(f"bag_{op.source}", tuple(op.on))

    # -- the join schedule, one temp table per step ------------------------- #
    # The plan's bottom-up join schedule is compiled step by step rather than
    # as one flat SELECT over all bags: a flat join hands SQLite's planner an
    # n-way join (hard-capped at 64 tables, and catastrophically ordered well
    # before that on wide plans), while the schedule keeps every intermediate
    # bounded by Yannakakis' guarantee — each step retains only output
    # variables plus the parent bag's own.
    joins: list[tuple[str, str]] = []
    join_tables: list[str] = []
    current: dict[int, tuple[str, tuple[str, ...]]] = {}

    def node_state(node: int) -> tuple[str, tuple[str, ...]]:
        state = current.get(node)
        if state is None:
            state = (f"bag_{node}", plan.node_variables[node])
            current[node] = state
        return state

    def fresh_table() -> str:
        name = f"res_{len(join_tables)}"
        join_tables.append(name)
        return name

    if plan.mode is not AnswerMode.BOOLEAN:
        for op in plan.join_schedule:
            if isinstance(op, JoinOp):
                left_table, left_schema = node_state(op.target)
                right_table, _ = node_state(op.source)
                shared = tuple(v for v in left_schema if v in op.retain)
                extras = tuple(v for v in op.retain if v not in left_schema)
                name = fresh_table()
                if extras:
                    select = ", ".join(
                        [f"L.{_quote(v)} AS {_quote(v)}" for v in left_schema]
                        + [f"R.{_quote(v)} AS {_quote(v)}" for v in extras]
                    )
                    retained = ", ".join(_quote(v) for v in op.retain)
                    sql = (
                        f"CREATE TEMP TABLE {name} AS SELECT DISTINCT {select} "
                        f"FROM {left_table} AS L, "
                        f"(SELECT DISTINCT {retained} FROM {right_table}) AS R"
                    )
                    if shared:
                        sql += " WHERE " + " AND ".join(
                            f"L.{_quote(v)} IS R.{_quote(v)}" for v in shared
                        )
                    schema = left_schema + extras
                else:
                    # The child contributes no new columns — a pure semijoin.
                    inner = f"SELECT 1 FROM {right_table} AS R"
                    if shared:
                        inner += " WHERE " + " AND ".join(
                            f"R.{_quote(v)} IS L.{_quote(v)}" for v in shared
                        )
                    select = ", ".join(
                        f"L.{_quote(v)} AS {_quote(v)}" for v in left_schema
                    ) or '1 AS "__unit__"'
                    sql = (
                        f"CREATE TEMP TABLE {name} AS SELECT DISTINCT {select} "
                        f"FROM {left_table} AS L WHERE EXISTS ({inner})"
                    )
                    schema = left_schema
                joins.append((sql, "join"))
                current[op.target] = (name, schema)
            elif isinstance(op, ProjectOp):
                table, _ = node_state(op.node)
                name = fresh_table()
                if op.attributes:
                    select = ", ".join(_quote(v) for v in op.attributes)
                    sql = f"CREATE TEMP TABLE {name} AS SELECT DISTINCT {select} FROM {table}"
                else:
                    sql = (
                        f"CREATE TEMP TABLE {name} AS "
                        f'SELECT DISTINCT 1 AS "__unit__" FROM {table}'
                    )
                joins.append((sql, "project"))
                current[op.node] = (name, op.attributes)
            else:  # pragma: no cover - the schedule has exactly two op kinds
                raise QueryError(f"unknown join-schedule op {op!r}")

    # -- the final SELECT over the root's result ---------------------------- #
    if plan.mode is AnswerMode.BOOLEAN:
        # The plan stops after the bottom-up pass; a surviving root tuple
        # decides the query, so only the root bag is probed.
        answer = "SELECT EXISTS (SELECT 1 FROM bag_0)"
        answer_kind = "exists"
    else:
        root_table, _ = node_state(0)
        if not plan.output:
            answer = f"SELECT EXISTS (SELECT 1 FROM {root_table})"
            answer_kind = "exists"
        elif plan.mode is AnswerMode.COUNT:
            # Every schedule step selects DISTINCT, so rows are unique already.
            answer = f"SELECT COUNT(*) FROM {root_table}"
            answer_kind = "count"
        else:
            select = ", ".join(_quote(v) for v in plan.output)
            answer = f"SELECT {select} FROM {root_table}"
            answer_kind = "rows"

    cleanup = tuple(
        [f"DROP TABLE IF EXISTS {table}" for table in reversed(join_tables)]
        + [f"DROP TABLE IF EXISTS {table}" for table in bag_tables]
        + [f"DROP TABLE IF EXISTS atom_{index}" for index in range(len(plan.atoms))]
    )
    return SQLProgram(
        mode=plan.mode,
        output=plan.output,
        setup=tuple(setup),
        bag_tables=tuple(bag_tables),
        bottom_up=bottom_up,
        top_down=top_down,
        joins=tuple(joins),
        answer=answer,
        answer_kind=answer_kind,
        cleanup=cleanup,
    )


# --------------------------------------------------------------------------- #
# path-backed databases
# --------------------------------------------------------------------------- #
class SQLDatabase(Database):
    """A database living in a SQLite file, usable by *all three* executors.

    The schema catalogue (table names and columns) is read once at
    construction; :meth:`get` materialises a relation into memory lazily, so
    the eager and columnar arms — and the differential tests — accept the
    same handle, while the SQL executor opens :attr:`path` directly and
    never pulls base rows into Python.  The file is treated as read-only
    (only ``TEMP`` objects are ever created on its connections), and the
    process-backed serving layer ships the *path* as the payload token, so
    large files never cross the pipe.
    """

    def __init__(self, path) -> None:
        super().__init__()
        self.path = str(path)
        self._schemas: dict[str, tuple[str, ...]] = {}
        faults.fire("sqlgen.connect", path=self.path)
        connection = sqlite3.connect(self.path)
        try:
            tables = connection.execute(
                "SELECT name FROM sqlite_master "
                "WHERE type = 'table' AND name NOT LIKE 'sqlite_%'"
            ).fetchall()
            for (name,) in tables:
                info = connection.execute(f"PRAGMA table_info({_quote(name)})").fetchall()
                self._schemas[name] = tuple(row[1] for row in info)
        finally:
            connection.close()

    def table_columns(self, name: str) -> tuple[str, ...]:
        """Column names of relation ``name`` as stored in the file."""
        try:
            return self._schemas[name]
        except KeyError:
            raise QueryError(f"unknown relation {name!r}") from None

    def add(self, relation: Relation) -> None:
        raise QueryError("a SQLDatabase is read-only; relations live in the file")

    def get(self, name: str) -> Relation:
        relation = self._relations.get(name)
        if relation is not None:
            return relation
        columns = self.table_columns(name)
        select = ", ".join(_quote(c) for c in columns) or "1"
        connection = sqlite3.connect(self.path)
        try:
            rows = connection.execute(f"SELECT {select} FROM {_quote(name)}").fetchall()
        finally:
            connection.close()
        relation = Relation.from_trusted_rows(name, columns, set(rows))
        self._relations[name] = relation
        return relation

    def __contains__(self, name: object) -> bool:
        return name in self._schemas

    def __len__(self) -> int:
        return len(self._schemas)

    def relation_names(self) -> list[str]:
        return sorted(self._schemas)

    def total_tuples(self) -> int:
        connection = sqlite3.connect(self.path)
        try:
            return sum(
                connection.execute(f"SELECT COUNT(*) FROM {_quote(name)}").fetchone()[0]
                for name in self._schemas
            )
        finally:
            connection.close()


def dump_database(database: Database, path) -> SQLDatabase:
    """Write an in-memory database to a SQLite file; returns the path handle.

    Values must be JSON scalars (str/int/float/bool/None); booleans come
    back as 0/1 integers — equal under Python ``==``, which is what the
    differential guarantees are stated in.
    """
    connection = sqlite3.connect(str(path))
    try:
        for name in database.relation_names():
            relation = database.get(name)
            columns = ", ".join(_quote(c) for c in relation.schema)
            connection.execute(f"CREATE TABLE {_quote(name)} ({columns})")
            for row in relation.tuples:
                for value in row:
                    if not isinstance(value, (str, int, float, bool, type(None))):
                        raise QueryError(
                            f"relation {name!r} holds a non-scalar value of type "
                            f"{type(value).__name__}; only str/int/float/bool/None "
                            "can be dumped to SQLite"
                        )
            placeholders = ", ".join("?" for _ in relation.schema)
            connection.executemany(
                f"INSERT INTO {_quote(name)} VALUES ({placeholders})",
                [tuple(row) for row in relation.tuples],
            )
        connection.commit()
    finally:
        connection.close()
    return SQLDatabase(path)


# --------------------------------------------------------------------------- #
# per-database connection + interning state
# --------------------------------------------------------------------------- #
class SQLStore:
    """Persistent SQL-execution state of one database (the warm-cache unit).

    Holds the long-lived connection (an in-memory SQLite holding the
    interned base tables, or the opened :class:`SQLDatabase` file) plus the
    value-interning dictionary for in-memory sources.  Executions serialise
    on :attr:`lock` — SQLite connections are single-statement engines — so
    one store serves concurrent callers safely; keep one store per database
    to amortise bulk loading across a workload, exactly like
    :class:`~repro.query.columnar.ColumnStore`.
    """

    def __init__(self, database: Database, retry: RetryPolicy | None = None) -> None:
        self.database = database
        self.path = database.path if isinstance(database, SQLDatabase) else None
        self.retry = retry if retry is not None else RetryPolicy()
        self.lock = threading.RLock()
        self._connection: sqlite3.Connection | None = None
        self._loaded: set[str] = set()
        self._codes: dict[object, int] = {}
        self._values: list[object] = []

    @property
    def interned(self) -> bool:
        """True iff the source is an in-memory database loaded via interning."""
        return self.path is None

    def encode(self, value: object) -> int:
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._values.append(value)
            self._codes[value] = code
        return code

    def decode(self, code: int) -> object:
        return self._values[code]

    def connection(self) -> sqlite3.Connection:
        """The store's connection, opened (with retry) on first use.

        ``isolation_level=None`` puts the connection in autocommit mode:
        every statement is its own atomic transaction, which is what makes
        per-statement retry safe — a failed statement changed nothing.
        """
        with self.lock:
            if self._connection is None:
                target = self.path if self.path is not None else ":memory:"

                def attempt():
                    faults.fire("sqlgen.connect", path=target)
                    return sqlite3.connect(
                        target, check_same_thread=False, isolation_level=None
                    )

                self._connection = self.retry.call(attempt, retry_on=(sqlite3.Error,))
            return self._connection

    def catalog_for(self, plan: QueryPlan) -> dict[str, tuple[str, tuple[str, ...]]]:
        """The base-table catalog :func:`compile_sql` needs for ``plan``."""
        catalog: dict[str, tuple[str, tuple[str, ...]]] = {}
        for binding in plan.atoms:
            if binding.relation in catalog:
                continue
            if self.path is not None:
                columns = self.database.table_columns(binding.relation)  # type: ignore[attr-defined]
                catalog[binding.relation] = (_quote(binding.relation), columns)
            else:
                base = self.database.get(binding.relation)
                catalog[binding.relation] = (
                    _quote(f"base_{binding.relation}"),
                    tuple(f"c{i}" for i in range(len(base.schema))),
                )
        return catalog

    def source_fingerprint(self, plan: QueryPlan) -> tuple:
        """Identity of the generated SQL's source side (for program caching)."""
        if self.path is None:
            return ("memory",)
        return ("disk",) + tuple(
            sorted(
                (r, self.database.table_columns(r))  # type: ignore[attr-defined]
                for r in {binding.relation for binding in plan.atoms}
            )
        )

    def ensure_loaded(self, plan: QueryPlan, executor: "SQLExecutor") -> None:
        """Bulk-load (once) every base relation an in-memory plan touches."""
        if self.path is not None:
            return
        connection = self.connection()
        for binding in plan.atoms:
            name = binding.relation
            if name in self._loaded:
                continue
            base = self.database.get(name)
            arity = len(base.schema)
            if arity == 0:
                raise QueryError("the sql executor does not support 0-ary relations")
            columns = ", ".join(f"c{i} INTEGER" for i in range(arity))
            executor._exec(connection, f'CREATE TABLE {_quote(f"base_{name}")} ({columns})')
            encode = self.encode
            rows = [tuple(encode(value) for value in row) for row in base.tuples]
            placeholders = ", ".join("?" for _ in range(arity))
            connection.executemany(
                f'INSERT INTO {_quote(f"base_{name}")} VALUES ({placeholders})', rows
            )
            self._loaded.add(name)


class _InterruptGuard:
    """Armed cancellation for one SQL execution (the ``_Watchdog`` twin).

    While armed, a watcher thread polls the cancel event and deadline and
    calls :meth:`sqlite3.Connection.interrupt` the moment either fires; the
    aborted statement's :class:`sqlite3.OperationalError` is translated to
    :class:`~repro.exceptions.TimeoutExceeded` by the executor.  ``check()``
    at statement boundaries catches a signal that lands *between*
    statements.  Unarmed guards (no event, no deadline) start no thread.
    """

    __slots__ = ("connection", "cancel_event", "deadline", "fired", "reason", "_stop", "_thread")

    def __init__(self, connection, cancel_event=None, deadline: float | None = None) -> None:
        self.connection = connection
        self.cancel_event = cancel_event
        self.deadline = deadline
        self.fired = False
        self.reason = ""
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _trigger(self, reason: str) -> None:
        self.reason = reason
        self.fired = True

    def _poll(self) -> bool:
        event = self.cancel_event
        if event is not None and event.is_set():
            self._trigger("query execution cancelled")
            return True
        if self.deadline is not None and time.monotonic() > self.deadline:
            self._trigger("query execution exceeded its time budget")
            return True
        return False

    def _watch(self) -> None:
        while not self._stop.wait(_INTERRUPT_POLL):
            if self._poll():
                try:
                    self.connection.interrupt()
                except sqlite3.Error:  # pragma: no cover - closing race
                    pass
                return

    def check(self) -> None:
        """Raise if cancellation already fired (or fires right now)."""
        if self.fired or self._poll():
            raise TimeoutExceeded(self.reason)

    def __enter__(self) -> "_InterruptGuard":
        if self.cancel_event is not None or self.deadline is not None:
            self._thread = threading.Thread(
                target=self._watch, name="repro-sqlgen-watchdog", daemon=True
            )
            self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()


class SQLExecutor:
    """Runs compiled plans over a :class:`SQLStore` — the pushdown twin of
    :class:`~repro.query.columnar.PlanExecutor`, same result shape, same
    cancellation semantics."""

    def __init__(
        self, store: SQLStore, cancel_event=None, deadline: float | None = None
    ) -> None:
        self.store = store
        self.cancel_event = cancel_event
        self.deadline = deadline

    # ------------------------------------------------------------------ #
    # statement execution with fault points and retry
    # ------------------------------------------------------------------ #
    def _exec(self, connection, sql: str, guard: _InterruptGuard | None = None):
        def attempt():
            if guard is not None:
                guard.check()
            faults.fire("sqlgen.exec", statement=sql.split(None, 1)[0].lower())
            try:
                return connection.execute(sql)
            except sqlite3.Error:
                if guard is not None and guard.fired:
                    # The watcher interrupted this statement: surface the
                    # cancellation, not the carrier error, and never retry.
                    raise TimeoutExceeded(guard.reason) from None
                raise

        return self.store.retry.call(attempt, retry_on=(sqlite3.Error,))

    def _is_empty(self, connection, table: str, guard) -> bool:
        cursor = self._exec(connection, f"SELECT EXISTS (SELECT 1 FROM {table})", guard)
        return not cursor.fetchone()[0]

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #
    def execute(self, plan: QueryPlan, program: SQLProgram | None = None) -> ExecutionResult:
        """Execute ``plan`` (compiling it to SQL unless ``program`` is given)."""
        store = self.store
        with store.lock:
            connection = store.connection()
            store.ensure_loaded(plan, self)
            if program is None:
                program = compile_sql(plan, store.catalog_for(plan))
            guard = _InterruptGuard(connection, self.cancel_event, self.deadline)
            try:
                with guard:
                    try:
                        return self._run(plan, program, connection, guard)
                    except sqlite3.Error:
                        # An interrupt can also land inside a fetch (result
                        # rows are produced lazily); surface it uniformly.
                        if guard.fired:
                            raise TimeoutExceeded(guard.reason) from None
                        raise
            finally:
                for statement in program.cleanup:
                    try:
                        connection.execute(statement)
                    except sqlite3.Error:  # pragma: no cover - best-effort drop
                        pass

    def _run(
        self, plan: QueryPlan, program: SQLProgram, connection, guard: _InterruptGuard
    ) -> ExecutionResult:
        stats = ExecutionStatistics()
        guard.check()
        bag_index = 0
        for statement in program.setup:
            self._exec(connection, statement, guard)
            if statement.startswith("CREATE TEMP TABLE bag_"):
                stats.bags_built += 1
                table = program.bag_tables[bag_index]
                bag_index += 1
                if self._is_empty(connection, table, guard):
                    stats.early_exit = True
                    return self._empty_result(plan, stats)
        for phase in (program.bottom_up, program.top_down):
            for statement, target in phase:
                cursor = self._exec(connection, statement, guard)
                stats.semijoins_run += 1
                if cursor.rowcount and self._is_empty(connection, target, guard):
                    stats.early_exit = True
                    return self._empty_result(plan, stats)
        if plan.mode is AnswerMode.BOOLEAN:
            # Bottom-up reduction succeeded with a surviving root tuple.
            return ExecutionResult(plan.mode, boolean=True, statistics=stats)

        for statement, kind in program.joins:
            self._exec(connection, statement, guard)
            if kind == "join":
                stats.joins_run += 1
        cursor = self._exec(connection, program.answer, guard)
        if program.answer_kind == "count":
            count = int(cursor.fetchone()[0])
            return ExecutionResult(plan.mode, boolean=count > 0, count=count, statistics=stats)
        if program.answer_kind == "exists":
            exists = bool(cursor.fetchone()[0])
            count = 1 if exists else 0
            rows: set[tuple] = {()} if exists else set()
            answers = Relation.from_trusted_rows("answer", plan.output, rows)
            return ExecutionResult(
                plan.mode, answers=answers, boolean=exists, count=count, statistics=stats
            )
        fetched = cursor.fetchall()
        guard.check()
        stats.rows_materialised += len(fetched)
        if self.store.interned:
            values = self.store._values
            rows = {tuple(values[code] for code in row) for row in fetched}
        else:
            rows = {tuple(row) for row in fetched}
        answers = Relation.from_trusted_rows("answer", plan.output, rows)
        return ExecutionResult(
            plan.mode,
            answers=answers,
            boolean=len(answers) > 0,
            count=len(answers),
            statistics=stats,
        )

    def _empty_result(self, plan: QueryPlan, stats: ExecutionStatistics) -> ExecutionResult:
        if plan.mode is AnswerMode.BOOLEAN:
            return ExecutionResult(plan.mode, boolean=False, statistics=stats)
        if plan.mode is AnswerMode.COUNT:
            return ExecutionResult(plan.mode, boolean=False, count=0, statistics=stats)
        empty = Relation("answer", plan.output, set())
        return ExecutionResult(plan.mode, answers=empty, boolean=False, count=0, statistics=stats)


#: Module-level fallback stores for the convenience wrapper, one per
#: database, dropped with the database (mirrors nothing in columnar — the
#: columnar wrapper builds throwaway stores — but a throwaway *SQL* store
#: would re-bulk-load the database on every call, which is the one cost the
#: SQL arm must amortise to be usable).
_fallback_stores: "weakref.WeakKeyDictionary[Database, SQLStore]" = weakref.WeakKeyDictionary()
_fallback_lock = threading.Lock()


def execute_plan_sql(
    plan: QueryPlan,
    database: Database,
    store: SQLStore | None = None,
    cancel_event=None,
    deadline: float | None = None,
) -> ExecutionResult:
    """Convenience wrapper: run ``plan`` over ``database`` via SQL pushdown.

    Pass a persistent :class:`SQLStore` to control connection lifetime
    explicitly; otherwise a per-database store is kept in a weak module
    registry so repeated calls reuse the loaded tables and the open
    connection.  ``cancel_event``/``deadline`` arm in-flight cancellation
    (see :class:`SQLExecutor`).
    """
    if store is None:
        with _fallback_lock:
            store = _fallback_stores.get(database)
            if store is None:
                store = SQLStore(database)
                _fallback_stores[database] = store
    elif store.database is not database:
        raise QueryError("the SQL store belongs to a different database")
    return SQLExecutor(store, cancel_event=cancel_event, deadline=deadline).execute(plan)
