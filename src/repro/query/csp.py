"""HD-guided constraint-satisfaction solving.

CSPs with table constraints are conjunctive queries in disguise: a constraint
over scope ``(x, y, z)`` with an allowed-tuple table is an atom whose relation
is the table.  Solving the CSP (finding one solution, or all) is therefore CQ
evaluation over the constraint tables — and bounded hypertree width makes it
polynomial, which is the CSP application highlighted in the paper's
introduction.

Two solvers are provided:

* :class:`DecompositionCSPSolver` — the HD-guided solver: builds the CSP's
  hypergraph, decomposes it, materialises bags and runs Yannakakis;
* :func:`backtracking_solve` — a plain backtracking reference solver used as
  a test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import QueryError
from ..hypergraph.cq import Atom, ConjunctiveQuery, CSPInstance
from .cq_eval import EvaluationReport, evaluate_query
from .database import Database
from .relation import Relation

__all__ = ["CSPSolution", "DecompositionCSPSolver", "backtracking_solve", "csp_to_query"]


@dataclass
class CSPSolution:
    """The outcome of an HD-guided CSP solve."""

    satisfiable: bool
    assignment: dict[str, object] | None
    num_solutions_found: int
    width: int
    report: EvaluationReport


def csp_to_query(csp: CSPInstance) -> tuple[ConjunctiveQuery, Database]:
    """Translate a CSP instance into a conjunctive query plus a database.

    Every constraint becomes one atom/relation pair; the query's free
    variables are all CSP variables, so the answers are exactly the solutions.
    """
    if not csp.constraints:
        raise QueryError("CSP instance has no constraints")
    atoms = []
    database = Database()
    for index, (cname, scope, tuples) in enumerate(csp.constraints):
        relation_name = f"{cname}_{index}"
        atoms.append(Atom(relation_name, tuple(scope)))
        schema = [f"a{i}" for i in range(len(scope))]
        database.add(Relation(relation_name, schema, tuples))
    variables = tuple(sorted({v for _, scope, _ in csp.constraints for v in scope}))
    query = ConjunctiveQuery(tuple(atoms), variables, name=csp.name or "csp")
    return query, database


class DecompositionCSPSolver:
    """Solve table-constraint CSPs guided by a hypertree decomposition.

    ``executor`` selects the evaluation arm of
    :func:`~repro.query.cq_eval.evaluate_query` — the plan-compiled columnar
    executor by default, or the eager reference pipeline.
    """

    def __init__(
        self,
        algorithm: str = "hybrid",
        max_width: int = 10,
        timeout: float | None = None,
        executor: str = "columnar",
    ) -> None:
        self.algorithm = algorithm
        self.max_width = max_width
        self.timeout = timeout
        self.executor = executor

    def solve(self, csp: CSPInstance) -> CSPSolution:
        """Return satisfiability, one witness assignment and the solution count."""
        query, database = csp_to_query(csp)
        report = evaluate_query(
            query,
            database,
            algorithm=self.algorithm,
            max_width=self.max_width,
            timeout=self.timeout,
            executor=self.executor,
        )
        answers = report.answers
        assignment = None
        if len(answers):
            row = next(iter(answers.tuples))
            assignment = dict(zip(answers.schema, row))
        return CSPSolution(
            satisfiable=len(answers) > 0,
            assignment=assignment,
            num_solutions_found=len(answers),
            width=report.width,
            report=report,
        )

    def is_satisfiable(self, csp: CSPInstance) -> bool:
        """Decide satisfiability only — a ``boolean``-mode plan with early exit.

        The eager reference arm has no boolean mode, so a solver configured
        with ``executor="eager"`` answers through the full :meth:`solve`;
        the columnar and SQL arms take the early-exit fast path.
        """
        if self.executor not in ("columnar", "sql"):
            return self.solve(csp).satisfiable
        query, database = csp_to_query(csp)
        report = evaluate_query(
            query,
            database,
            algorithm=self.algorithm,
            max_width=self.max_width,
            timeout=self.timeout,
            executor=self.executor,
            mode="boolean",
        )
        return report.boolean_answer

    def count_solutions(self, csp: CSPInstance) -> int:
        """Count solutions without materialising/decoding them (``count`` mode).

        With ``executor="eager"`` the count comes from the enumerated
        answers of :meth:`solve` (the reference arm has no count mode); the
        columnar and SQL arms count without decoding.
        """
        if self.executor not in ("columnar", "sql"):
            return self.solve(csp).num_solutions_found
        query, database = csp_to_query(csp)
        report = evaluate_query(
            query,
            database,
            algorithm=self.algorithm,
            max_width=self.max_width,
            timeout=self.timeout,
            executor=self.executor,
            mode="count",
        )
        return int(report.count or 0)


def backtracking_solve(csp: CSPInstance) -> dict[str, object] | None:
    """Plain chronological backtracking over the constraint tables (test oracle)."""
    if not csp.constraints:
        raise QueryError("CSP instance has no constraints")
    variables = sorted(csp.variables)
    domains: dict[str, list[object]] = {}
    for variable in variables:
        if variable in csp.domains:
            domains[variable] = list(csp.domains[variable])
        else:
            values: set[object] = set()
            for _, scope, tuples in csp.constraints:
                if variable in scope:
                    position = scope.index(variable)
                    values.update(row[position] for row in tuples)
            domains[variable] = sorted(values, key=repr)

    constraints = [
        (tuple(scope), {tuple(row) for row in tuples})
        for _, scope, tuples in csp.constraints
    ]

    def consistent(assignment: dict[str, object]) -> bool:
        for scope, table in constraints:
            if all(v in assignment for v in scope):
                if tuple(assignment[v] for v in scope) not in table:
                    return False
            else:
                # Partial check: some tuple must extend the current assignment.
                bound = [(i, v) for i, v in enumerate(scope) if v in assignment]
                if bound and not any(
                    all(row[i] == assignment[v] for i, v in bound) for row in table
                ):
                    return False
        return True

    def backtrack(index: int, assignment: dict[str, object]) -> dict[str, object] | None:
        if index == len(variables):
            return dict(assignment)
        variable = variables[index]
        for value in domains[variable]:
            assignment[variable] = value
            if consistent(assignment):
                solution = backtrack(index + 1, assignment)
                if solution is not None:
                    return solution
            del assignment[variable]
        return None

    return backtrack(0, {})
