"""Query plans: join trees compiled into explicit operator programs.

The eager pipeline of :mod:`repro.query.cq_eval` interleaves *deciding* what
to do (walking the join tree, intersecting schemas, choosing projections)
with *doing* it (building tuple sets).  This module separates the two: a
:class:`QueryPlan` is the complete, immutable operator program derived from a
join tree —

1. :class:`BagOp` steps materialise one relation per decomposition node by
   joining the ≤ k atoms of the node's λ-cover, projecting onto the bag and
   semijoin-filtering with the atoms assigned to the node,
2. :class:`SemijoinOp` steps run Yannakakis' bottom-up and top-down semijoin
   passes (the full reduction),
3. :class:`JoinOp`/:class:`ProjectOp` steps assemble the answers bottom-up,
   keeping only output variables plus the variables still needed higher up.

Because every schema intersection, projection list and semijoin key is
resolved at compile time, the program can be cached and re-run against any
database, and an executor (:mod:`repro.query.columnar`) can precompute which
hash indexes the semijoin/join keys need and share them across steps.

Plans carry an :class:`AnswerMode`:

* ``ENUMERATE`` — produce the full answer relation,
* ``BOOLEAN`` — decide non-emptiness; the compiled program stops after the
  bottom-up semijoin pass (a surviving root tuple proves the answer), and
  executors may exit even earlier when a bag comes out empty,
* ``COUNT`` — count distinct answers without decoding them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..decomp.jointree import JoinTree
from ..exceptions import QueryError
from ..hypergraph.cq import ConjunctiveQuery

__all__ = [
    "AnswerMode",
    "AtomBinding",
    "BagOp",
    "SemijoinOp",
    "JoinOp",
    "ProjectOp",
    "QueryPlan",
    "compile_plan",
]


class AnswerMode(str, Enum):
    """What the executor should produce for a query."""

    ENUMERATE = "enumerate"
    BOOLEAN = "boolean"
    COUNT = "count"

    @classmethod
    def coerce(cls, mode: "AnswerMode | str") -> "AnswerMode":
        """Accept an :class:`AnswerMode` or its string value."""
        if isinstance(mode, cls):
            return mode
        try:
            return cls(mode)
        except ValueError:
            known = ", ".join(m.value for m in cls)
            raise QueryError(f"unknown answer mode {mode!r}; known: {known}") from None

    @property
    def is_interactive(self) -> bool:
        """Scheduling hint: whether answers are small scalar payloads.

        Boolean and count answers are a yes/no or a number a client is
        actively waiting on; full enumeration materialises an answer
        relation and is bulk work.  The serving layer maps this onto its
        priority classes.
        """
        return self is not AnswerMode.ENUMERATE


@dataclass(frozen=True)
class AtomBinding:
    """One query atom resolved for execution.

    ``variables`` lists the distinct variables in first-occurrence order;
    ``arguments`` is the raw (possibly repeating) argument tuple used to
    enforce equality of repeated variables when the base relation is loaded.
    """

    edge: str
    relation: str
    arguments: tuple[str, ...]
    variables: tuple[str, ...]

    @property
    def has_repeats(self) -> bool:
        """True iff some variable occurs more than once in the atom."""
        return len(self.variables) != len(self.arguments)


@dataclass(frozen=True)
class BagOp:
    """Materialise the relation of decomposition node ``node``.

    Join the atoms in ``cover`` (indices into :attr:`QueryPlan.atoms`),
    project onto ``variables`` (the bag χ), then semijoin with each atom in
    ``assigned``.
    """

    node: int
    cover: tuple[int, ...]
    assigned: tuple[int, ...]
    variables: tuple[str, ...]


@dataclass(frozen=True)
class SemijoinOp:
    """Keep the ``target`` node's tuples that join with ``source`` on ``on``."""

    target: int
    source: int
    on: tuple[str, ...]


@dataclass(frozen=True)
class JoinOp:
    """Join child ``source``'s intermediate result (projected onto ``retain``)
    into parent ``target``'s intermediate result."""

    target: int
    source: int
    retain: tuple[str, ...]


@dataclass(frozen=True)
class ProjectOp:
    """Project node ``node``'s intermediate result onto ``attributes``."""

    node: int
    attributes: tuple[str, ...]


@dataclass(frozen=True)
class QueryPlan:
    """A compiled, database-independent operator program for one query.

    The plan references atoms by index into :attr:`atoms` and decomposition
    nodes by their pre-order id (the root is node 0), so it is entirely
    self-contained: executing it needs only a database providing the named
    base relations.
    """

    mode: AnswerMode
    output: tuple[str, ...]
    atoms: tuple[AtomBinding, ...]
    num_nodes: int
    bags: tuple[BagOp, ...]
    bottom_up: tuple[SemijoinOp, ...]
    top_down: tuple[SemijoinOp, ...]
    join_schedule: tuple[JoinOp | ProjectOp, ...]
    node_variables: tuple[tuple[str, ...], ...]
    result_variables: tuple[tuple[str, ...], ...]
    width: int
    children: tuple[tuple[int, ...], ...] = field(default=(), repr=False)

    @property
    def semijoin_count(self) -> int:
        """Total number of semijoin steps of the full-reduction passes."""
        return len(self.bottom_up) + len(self.top_down)

    @property
    def is_boolean(self) -> bool:
        """True iff the plan answers a Boolean query (no output variables)."""
        return not self.output

    def describe(self) -> str:
        """Human-readable rendering of the operator program."""
        lines = [f"plan mode={self.mode.value} output=({', '.join(self.output)})"]
        for bag in self.bags:
            cover = ", ".join(self.atoms[i].edge for i in bag.cover)
            line = f"  bag[{bag.node}] = π_{{{', '.join(bag.variables)}}}({cover})"
            if bag.assigned:
                assigned = ", ".join(self.atoms[i].edge for i in bag.assigned)
                line += f" ⋉ {assigned}"
            lines.append(line)
        for op in self.bottom_up:
            lines.append(f"  bag[{op.target}] ⋉= bag[{op.source}] on ({', '.join(op.on)})")
        for op in self.top_down:
            lines.append(f"  bag[{op.target}] ⋉= bag[{op.source}] on ({', '.join(op.on)})")
        for op in self.join_schedule:
            if isinstance(op, JoinOp):
                lines.append(
                    f"  res[{op.target}] ⋈= π_{{{', '.join(op.retain)}}}(res[{op.source}])"
                )
            else:
                lines.append(f"  res[{op.node}] = π_{{{', '.join(op.attributes)}}}(res[{op.node}])")
        return "\n".join(lines)


def _atom_bindings(query: ConjunctiveQuery) -> tuple[tuple[AtomBinding, ...], dict[str, int]]:
    bindings: list[AtomBinding] = []
    index_of: dict[str, int] = {}
    for edge_name, atom in query.edge_atom_map().items():
        index_of[edge_name] = len(bindings)
        bindings.append(
            AtomBinding(
                edge=edge_name,
                relation=atom.relation,
                arguments=tuple(atom.arguments),
                variables=tuple(dict.fromkeys(atom.arguments)),
            )
        )
    return tuple(bindings), index_of


def compile_plan(
    query: ConjunctiveQuery,
    join_tree: JoinTree,
    mode: AnswerMode | str = AnswerMode.ENUMERATE,
) -> QueryPlan:
    """Compile ``join_tree`` into an executable :class:`QueryPlan`.

    The program mirrors the eager pipeline exactly (bag materialisation, the
    two semijoin passes, the projecting bottom-up join of
    :func:`repro.query.yannakakis.yannakakis`), so plan-compiled evaluation
    is answer-for-answer identical to the reference path.  For ``BOOLEAN``
    plans the top-down pass and the join schedule are omitted: after the
    bottom-up pass the root is non-empty iff the query holds.
    """
    mode = AnswerMode.coerce(mode)
    atoms, atom_index = _atom_bindings(query)
    output = tuple(dict.fromkeys(query.free_variables))

    nodes, _parent, children = join_tree.numbered()
    node_variables = tuple(tuple(sorted(node.variables)) for node in nodes)
    missing = [v for v in output if not any(v in node.variables for node in nodes)]
    if missing:
        raise QueryError(f"output variables {missing} do not occur in the join tree")

    bags: list[BagOp] = []
    for node_id, node in enumerate(nodes):
        cover = tuple(atom_index[name] for name in sorted(node.cover_edges))
        if not cover:
            raise QueryError(
                "decomposition node with an empty λ-label cannot be materialised"
            )
        assigned = tuple(atom_index[name] for name in sorted(node.assigned_edges))
        bags.append(
            BagOp(node=node_id, cover=cover, assigned=assigned, variables=node_variables[node_id])
        )

    def shared(a: int, b: int) -> tuple[str, ...]:
        other = set(node_variables[b])
        return tuple(v for v in node_variables[a] if v in other)

    bottom_up: list[SemijoinOp] = []

    def emit_bottom_up(node_id: int) -> None:
        for child_id in children[node_id]:
            emit_bottom_up(child_id)
            bottom_up.append(
                SemijoinOp(target=node_id, source=child_id, on=shared(node_id, child_id))
            )

    emit_bottom_up(0)

    top_down: list[SemijoinOp] = []
    join_schedule: list[JoinOp | ProjectOp] = []
    result_variables: list[tuple[str, ...]] = [()] * len(nodes)

    if mode is not AnswerMode.BOOLEAN:

        def emit_top_down(node_id: int) -> None:
            for child_id in children[node_id]:
                top_down.append(
                    SemijoinOp(target=child_id, source=node_id, on=shared(node_id, child_id))
                )
                emit_top_down(child_id)

        emit_top_down(0)

        keep = frozenset(output)

        def emit_joins(node_id: int) -> tuple[str, ...]:
            """Mirror of yannakakis._joined_projection, schemas only."""
            current = list(node_variables[node_id])
            bag_set = set(node_variables[node_id])
            needed = keep | bag_set
            for child_id in children[node_id]:
                child_schema = emit_joins(child_id)
                retain = tuple(a for a in child_schema if a in needed)
                join_schedule.append(JoinOp(target=node_id, source=child_id, retain=retain))
                for attribute in retain:
                    if attribute not in bag_set and attribute not in current:
                        current.append(attribute)
            wanted = tuple(a for a in current if a in keep or a in bag_set)
            if wanted != tuple(current):
                join_schedule.append(ProjectOp(node=node_id, attributes=wanted))
            result_variables[node_id] = wanted
            return wanted

        root_schema = emit_joins(0)
        if root_schema != output:
            # Final projection onto the output variables (for a Boolean-shaped
            # query under ENUMERATE/COUNT this is the 0-ary projection).
            join_schedule.append(ProjectOp(node=0, attributes=output))

    return QueryPlan(
        mode=mode,
        output=output,
        atoms=atoms,
        num_nodes=len(nodes),
        bags=tuple(bags),
        bottom_up=tuple(bottom_up),
        top_down=tuple(top_down),
        join_schedule=tuple(join_schedule),
        node_variables=node_variables,
        result_variables=tuple(result_variables),
        width=join_tree.width,
        children=tuple(tuple(c) for c in children),
    )
