"""Join helpers bridging atoms, relations and variable-named schemas.

Relations in a :class:`~repro.query.database.Database` carry positional
schemas (``a0, a1, ...``); conjunctive-query atoms bind those positions to
variables (possibly repeating a variable or — not supported here — using
constants).  :func:`atom_relation` performs that binding: it renames
attributes to variable names, enforces equality for repeated variables and
projects to the distinct variables, which is the representation the
decomposition-guided evaluation works with throughout.
"""

from __future__ import annotations

from functools import reduce
from collections.abc import Iterable, Sequence

from ..exceptions import QueryError
from ..hypergraph.cq import Atom
from .database import Database
from .relation import Relation

__all__ = ["atom_relation", "join_all", "naive_join_query"]


def atom_relation(database: Database, atom: Atom) -> Relation:
    """The relation of ``atom`` with its schema renamed to the atom's variables."""
    base = database.get(atom.relation)
    if len(base.schema) != len(atom.arguments):
        raise QueryError(
            f"atom {atom} has arity {len(atom.arguments)} but relation "
            f"{atom.relation!r} has arity {len(base.schema)}"
        )
    variables = list(atom.arguments)
    distinct = list(dict.fromkeys(variables))
    rows = set()
    for row in base.tuples:
        binding: dict[str, object] = {}
        consistent = True
        for variable, value in zip(variables, row):
            if variable in binding and binding[variable] != value:
                consistent = False
                break
            binding[variable] = value
        if consistent:
            rows.add(tuple(binding[v] for v in distinct))
    return Relation(f"{atom.relation}[{','.join(variables)}]", distinct, rows)


def join_all(relations: Sequence[Relation], name: str = "join") -> Relation:
    """Natural join of a non-empty sequence of relations (left to right)."""
    if not relations:
        raise QueryError("cannot join an empty sequence of relations")
    return reduce(lambda left, right: left.natural_join(right), relations).rename({}, name=name)


def naive_join_query(
    database: Database,
    atoms: Iterable[Atom],
    output_variables: Sequence[str] | None = None,
) -> Relation:
    """Reference CQ evaluation: join all atom relations, then project.

    Exponential in general — used as the ground-truth oracle the HD-guided
    evaluator is tested against.
    """
    relations = [atom_relation(database, atom) for atom in atoms]
    joined = join_all(relations, name="naive")
    if output_variables is None:
        return joined
    if not output_variables:
        # Boolean query: project onto the empty schema (a 0-ary relation that is
        # non-empty iff the query holds).
        rows = {()} if len(joined) else set()
        return Relation("naive", (), rows)
    return joined.project(list(output_variables), name="naive")
