"""Columnar execution of compiled query plans.

This is the serving-grade counterpart to the eager, tuple-at-a-time pipeline:
a :class:`PlanExecutor` runs a :class:`~repro.query.plan.QueryPlan` over
dictionary-encoded, column-major relations.

Design
------
* **Dictionary encoding** — a :class:`ColumnStore` owns one process-wide
  value dictionary per database: every attribute value is interned to a
  small integer code, so all joins, semijoins and deduplication work on
  integers (and code equality is value equality across relations).
* **Column-major storage** — a :class:`ColumnarRelation` stores one code
  list per attribute.  Operators slice out exactly the key columns they
  need; no full-width tuples are rebuilt per operator.
* **Shared key indexes** — hash indexes (key → row ids) are cached on the
  relation per attribute subset.  Yannakakis repeatedly touches the same
  (node, shared-variable) pairs — the bottom-up semijoin, the top-down
  semijoin and the final join all probe the same keys — so each index is
  built once and reused; :class:`ExecutionStatistics` counts the reuse.
* **Selection masks instead of rebuilds** — semijoins never copy a bag;
  they operate on a packed-int ``alive`` bitmask (bit ``i`` = row ``i``
  survives).  A semijoin ORs together the row bitmasks of the *dead* key
  groups (``key_masks``) and clears them from the alive set with one ``&``;
  the surviving row count is a single popcount.  The cached indexes stay
  valid across the passes (dead rows are skipped on probe).
* **Packed columns** — code columns are ``array('q')`` buffers rather than
  Python lists; joins gather and compact them through an optional numpy
  fast path (``np.take`` over zero-copy ``frombuffer`` views) and fall back
  to pure-Python loops where numpy is unavailable (CI runs without it).
* **Early exit** — ``BOOLEAN`` plans stop at the first empty bag and skip
  the top-down pass and join stage entirely; all modes short-circuit when a
  bag or a reduced node comes out empty.

Base-relation encodings (per atom binding pattern) persist in the
:class:`ColumnStore` across queries, which is what makes warm workload
evaluation cheap: repeated queries touch only per-query bag state.
"""

from __future__ import annotations

import threading
import time
from array import array
from collections.abc import Sequence
from dataclasses import dataclass, field
from itertools import compress

from ..exceptions import QueryError, TimeoutExceeded
from ..lru import ShardedLRU
from .database import Database
from .plan import AnswerMode, AtomBinding, JoinOp, ProjectOp, QueryPlan
from .relation import Relation

try:  # Optional fast path; CI images ship without numpy.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

__all__ = [
    "ColumnarRelation",
    "ColumnStore",
    "ExecutionStatistics",
    "ExecutionResult",
    "PlanExecutor",
    "execute_plan",
]

#: Typecode of the packed code columns: signed 64-bit, matching numpy int64
#: so ``np.frombuffer`` can view a column without copying.
_CODE_TYPECODE = "q"

#: byte value (0..255) → the 8 selector bytes of its bits, little-endian.
#: Turns an alive bitmask into per-row 0/1 selector bytes for
#: :func:`itertools.compress` in O(nrows/8) table lookups.
_BYTE_SELECTORS = tuple(
    bytes((byte >> bit) & 1 for bit in range(8)) for byte in range(256)
)

#: Rows per chunk when building key→row-bitmask tables; bounds the size of
#: the chunk-local ints so the build stays near-linear in the row count.
_MASK_CHUNK = 4096

#: Rows processed between two cancellation/deadline polls in the hot join
#: and semijoin loops — the same periodic-check idea the decomposition
#: searches use (SearchContext), sized so the poll overhead stays invisible
#: while an abort still lands within a few thousand rows of work.
_CHECK_STRIDE = 4096


class _Watchdog:
    """Periodic cancellation/deadline checks for a running plan execution.

    Mirrors the decomposition searches' deadline machinery: hot loops call
    :meth:`tick` (throttled to every ``stride`` rows), stage boundaries call
    :meth:`check` (always polls).  A set cancel event or an expired deadline
    raises :class:`~repro.exceptions.TimeoutExceeded`, which the serving
    layer maps onto the ticket like any other per-request timeout.
    """

    __slots__ = ("cancel_event", "deadline", "stride", "_ticks")

    def __init__(self, cancel_event=None, deadline: float | None = None,
                 stride: int = _CHECK_STRIDE) -> None:
        self.cancel_event = cancel_event
        self.deadline = deadline
        self.stride = stride
        self._ticks = 0

    def tick(self) -> None:
        self._ticks += 1
        if self._ticks % self.stride:
            return
        self.check()

    def check(self) -> None:
        event = self.cancel_event
        if event is not None and event.is_set():
            raise TimeoutExceeded("query execution cancelled")
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise TimeoutExceeded("query execution exceeded its time budget")


def _mask_to_selectors(mask: int, nrows: int) -> bytes:
    """Expand a row bitmask into ``nrows`` selector bytes (1 = row alive)."""
    packed = mask.to_bytes((nrows + 7) // 8, "little")
    if _np is not None:
        bits = _np.unpackbits(
            _np.frombuffer(packed, dtype=_np.uint8), bitorder="little"
        )
        return bits[:nrows].tobytes()
    return b"".join(map(_BYTE_SELECTORS.__getitem__, packed))[:nrows]


def _mask_indices(mask: int) -> list[int]:
    """The set row ids of a row bitmask, ascending."""
    ids = []
    while mask:
        low = mask & -mask
        mask ^= low
        ids.append(low.bit_length() - 1)
    return ids


def _gather(column: Sequence[int], row_ids: list[int]) -> array:
    """Materialise ``column[row_ids]`` as a packed code column."""
    if _np is not None and isinstance(column, array):
        taken = _np.frombuffer(column, dtype=_np.int64)[row_ids]
        out = array(_CODE_TYPECODE)
        out.frombytes(taken.tobytes())
        return out
    return array(_CODE_TYPECODE, map(column.__getitem__, row_ids))


def _dedupe_columns(
    schema: tuple[str, ...], columns: list[Sequence[int]], nrows: int
) -> "ColumnarRelation":
    """Distinct rows of parallel code columns, as a new relation.

    The numpy path stacks the columns into one int64 matrix and takes
    ``np.unique(..., axis=0)``; the fallback dedupes through a row-tuple set.
    Output row order differs between the two (sorted vs arbitrary) — both are
    valid: relations are sets and every consumer dedupes or indexes by key.
    """
    if nrows == 0:
        return ColumnarRelation(
            schema, tuple(array(_CODE_TYPECODE) for _ in schema), nrows=0
        )
    if _np is not None and all(isinstance(c, array) for c in columns):
        stacked = _np.empty((nrows, len(columns)), dtype=_np.int64)
        for j, column in enumerate(columns):
            stacked[:, j] = _np.frombuffer(column, dtype=_np.int64)
        unique = _np.unique(stacked, axis=0)
        out = []
        for j in range(len(columns)):
            packed = array(_CODE_TYPECODE)
            packed.frombytes(_np.ascontiguousarray(unique[:, j]).tobytes())
            out.append(packed)
        return ColumnarRelation(schema, tuple(out), nrows=len(unique))
    return ColumnarRelation.from_rows(schema, set(zip(*columns)))


def _compress_column(column: Sequence[int], selectors: bytes) -> array:
    """Keep the rows whose selector byte is 1, as a packed code column."""
    if _np is not None and isinstance(column, array):
        keep = _np.frombuffer(selectors, dtype=_np.bool_)
        taken = _np.frombuffer(column, dtype=_np.int64)[keep]
        out = array(_CODE_TYPECODE)
        out.frombytes(taken.tobytes())
        return out
    return array(_CODE_TYPECODE, compress(column, selectors))


class ColumnarRelation:
    """A dictionary-encoded, column-major relation with cached key indexes."""

    __slots__ = (
        "schema",
        "columns",
        "nrows",
        "_indexes",
        "_key_columns",
        "_key_masks",
        "_position",
    )

    def __init__(
        self,
        schema: tuple[str, ...],
        columns: tuple[Sequence[int], ...],
        nrows: int | None = None,
    ) -> None:
        self.schema = schema
        self.columns = columns
        # A 0-ary relation has no columns but still 0 or 1 rows; the explicit
        # count keeps {()} distinguishable from the empty relation.
        self.nrows = (len(columns[0]) if columns else 0) if nrows is None else nrows
        self._indexes: dict[tuple[str, ...], dict] = {}
        self._key_columns: dict[tuple[str, ...], list] = {}
        self._key_masks: dict[tuple[str, ...], dict] = {}
        self._position = {attribute: i for i, attribute in enumerate(schema)}

    def __len__(self) -> int:
        return self.nrows

    def __repr__(self) -> str:
        return f"<ColumnarRelation ({', '.join(self.schema)}) |{self.nrows}| >"

    def column(self, attribute: str) -> Sequence[int]:
        """The code column of ``attribute``."""
        try:
            return self.columns[self._position[attribute]]
        except KeyError:
            raise QueryError(f"columnar relation has no attribute {attribute!r}") from None

    def key_column(self, attributes: tuple[str, ...]) -> Sequence:
        """Join keys for ``attributes``, one per row.

        Single-attribute keys are the bare code column itself; wider keys are
        code tuples, zipped once and cached per attribute subset (the table's
        columns are immutable, so the cache never needs invalidation).
        """
        if len(attributes) == 1:
            return self.column(attributes[0])
        keys = self._key_columns.get(attributes)
        if keys is None:
            keys = list(zip(*(self.column(a) for a in attributes)))
            self._key_columns[attributes] = keys
        return keys

    def key_masks(
        self, attributes: tuple[str, ...], stats: "ExecutionStatistics | None" = None
    ) -> dict:
        """Hash index key → bitmask of row ids, built once per attribute subset.

        This is the probe structure of the bitmask semijoin: the rows of a
        dead key group are removed from an alive mask with one OR + AND-NOT
        instead of per-row byte flips.  Built chunk-wise so the per-row shift
        work stays bounded by ``_MASK_CHUNK`` bits.
        """
        masks = self._key_masks.get(attributes)
        if masks is not None:
            if stats is not None:
                stats.indexes_reused += 1
            return masks
        index = self._indexes.get(attributes)
        if index is not None:
            # Derive from the row-id-list view of the same logical index.
            masks = {
                key: sum(1 << row_id for row_id in row_ids)
                for key, row_ids in index.items()
            }
            self._key_masks[attributes] = masks
            if stats is not None:
                stats.indexes_reused += 1
            return masks
        masks = {}
        keys = self.key_column(attributes)
        for base in range(0, self.nrows, _MASK_CHUNK):
            local: dict = {}
            get = local.get
            bit = 1
            for key in keys[base : base + _MASK_CHUNK]:
                local[key] = get(key, 0) | bit
                bit <<= 1
            if base:
                for key, mask in local.items():
                    masks[key] = masks.get(key, 0) | (mask << base)
            else:
                masks = local
        self._key_masks[attributes] = masks
        if stats is not None:
            stats.indexes_built += 1
        return masks

    def index_on(
        self, attributes: tuple[str, ...], stats: "ExecutionStatistics | None" = None
    ) -> dict:
        """Hash index key → list of row ids, built once per attribute subset.

        :meth:`key_masks` is the same logical index in bitmask form; when one
        representation exists the other is derived from it (the hashing and
        key grouping are shared), which counts as a reuse, not a build.
        """
        index = self._indexes.get(attributes)
        if index is not None:
            if stats is not None:
                stats.indexes_reused += 1
            return index
        masks = self._key_masks.get(attributes)
        if masks is not None:
            index = {key: _mask_indices(mask) for key, mask in masks.items()}
            self._indexes[attributes] = index
            if stats is not None:
                stats.indexes_reused += 1
            return index
        index = {}
        for row_id, key in enumerate(self.key_column(attributes)):
            bucket = index.get(key)
            if bucket is None:
                index[key] = [row_id]
            else:
                bucket.append(row_id)
        self._indexes[attributes] = index
        if stats is not None:
            stats.indexes_built += 1
        return index

    def rows(self):
        """Iterate over the rows as code tuples (row-major view)."""
        if self.columns:
            return zip(*self.columns)
        return iter([()] * self.nrows)

    @classmethod
    def from_rows(cls, schema: tuple[str, ...], rows) -> "ColumnarRelation":
        """Build from an iterable of code tuples (consumed once)."""
        materialised = list(rows)
        if not schema:
            return cls((), (), nrows=1 if materialised else 0)
        if not materialised:
            return cls(schema, tuple(array(_CODE_TYPECODE) for _ in schema))
        return cls(
            schema,
            tuple(array(_CODE_TYPECODE, column) for column in zip(*materialised)),
        )


@dataclass
class ExecutionStatistics:
    """Counters of one plan execution (index reuse is the headline number)."""

    indexes_built: int = 0
    indexes_reused: int = 0
    semijoins_run: int = 0
    semijoins_skipped: int = 0
    joins_run: int = 0
    rows_materialised: int = 0
    bags_built: int = 0
    bags_reused: int = 0
    early_exit: bool = False

    def as_dict(self) -> dict[str, int | bool]:
        """Plain-dict view used by reports and the benchmarks."""
        return {
            "indexes_built": self.indexes_built,
            "indexes_reused": self.indexes_reused,
            "semijoins_run": self.semijoins_run,
            "semijoins_skipped": self.semijoins_skipped,
            "joins_run": self.joins_run,
            "rows_materialised": self.rows_materialised,
            "bags_built": self.bags_built,
            "bags_reused": self.bags_reused,
            "early_exit": self.early_exit,
        }


class ColumnStore:
    """Dictionary-encoded view of a :class:`~repro.query.database.Database`.

    Encodings are computed lazily per atom binding pattern (relation name
    plus repeated-variable positions) and cached, as are the key indexes
    living on the cached :class:`ColumnarRelation` objects.  Keep one store
    per database and pass it to every execution to amortise the encoding
    across a workload; the executor creates a throwaway store otherwise.

    The store may be shared by concurrent executions (the serving layer runs
    many queries against one database at once): the value dictionary is
    guarded by a lock on the interning slow path — without it two racing
    :meth:`encode` calls could hand out *different* codes for one value,
    breaking the code-equality-is-value-equality invariant — and the bag
    cache is a lock-striped :class:`~repro.lru.ShardedLRU`.  Atom tables may
    rarely be built twice under a race; both builds are equivalent and the
    last one wins, so that duplication costs time, never answers.
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._codes: dict[object, int] = {}
        self._values: list[object] = []
        self._encode_lock = threading.Lock()
        #: (relation, repeat pattern) → encoded columns; shared across atoms
        #: that bind the same relation with the same repeat structure.
        self._atom_columns: dict[tuple, tuple[Sequence[int], ...]] = {}
        #: (relation, repeat pattern, variables) → the schema-bound table.
        self._atom_tables: dict[tuple, ColumnarRelation] = {}
        #: Materialised bag tables, keyed by the bag's structural signature
        #: (cover/assigned atom identities + bag variables).  Bags depend
        #: only on that signature and the database content, so across a
        #: workload of repeated query shapes the bag join work — and the
        #: key indexes living on the cached tables — is paid once.
        self._bag_tables: ShardedLRU = ShardedLRU(512)

    # ------------------------------------------------------------------ #
    # encoding
    # ------------------------------------------------------------------ #
    def encode(self, value: object) -> int:
        """Intern ``value`` and return its integer code (thread-safe).

        The fast path is a plain dict probe; the interning slow path is
        locked and re-checks, and appends the value *before* publishing the
        code so any thread that observes a code can decode it.
        """
        code = self._codes.get(value)
        if code is None:
            with self._encode_lock:
                code = self._codes.get(value)
                if code is None:
                    code = len(self._values)
                    self._values.append(value)
                    self._codes[value] = code
        return code

    def decode(self, code: int) -> object:
        """The value interned under ``code``."""
        return self._values[code]

    def decode_rows(self, rows) -> set[tuple]:
        """Decode an iterable of code tuples back to value tuples."""
        values = self._values
        return {tuple(values[code] for code in row) for row in rows}

    # ------------------------------------------------------------------ #
    # base relations
    # ------------------------------------------------------------------ #
    def atom_table(self, binding: AtomBinding) -> ColumnarRelation:
        """The encoded relation of an atom, bound to its variables.

        Mirrors :func:`repro.query.joins.atom_relation`: attributes are the
        atom's distinct variables and rows violating repeated-variable
        equality are dropped.  Cached per (relation, argument pattern).
        """
        pattern = tuple(binding.arguments.index(a) for a in binding.arguments)
        table_key = (binding.relation, pattern, binding.variables)
        table = self._atom_tables.get(table_key)
        if table is not None:
            return table

        columns_key = (binding.relation, pattern)
        columns = self._atom_columns.get(columns_key)
        if columns is None:
            base = self.database.get(binding.relation)
            if len(base.schema) != len(binding.arguments):
                raise QueryError(
                    f"atom {binding.edge} has arity {len(binding.arguments)} but "
                    f"relation {binding.relation!r} has arity {len(base.schema)}"
                )
            positions = [binding.arguments.index(v) for v in binding.variables]
            encode = self.encode
            rows: set[tuple[int, ...]] = set()
            if binding.has_repeats:
                checks = [
                    (i, binding.arguments.index(v))
                    for i, v in enumerate(binding.arguments)
                    if binding.arguments.index(v) != i
                ]
                for row in base.tuples:
                    if all(row[i] == row[first] for i, first in checks):
                        rows.add(tuple(encode(row[p]) for p in positions))
            else:
                for row in base.tuples:
                    rows.add(tuple(encode(row[p]) for p in positions))
            columns = ColumnarRelation.from_rows(binding.variables, rows).columns
            self._atom_columns[columns_key] = columns
        table = ColumnarRelation(binding.variables, columns)
        self._atom_tables[table_key] = table
        return table

    @staticmethod
    def atom_key(binding: AtomBinding) -> tuple:
        """The identity under which :meth:`atom_table` caches a binding."""
        pattern = tuple(binding.arguments.index(a) for a in binding.arguments)
        return (binding.relation, pattern, binding.variables)

    def bag_table(self, key: tuple, build) -> tuple[ColumnarRelation, bool]:
        """Get-or-build a materialised bag table; returns (table, was_cached)."""
        table = self._bag_tables.get(key)
        if table is not None:
            return table, True
        table = build()
        self._bag_tables.put(key, table)
        return table, False


class _NodeState:
    """Mutable per-node execution state: the bag table plus a liveness mask.

    ``alive`` is a packed row bitmask (bit ``i`` set = row ``i`` survives),
    ``None`` while every row is still alive.  Key-set snapshots are cached
    per attribute subset and invalidated through a version counter that is
    bumped on every alive-mask change.
    """

    __slots__ = ("table", "alive", "live_count", "_version", "_live_keys")

    def __init__(self, table: ColumnarRelation) -> None:
        self.table = table
        self.alive: int | None = None  # None = every row alive
        self.live_count = table.nrows
        self._version = 0
        self._live_keys: dict[tuple[str, ...], tuple[int, set]] = {}

    def kill(self, dead: int) -> None:
        """Clear the rows of the ``dead`` bitmask from the alive set."""
        alive = self.alive if self.alive is not None else (1 << self.table.nrows) - 1
        survivors = alive & ~dead
        if survivors == alive and self.alive is not None:
            return  # only already-dead rows: the mask (and caches) stand
        self.alive = survivors
        self.live_count = survivors.bit_count()
        self._version += 1

    def selectors(self) -> bytes | None:
        """Per-row 0/1 selector bytes of the alive mask (None = all alive)."""
        if self.alive is None:
            return None
        return _mask_to_selectors(self.alive, self.table.nrows)

    def live_rows(self):
        """Iterate the alive rows as code tuples."""
        if self.alive is None:
            return self.table.rows()
        return compress(self.table.rows(), self.selectors())

    def live_keys(self, attributes: tuple[str, ...]) -> set:
        """Distinct join keys of the alive rows over ``attributes``.

        Cached per attribute subset while the alive mask is unchanged — the
        top-down pass re-reads the key sets the bottom-up pass computed for
        every node whose mask was not touched in between.
        """
        cached = self._live_keys.get(attributes)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        keys = self.table.key_column(attributes)
        if self.alive is None:
            result = set(keys)
        else:
            result = set(compress(keys, self.selectors()))
        self._live_keys[attributes] = (self._version, result)
        return result


@dataclass
class ExecutionResult:
    """Outcome of running a plan: exactly one of the payloads is primary.

    ``answers`` is populated for ``ENUMERATE``; ``count`` for ``COUNT`` (and
    derived for ``ENUMERATE``); ``boolean`` is filled for every mode.
    """

    mode: AnswerMode
    answers: Relation | None = None
    boolean: bool | None = None
    count: int | None = None
    statistics: ExecutionStatistics = field(default_factory=ExecutionStatistics)


class PlanExecutor:
    """Runs compiled plans over a column store.

    ``cancel_event`` (any object with ``is_set()``) and ``deadline`` (a
    ``time.monotonic`` instant) arm in-flight cancellation: the executor
    polls at stage boundaries and every ``check_stride`` rows inside the
    join/semijoin kernels, raising
    :class:`~repro.exceptions.TimeoutExceeded` promptly instead of running
    the plan to completion.  Unarmed executions (both ``None``, the default)
    pay a single ``is None`` test per kernel row.
    """

    def __init__(
        self,
        store: ColumnStore,
        cancel_event=None,
        deadline: float | None = None,
        check_stride: int = _CHECK_STRIDE,
    ) -> None:
        self.store = store
        self._watchdog = (
            None
            if cancel_event is None and deadline is None
            else _Watchdog(cancel_event, deadline, stride=check_stride)
        )

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #
    def execute(self, plan: QueryPlan) -> ExecutionResult:
        """Execute ``plan`` against the store's database."""
        stats = ExecutionStatistics()
        if self._watchdog is not None:
            self._watchdog.check()

        states = self._materialise_bags(plan, stats)
        if states is None:
            stats.early_exit = True
            return self._empty_result(plan, stats)

        if not self._reduce(plan, states, stats):
            stats.early_exit = True
            return self._empty_result(plan, stats)

        if plan.mode is AnswerMode.BOOLEAN:
            # Bottom-up reduction succeeded with a surviving root tuple.
            return ExecutionResult(plan.mode, boolean=True, statistics=stats)

        root = self._join_stage(plan, states, stats)
        # Joins of distinct inputs stay distinct and projections dedupe, so
        # the root row count *is* the answer count.
        if plan.mode is AnswerMode.COUNT:
            count = root.nrows
            return ExecutionResult(plan.mode, boolean=count > 0, count=count, statistics=stats)
        if self._watchdog is not None:
            self._watchdog.check()
        # Decode column-at-a-time and adopt the zipped tuples directly.
        values = self.store._values
        decoded_columns = [[values[code] for code in column] for column in root.columns]
        rows = set(zip(*decoded_columns)) if decoded_columns else (
            {()} if root.nrows else set()
        )
        relation = Relation.from_trusted_rows("answer", plan.output, rows)
        return ExecutionResult(
            plan.mode,
            answers=relation,
            boolean=len(relation) > 0,
            count=len(relation),
            statistics=stats,
        )

    # ------------------------------------------------------------------ #
    # stage 1: bag materialisation
    # ------------------------------------------------------------------ #
    def _materialise_bags(
        self, plan: QueryPlan, stats: ExecutionStatistics
    ) -> list[_NodeState] | None:
        states: list[_NodeState] = []
        for bag in plan.bags:
            if self._watchdog is not None:
                self._watchdog.check()
            key = (
                tuple(ColumnStore.atom_key(plan.atoms[i]) for i in bag.cover),
                bag.variables,
                tuple(ColumnStore.atom_key(plan.atoms[i]) for i in bag.assigned),
            )
            table, cached = self.store.bag_table(
                key, lambda: self._build_bag(plan, bag, stats)
            )
            if cached:
                stats.bags_reused += 1
            else:
                stats.bags_built += 1
            if table.nrows == 0:
                return None
            states.append(_NodeState(table))
        return states

    def _build_bag(self, plan: QueryPlan, bag, stats: ExecutionStatistics) -> ColumnarRelation:
        pending = [self.store.atom_table(plan.atoms[i]) for i in bag.cover]
        # Greedy join order: always join in a table sharing attributes with
        # the accumulated schema to avoid needless cartesian growth.
        current = pending.pop(0)
        while pending:
            choice = next(
                (
                    i
                    for i, table in enumerate(pending)
                    if any(a in current._position for a in table.schema)
                ),
                0,
            )
            current = self._join(current, pending.pop(choice), stats)
        # Project onto the bag variables (dedupe on code tuples).
        if current.schema != bag.variables:
            positions = [current._position[a] for a in bag.variables]
            columns = [current.columns[p] for p in positions]
            if columns:
                current = _dedupe_columns(bag.variables, columns, current.nrows)
            else:
                rows = set() if current.nrows == 0 else {()}
                current = ColumnarRelation.from_rows(bag.variables, rows)
        stats.rows_materialised += current.nrows
        # Filter by the atoms assigned to the node (semijoin on shared vars).
        for atom_index in bag.assigned:
            if self._watchdog is not None:
                self._watchdog.check()
            binding = plan.atoms[atom_index]
            atom = self.store.atom_table(binding)
            shared = tuple(a for a in bag.variables if a in atom._position)
            if not shared:
                if atom.nrows == 0:
                    return ColumnarRelation.from_rows(bag.variables, ())
                continue
            keys = set(atom.key_column(shared))
            bag_keys = current.key_column(shared)
            keep = bytes(key in keys for key in bag_keys)
            survivors = sum(keep)
            if survivors == current.nrows:
                continue
            columns = tuple(
                _compress_column(column, keep) for column in current.columns
            )
            current = ColumnarRelation(bag.variables, columns, nrows=survivors)
        return current

    # ------------------------------------------------------------------ #
    # stage 2: the semijoin passes (full reduction)
    # ------------------------------------------------------------------ #
    def _reduce(
        self, plan: QueryPlan, states: list[_NodeState], stats: ExecutionStatistics
    ) -> bool:
        """Run the bottom-up (and for non-Boolean plans top-down) passes.

        Returns False as soon as any node loses all its tuples.
        """
        for op in plan.bottom_up:
            if not self._semijoin(states[op.target], states[op.source], op.on, stats):
                return False
        for op in plan.top_down:
            if not self._semijoin(states[op.target], states[op.source], op.on, stats):
                return False
        return True

    def _semijoin(
        self,
        target: _NodeState,
        source: _NodeState,
        on: tuple[str, ...],
        stats: ExecutionStatistics,
    ) -> bool:
        if not on:
            # No shared variables: the source is non-empty (empty nodes abort
            # the passes), so the semijoin keeps everything.
            stats.semijoins_skipped += 1
            return True
        stats.semijoins_run += 1
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.check()
        source_keys = source.live_keys(on)
        key_masks = target.table.key_masks(on, stats)
        # OR the row masks of the dead key groups, then clear them all at
        # once — the per-row work collapses into wide integer ops.
        dead = 0
        for key, mask in key_masks.items():
            if watchdog is not None:
                watchdog.tick()
            if key not in source_keys:
                dead |= mask
        if dead:
            target.kill(dead)
        return target.live_count > 0

    # ------------------------------------------------------------------ #
    # stage 3: the projecting join schedule
    # ------------------------------------------------------------------ #
    def _join_stage(
        self, plan: QueryPlan, states: list[_NodeState], stats: ExecutionStatistics
    ) -> ColumnarRelation:
        # Per-node intermediate results; initialised lazily from the node
        # state so untouched leaves never materialise row sets.
        results: dict[int, ColumnarRelation] = {}

        def node_result(node_id: int) -> ColumnarRelation:
            table = results.get(node_id)
            if table is not None:
                return table
            state = states[node_id]
            if state.alive is None:
                table = state.table
            else:
                # Compact column-at-a-time; the mask keeps rows distinct.
                selectors = state.selectors()
                columns = tuple(
                    _compress_column(column, selectors)
                    for column in state.table.columns
                )
                table = ColumnarRelation(state.table.schema, columns, nrows=state.live_count)
            results[node_id] = table
            return table

        for op in plan.join_schedule:
            if isinstance(op, JoinOp):
                parent = node_result(op.target)
                child = node_result(op.source)
                child = self._project(child, op.retain)
                results[op.target] = self._join(parent, child, stats)
            else:  # ProjectOp
                results[op.node] = self._project(node_result(op.node), op.attributes)

        return node_result(0)

    # ------------------------------------------------------------------ #
    # relational kernels
    # ------------------------------------------------------------------ #
    def _project(self, table: ColumnarRelation, attributes: tuple[str, ...]) -> ColumnarRelation:
        if attributes == table.schema:
            return table
        if not attributes:
            rows: set[tuple[int, ...]] = {()} if table.nrows else set()
            return ColumnarRelation.from_rows((), rows)
        columns = [table.column(a) for a in attributes]
        return _dedupe_columns(attributes, columns, table.nrows)

    def _join(
        self, left: ColumnarRelation, right: ColumnarRelation, stats: ExecutionStatistics
    ) -> ColumnarRelation:
        """Natural join; schema is left's attributes then right's extras.

        Works column-at-a-time: the probe phase only collects matching
        (left, right) row-id pairs, then every output column is gathered in
        one pass.  Both inputs hold distinct rows, so the output rows are
        distinct without a dedupe pass.
        """
        stats.joins_run += 1
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.check()
        shared = tuple(a for a in left.schema if a in right._position)
        right_extra = tuple(a for a in right.schema if a not in left._position)
        schema = left.schema + right_extra

        if not shared:
            # Cartesian product (rare: disjoint λ-cover atoms in one bag).
            n_left, n_right = left.nrows, right.nrows
            columns = [
                array(
                    _CODE_TYPECODE,
                    (value for value in column for _ in range(n_right)),
                )
                for column in left.columns
            ]
            columns += [
                array(_CODE_TYPECODE, list(column) * n_left)
                for column in right.columns
            ]
            return ColumnarRelation(schema, tuple(columns), nrows=n_left * n_right)

        # Probe the (cached) index of the right side with left-side keys.
        index = right.index_on(shared, stats)
        left_ids: list[int] = []
        right_ids: list[int] = []
        extend = right_ids.extend
        for left_id, key in enumerate(left.key_column(shared)):
            if watchdog is not None:
                watchdog.tick()
            bucket = index.get(key)
            if bucket is not None:
                extend(bucket)
                left_ids.extend([left_id] * len(bucket))
        stats.rows_materialised += len(right_ids)
        columns = [_gather(column, left_ids) for column in left.columns]
        columns += [
            _gather(right.column(a), right_ids) for a in right_extra
        ]
        return ColumnarRelation(schema, tuple(columns), nrows=len(right_ids))

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _empty_result(self, plan: QueryPlan, stats: ExecutionStatistics) -> ExecutionResult:
        if plan.mode is AnswerMode.BOOLEAN:
            return ExecutionResult(plan.mode, boolean=False, statistics=stats)
        if plan.mode is AnswerMode.COUNT:
            return ExecutionResult(plan.mode, boolean=False, count=0, statistics=stats)
        empty = Relation("answer", plan.output, set())
        return ExecutionResult(plan.mode, answers=empty, boolean=False, count=0, statistics=stats)


def execute_plan(
    plan: QueryPlan,
    database: Database,
    store: ColumnStore | None = None,
    cancel_event=None,
    deadline: float | None = None,
) -> ExecutionResult:
    """Convenience wrapper: run ``plan`` over ``database``.

    Pass a persistent :class:`ColumnStore` to amortise dictionary encoding
    and base-relation indexes across the queries of a workload;
    ``cancel_event``/``deadline`` arm in-flight cancellation (see
    :class:`PlanExecutor`).
    """
    if store is None:
        store = ColumnStore(database)
    elif store.database is not database:
        raise QueryError("the column store belongs to a different database")
    return PlanExecutor(store, cancel_event=cancel_event, deadline=deadline).execute(plan)
