"""In-memory relations for the query-evaluation substrate.

The paper motivates hypertree decompositions with conjunctive query
evaluation: a width-k HD reduces a CQ to an acyclic instance which
Yannakakis' algorithm evaluates in polynomial time.  To demonstrate (and
test) that pipeline end to end, this module provides a small relational
layer: a :class:`Relation` is a named set of tuples over a schema of
attribute names, supporting projection, selection, natural join and
semijoin — everything the Yannakakis implementation needs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..exceptions import QueryError

__all__ = ["Relation"]


class Relation:
    """A named relation: a schema (attribute names) plus a set of tuples."""

    __slots__ = ("name", "schema", "tuples")

    def __init__(
        self,
        name: str,
        schema: Sequence[str],
        tuples: Iterable[Sequence[object]] = (),
    ) -> None:
        self.name = name
        self.schema = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise QueryError(f"relation {name!r} has duplicate attributes")
        rows: set[tuple[object, ...]] = set()
        for row in tuples:
            row = tuple(row)
            if len(row) != len(self.schema):
                raise QueryError(
                    f"relation {name!r}: tuple {row!r} does not match the "
                    f"{len(self.schema)}-attribute schema"
                )
            rows.add(row)
        self.tuples = rows

    # ------------------------------------------------------------------ #
    # basics
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __contains__(self, row: object) -> bool:
        return tuple(row) in self.tuples  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.as_dicts() == other.as_dicts()

    def __repr__(self) -> str:
        return f"<Relation {self.name!r}({', '.join(self.schema)}) |{len(self)}| >"

    def as_dicts(self) -> set[frozenset[tuple[str, object]]]:
        """The tuples as attribute → value mappings (order independent)."""
        return {
            frozenset(zip(self.schema, row)) for row in self.tuples
        }

    def attribute_index(self, attribute: str) -> int:
        """Position of ``attribute`` in the schema."""
        try:
            return self.schema.index(attribute)
        except ValueError:
            raise QueryError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # relational operators
    # ------------------------------------------------------------------ #
    def project(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Projection onto the given attributes (duplicates removed)."""
        positions = [self.attribute_index(a) for a in attributes]
        rows = {tuple(row[p] for p in positions) for row in self.tuples}
        return Relation(name or f"π({self.name})", attributes, rows)

    def select_equal(self, attribute: str, value: object, name: str | None = None) -> "Relation":
        """Selection σ_{attribute = value}."""
        position = self.attribute_index(attribute)
        rows = {row for row in self.tuples if row[position] == value}
        return Relation(name or f"σ({self.name})", self.schema, rows)

    def rename(self, mapping: dict[str, str], name: str | None = None) -> "Relation":
        """Rename attributes according to ``mapping`` (missing keys unchanged)."""
        schema = tuple(mapping.get(a, a) for a in self.schema)
        return Relation(name or self.name, schema, self.tuples)

    def natural_join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join on the shared attributes (hash join)."""
        shared = [a for a in self.schema if a in other.schema]
        own_extra = [a for a in self.schema if a not in shared]
        other_extra = [a for a in other.schema if a not in shared]
        schema = tuple(shared + own_extra + other_extra)

        own_shared_pos = [self.attribute_index(a) for a in shared]
        own_extra_pos = [self.attribute_index(a) for a in own_extra]
        other_shared_pos = [other.attribute_index(a) for a in shared]
        other_extra_pos = [other.attribute_index(a) for a in other_extra]

        index: dict[tuple, list[tuple]] = {}
        for row in other.tuples:
            key = tuple(row[p] for p in other_shared_pos)
            index.setdefault(key, []).append(tuple(row[p] for p in other_extra_pos))

        rows: set[tuple[object, ...]] = set()
        for row in self.tuples:
            key = tuple(row[p] for p in own_shared_pos)
            for extra in index.get(key, ()):
                rows.add(key + tuple(row[p] for p in own_extra_pos) + extra)
        return Relation(name or f"({self.name}⋈{other.name})", schema, rows)

    def semijoin(self, other: "Relation", name: str | None = None) -> "Relation":
        """Semijoin: keep the tuples that join with at least one tuple of ``other``."""
        shared = [a for a in self.schema if a in other.schema]
        if not shared:
            # Copy: returning self.tuples by reference would alias the result
            # with this relation, so mutating one would corrupt the other.
            rows = set(self.tuples) if len(other) else set()
            return Relation(name or self.name, self.schema, rows)
        own_pos = [self.attribute_index(a) for a in shared]
        other_pos = [other.attribute_index(a) for a in shared]
        keys = {tuple(row[p] for p in other_pos) for row in other.tuples}
        rows = {row for row in self.tuples if tuple(row[p] for p in own_pos) in keys}
        return Relation(name or self.name, self.schema, rows)

    def is_empty(self) -> bool:
        """True iff the relation has no tuples."""
        return not self.tuples

    @classmethod
    def from_dicts(
        cls, name: str, schema: Sequence[str], rows: Iterable[dict[str, object]]
    ) -> "Relation":
        """Build a relation from attribute → value dictionaries."""
        return cls(name, schema, [tuple(row[a] for a in schema) for row in rows])

    @classmethod
    def from_trusted_rows(
        cls, name: str, schema: Sequence[str], rows: set[tuple[object, ...]]
    ) -> "Relation":
        """Adopt an existing set of schema-conformant tuples without copying.

        Fast path for internal producers (the columnar executor decodes its
        answer columns straight into such a set); the caller guarantees every
        tuple matches the schema arity and hands over ownership of ``rows``.
        """
        relation = cls.__new__(cls)
        relation.name = name
        relation.schema = tuple(schema)
        relation.tuples = rows
        return relation
