"""A minimal relation catalogue used by the CQ/CSP evaluation substrate."""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping

from ..exceptions import QueryError
from ..hypergraph.cq import ConjunctiveQuery
from .relation import Relation

__all__ = ["Database", "random_database_for_query"]


class Database:
    """A named collection of :class:`~repro.query.relation.Relation` objects."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> None:
        """Register a relation; duplicate names are rejected."""
        if relation.name in self._relations:
            raise QueryError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def get(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise QueryError(f"unknown relation {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def relation_names(self) -> list[str]:
        """All registered relation names."""
        return sorted(self._relations)

    def total_tuples(self) -> int:
        """Total number of tuples over all relations."""
        return sum(len(r) for r in self._relations.values())


def random_database_for_query(
    query: ConjunctiveQuery,
    domain_size: int = 6,
    tuples_per_relation: int = 20,
    seed: int = 0,
    domains: Mapping[str, Iterable[object]] | None = None,
) -> Database:
    """Generate a random database matching the atoms of ``query``.

    Each atom receives a relation named like the atom's relation symbol with
    random tuples over a shared integer domain.  Deterministic for a fixed
    seed — used by the examples and the end-to-end tests of Yannakakis.
    """
    rng = random.Random(seed)
    database = Database()
    domain = list(range(domain_size))
    seen: set[str] = set()
    for atom in query.atoms:
        if atom.relation in seen:
            continue
        seen.add(atom.relation)
        schema = [f"a{i}" for i in range(len(atom.arguments))]
        rows = set()
        for _ in range(tuples_per_relation):
            if domains is not None:
                row = tuple(
                    rng.choice(list(domains.get(var, domain)))
                    for var in atom.arguments
                )
            else:
                row = tuple(rng.choice(domain) for _ in atom.arguments)
            rows.add(row)
        database.add(Relation(atom.relation, schema, rows))
    return database
