"""Yannakakis' algorithm over join trees.

Given a join tree whose nodes carry materialised relations (one per bag),
Yannakakis' algorithm evaluates the corresponding acyclic join in polynomial
time:

1. a bottom-up semijoin pass removes tuples that cannot join with any tuple
   of a descendant,
2. a top-down semijoin pass removes tuples that cannot join with the parent
   (after this *full reduction* every remaining tuple participates in at
   least one answer),
3. a bottom-up join pass assembles the answers, projecting intermediate
   results onto the output variables plus the variables still needed higher
   up — which keeps intermediate results polynomial.

Combined with bag materialisation from a width-k HD (see
:mod:`repro.query.cq_eval`), this is the end-to-end pipeline the paper's
introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..exceptions import QueryError
from .relation import Relation

__all__ = ["AnnotatedNode", "full_reduce", "yannakakis", "semijoin_pass_count"]


@dataclass
class AnnotatedNode:
    """A join-tree node annotated with its materialised bag relation."""

    relation: Relation
    children: list["AnnotatedNode"] = field(default_factory=list)

    def nodes(self) -> list["AnnotatedNode"]:
        """All nodes of the subtree in pre-order."""
        result = [self]
        for child in self.children:
            result.extend(child.nodes())
        return result


def full_reduce(root: AnnotatedNode) -> AnnotatedNode:
    """Run the bottom-up and top-down semijoin passes in place; return ``root``."""
    _bottom_up(root)
    _top_down(root)
    return root


def _bottom_up(node: AnnotatedNode) -> None:
    for child in node.children:
        _bottom_up(child)
        node.relation = node.relation.semijoin(child.relation)


def _top_down(node: AnnotatedNode) -> None:
    for child in node.children:
        child.relation = child.relation.semijoin(node.relation)
        _top_down(child)


def semijoin_pass_count(root: AnnotatedNode) -> int:
    """Number of semijoins a full reduction performs (2 per tree edge)."""
    return 2 * (len(root.nodes()) - 1)


def yannakakis(root: AnnotatedNode, output_variables: Sequence[str]) -> Relation:
    """Evaluate the acyclic join described by the annotated tree.

    Returns the relation over ``output_variables``; for a Boolean query
    (empty output) the result is a 0-ary relation that is non-empty iff the
    join is non-empty.
    """
    output = list(dict.fromkeys(output_variables))
    all_variables: set[str] = set()
    for node in root.nodes():
        all_variables.update(node.relation.schema)
    missing = [v for v in output if v not in all_variables]
    if missing:
        raise QueryError(f"output variables {missing} do not occur in the join tree")

    full_reduce(root)
    if any(node.relation.is_empty() for node in root.nodes()):
        return Relation("answer", tuple(output), set())

    joined = _joined_projection(root, frozenset(output))
    if not output:
        rows = {()} if len(joined) else set()
        return Relation("answer", (), rows)
    return joined.project(output, name="answer")


def _joined_projection(node: AnnotatedNode, keep: frozenset[str]) -> Relation:
    """Bottom-up join keeping only output variables and connecting variables."""
    current = node.relation
    for child in node.children:
        child_needed = keep | set(node.relation.schema)
        child_result = _joined_projection(child, keep)
        retained = [a for a in child_result.schema if a in child_needed]
        current = current.natural_join(child_result.project(retained))
    # Project onto what the ancestors may still need plus the output.
    wanted = [a for a in current.schema if a in keep or a in node.relation.schema]
    return current.project(wanted)
