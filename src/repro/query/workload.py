"""The serving-grade query API: plan once, execute many.

:class:`QueryEngine` is the front door of the plan-compiled query path.  It
owns

* a **decomposer** built through :mod:`repro.pipeline.registry`, so every
  decomposition runs through the staged
  :class:`~repro.pipeline.engine.DecompositionEngine` (simplification +
  canonical-hash result cache): two queries with the same hypergraph share
  one decomposition search even if their relation names differ;
* a **plan cache** — an LRU obtained from the decomposition engine's
  :meth:`~repro.pipeline.engine.DecompositionEngine.auxiliary_cache`, keyed
  by (query signature, answer mode, algorithm configuration), so repeated
  query shapes skip planning entirely;
* per-database **column stores** so dictionary encodings and base-relation
  key indexes persist across the queries of a workload.

:class:`QueryWorkload` batches queries against one database and reports
aggregate timings plus cache traffic — the serving loop in miniature.

Example (doctest-verified):

    >>> from repro import DecompositionEngine
    >>> from repro.hypergraph.cq import parse_conjunctive_query
    >>> from repro.query import QueryEngine, QueryWorkload, random_database_for_query
    >>> query = parse_conjunctive_query("ans(x, z) :- r(x,y), s(y,z).")
    >>> database = random_database_for_query(query, seed=1)
    >>> engine = QueryEngine(engine=DecompositionEngine())
    >>> engine.execute(query, database).width   # an acyclic chain: width 1
    1
    >>> report = QueryWorkload(database, engine=engine).extend([query] * 3).run()
    >>> (report.queries_run, report.plan_cache_hits)
    (3, 3)
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass, field

from ..core.width import hypertree_width
from ..decomp.decomposition import Decomposition
from ..decomp.jointree import JoinTree, join_tree_from_decomposition
from ..exceptions import QueryError
from ..hypergraph.cq import ConjunctiveQuery
from ..pipeline.engine import DecompositionEngine, default_engine
from ..pipeline.registry import registry
from .columnar import ColumnStore, ExecutionResult, PlanExecutor
from .database import Database
from .plan import AnswerMode, QueryPlan, compile_plan
from .relation import Relation
from .sqlgen import SQLExecutor, SQLStore, compile_sql

__all__ = [
    "PlannedQuery",
    "QueryAnswer",
    "QueryResult",
    "QueryEngine",
    "QueryWorkload",
    "WorkloadReport",
]


def query_signature(query: ConjunctiveQuery) -> tuple:
    """Structural identity of a query: atoms (relation + arguments) and output.

    Two queries with equal signatures compile to interchangeable plans; the
    signature deliberately ignores the query name.
    """
    atoms = tuple((atom.relation, atom.arguments) for atom in query.atoms)
    return (atoms, tuple(dict.fromkeys(query.free_variables)))


@dataclass
class PlannedQuery:
    """A compiled plan plus the decomposition artefacts it came from."""

    plan: QueryPlan
    decomposition: Decomposition
    join_tree: JoinTree
    width: int
    decomposition_seconds: float
    compile_seconds: float


@dataclass
class QueryResult:
    """One executed query: the execution payload plus serving metadata."""

    query: ConjunctiveQuery
    planned: PlannedQuery
    execution: ExecutionResult
    plan_cached: bool
    plan_seconds: float
    execution_seconds: float

    @property
    def mode(self) -> AnswerMode:
        """The answer mode the plan was compiled for."""
        return self.planned.plan.mode

    @property
    def answers(self) -> Relation | None:
        """The answer relation (``ENUMERATE`` mode only)."""
        return self.execution.answers

    @property
    def boolean(self) -> bool:
        """Whether the query has at least one answer."""
        return bool(self.execution.boolean)

    @property
    def count(self) -> int | None:
        """The number of distinct answers (``COUNT``/``ENUMERATE`` modes)."""
        return self.execution.count

    @property
    def width(self) -> int:
        """The hypertree width of the plan's decomposition."""
        return self.planned.width


@dataclass
class QueryAnswer:
    """A host-free query outcome — what crosses the process boundary.

    Field-compatible with the read surface of :class:`QueryResult`
    (``mode``/``answers``/``boolean``/``count``/``width`` plus the serving
    metadata), but without the live :class:`PlannedQuery`/execution objects:
    the process-backed serving layer decodes worker answers into this shape
    (see :mod:`repro.core.codec`), so callers can consume decomposition-
    and query-service tickets uniformly across backends.
    """

    mode: AnswerMode
    answers: Relation | None
    boolean: bool
    count: int | None
    width: int
    plan_cached: bool
    plan_seconds: float
    execution_seconds: float
    #: The execution's :meth:`ExecutionStatistics.as_dict` counters.
    statistics: dict = field(default_factory=dict)


@dataclass
class WorkloadReport:
    """Aggregate outcome of a :class:`QueryWorkload` run."""

    results: list[QueryResult] = field(default_factory=list)
    total_seconds: float = 0.0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    @property
    def queries_run(self) -> int:
        """Number of executed queries."""
        return len(self.results)


class QueryEngine:
    """Plan-compiled, columnar query evaluation with cached plans.

    Parameters mirror :func:`repro.query.cq_eval.evaluate_query`:
    ``algorithm`` is any registry name, ``max_width``/``timeout`` bound the
    decomposition search, ``simplify=False`` bypasses the staged engine for
    the search (the plan cache still applies).  ``engine`` pins an explicit
    :class:`~repro.pipeline.engine.DecompositionEngine`; by default the
    process-wide engine is used, so plans and decompositions are shared with
    every other caller and reset together via
    :func:`repro.pipeline.engine.set_default_engine`.
    """

    PLAN_CACHE_NAME = "query-plans"
    SQL_CACHE_NAME = "query-sql"

    def __init__(
        self,
        algorithm: str = "hybrid",
        max_width: int = 10,
        timeout: float | None = None,
        simplify: bool = True,
        plan_cache_entries: int = 256,
        engine: DecompositionEngine | None = None,
        **algorithm_options,
    ) -> None:
        self.algorithm = algorithm
        self.max_width = max_width
        self.timeout = timeout
        self.simplify = simplify
        self.engine = engine
        self.algorithm_options = algorithm_options
        self._plan_cache_entries = plan_cache_entries
        self._configuration = registry.configuration_key(
            algorithm,
            timeout=timeout,
            use_engine=simplify,
            **algorithm_options,
        )
        #: Per-database column stores, dropped when the database is collected.
        self._stores: "weakref.WeakKeyDictionary[Database, ColumnStore]" = (
            weakref.WeakKeyDictionary()
        )
        #: Per-database SQL stores (connection + interned base tables) for
        #: the ``executor="sql"`` arm, with the same lifetime rule.
        self._sql_stores: "weakref.WeakKeyDictionary[Database, SQLStore]" = (
            weakref.WeakKeyDictionary()
        )
        self._stores_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    @property
    def configuration(self) -> tuple:
        """The resolved algorithm-configuration key of this engine.

        Computed through
        :meth:`repro.pipeline.registry.DecomposerRegistry.configuration_key`,
        so aliases and defaulted options collapse to one identity; the plan
        cache and the serving layer's dedup table key on it.
        """
        return self._configuration

    # ------------------------------------------------------------------ #
    # caches
    # ------------------------------------------------------------------ #
    def _decomposition_engine(self) -> DecompositionEngine:
        return self.engine if self.engine is not None else default_engine()

    def _plan_cache(self):
        return self._decomposition_engine().auxiliary_cache(
            self.PLAN_CACHE_NAME, self._plan_cache_entries
        )

    def store_for(self, database: Database) -> ColumnStore:
        """The persistent column store of ``database`` (created on demand).

        Guarded by a lock so concurrent executions against a new database
        agree on one store — two stores for one database would intern the
        same values under different codes and waste every shared index.
        """
        with self._stores_lock:
            store = self._stores.get(database)
            if store is None:
                store = ColumnStore(database)
                self._stores[database] = store
            return store

    def sql_store_for(self, database: Database) -> SQLStore:
        """The persistent SQL store of ``database`` (created on demand).

        Same uniqueness argument as :meth:`store_for`: one store per
        database keeps one connection, one set of loaded base tables and
        one interning dictionary."""
        with self._stores_lock:
            store = self._sql_stores.get(database)
            if store is None:
                store = SQLStore(database)
                self._sql_stores[database] = store
            return store

    def sql_program(self, query: ConjunctiveQuery, planned: PlannedQuery, store: SQLStore):
        """The cached SQL rendering of ``planned`` for ``store``'s source.

        Cached next to the plan cache in the decomposition engine's
        auxiliary LRU, keyed like a plan plus the source fingerprint —
        in-memory sources share one program, on-disk sources re-key when
        the file schema differs."""
        key = (
            query_signature(query),
            planned.plan.mode.value,
            self._configuration,
            self.max_width,
            store.source_fingerprint(planned.plan),
        )
        cache = self._decomposition_engine().auxiliary_cache(
            self.SQL_CACHE_NAME, self._plan_cache_entries
        )
        program = cache.get(key)
        if program is None:
            program = compile_sql(planned.plan, store.catalog_for(planned.plan))
            cache.put(key, program)
        return program

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(
        self, query: ConjunctiveQuery, mode: AnswerMode | str = AnswerMode.ENUMERATE
    ) -> tuple[PlannedQuery, bool]:
        """Return the compiled plan for ``query`` and whether it was cached."""
        mode = AnswerMode.coerce(mode)
        key = (query_signature(query), mode.value, self._configuration, self.max_width)
        cache = self._plan_cache()
        planned = cache.get(key)
        if planned is not None:
            with self._counter_lock:  # += is a non-atomic read-modify-write
                self.plan_cache_hits += 1
            return planned, True
        with self._counter_lock:
            self.plan_cache_misses += 1

        start = time.monotonic()
        width, decomposition = hypertree_width(
            query.hypergraph(),
            algorithm=self.algorithm,
            max_width=self.max_width,
            timeout=self.timeout,
            use_engine=self.simplify,
            engine=self.engine,
            **self.algorithm_options,
        )
        decomposition_seconds = time.monotonic() - start
        if width is None or decomposition is None:
            raise QueryError(
                f"no hypertree decomposition of width <= {self.max_width} found "
                f"for the query"
            )
        start = time.monotonic()
        join_tree = join_tree_from_decomposition(decomposition)
        join_tree.validate()
        plan = compile_plan(query, join_tree, mode)
        compile_seconds = time.monotonic() - start
        planned = PlannedQuery(
            plan=plan,
            decomposition=decomposition,
            join_tree=join_tree,
            width=width,
            decomposition_seconds=decomposition_seconds,
            compile_seconds=compile_seconds,
        )
        cache.put(key, planned)
        return planned, False

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: ConjunctiveQuery,
        database: Database,
        mode: AnswerMode | str = AnswerMode.ENUMERATE,
        *,
        executor: str = "columnar",
        cancel_event=None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Plan (or fetch the cached plan for) ``query`` and run it.

        ``executor`` picks the execution arm for the shared plan:
        ``"columnar"`` (default) runs in-memory; ``"sql"`` pushes the plan
        down into SQLite (see :mod:`repro.query.sqlgen`), reusing the plan
        cache and caching the generated SQL program alongside it.

        ``cancel_event`` (any object with ``is_set()``) and ``timeout``
        (seconds) arm in-flight cancellation of the *execution* stage: the
        columnar executor polls periodically and raises
        :class:`~repro.exceptions.TimeoutExceeded` promptly, and the SQL
        executor interrupts the in-flight statement with the same
        semantics.  Planning is bounded separately by the engine-level
        ``timeout`` — the plan cache is keyed on the engine configuration,
        so a per-request deadline must not change what gets cached.
        """
        if executor not in ("columnar", "sql"):
            raise QueryError(f"unknown executor {executor!r}; known: columnar, sql")
        start = time.monotonic()
        planned, cached = self.plan(query, mode)
        plan_seconds = time.monotonic() - start

        if executor == "sql":
            sql_store = self.sql_store_for(database)
            program = self.sql_program(query, planned, sql_store)
            start = time.monotonic()
            deadline = None if timeout is None else start + timeout
            execution = SQLExecutor(
                sql_store, cancel_event=cancel_event, deadline=deadline
            ).execute(planned.plan, program)
        else:
            store = self.store_for(database)
            start = time.monotonic()
            deadline = None if timeout is None else start + timeout
            execution = PlanExecutor(
                store, cancel_event=cancel_event, deadline=deadline
            ).execute(planned.plan)
        execution_seconds = time.monotonic() - start
        return QueryResult(
            query=query,
            planned=planned,
            execution=execution,
            plan_cached=cached,
            plan_seconds=plan_seconds,
            execution_seconds=execution_seconds,
        )

    def execute_batch(
        self,
        queries,
        database: Database,
        mode: AnswerMode | str = AnswerMode.ENUMERATE,
        *,
        executor: str = "columnar",
    ) -> list[QueryResult]:
        """Execute a sequence of queries against one database."""
        return [
            self.execute(query, database, mode, executor=executor) for query in queries
        ]


class QueryWorkload:
    """A batch of (query, mode) pairs served against one database.

    Build it incrementally with :meth:`add` (or pass queries up front), then
    :meth:`run`.  All queries share the engine's plan cache, decomposition
    cache and the database's column store, so repeated shapes are served
    from warm state — the report's cache counters make that visible.
    """

    def __init__(
        self,
        database: Database,
        engine: QueryEngine | None = None,
        default_mode: AnswerMode | str = AnswerMode.ENUMERATE,
        executor: str = "columnar",
    ) -> None:
        if executor not in ("columnar", "sql"):
            raise QueryError(f"unknown executor {executor!r}; known: columnar, sql")
        self.database = database
        self.engine = engine if engine is not None else QueryEngine()
        self.default_mode = AnswerMode.coerce(default_mode)
        self.executor = executor
        self._items: list[tuple[ConjunctiveQuery, AnswerMode]] = []

    def add(
        self, query: ConjunctiveQuery, mode: AnswerMode | str | None = None
    ) -> "QueryWorkload":
        """Append a query (chainable)."""
        resolved = self.default_mode if mode is None else AnswerMode.coerce(mode)
        self._items.append((query, resolved))
        return self

    def extend(self, queries, mode: AnswerMode | str | None = None) -> "QueryWorkload":
        """Append many queries with one mode (chainable)."""
        for query in queries:
            self.add(query, mode)
        return self

    def __len__(self) -> int:
        return len(self._items)

    def run(self) -> WorkloadReport:
        """Execute every query; returns the per-query results plus totals."""
        report = WorkloadReport()
        hits_before = self.engine.plan_cache_hits
        misses_before = self.engine.plan_cache_misses
        start = time.monotonic()
        for query, mode in self._items:
            report.results.append(
                self.engine.execute(query, self.database, mode, executor=self.executor)
            )
        report.total_seconds = time.monotonic() - start
        report.plan_cache_hits = self.engine.plan_cache_hits - hits_before
        report.plan_cache_misses = self.engine.plan_cache_misses - misses_before
        return report
