"""HD-guided conjunctive query evaluation.

This is the end-to-end application pipeline the paper's introduction
motivates:

1. abstract the CQ to its hypergraph,
2. compute a hypertree decomposition of width ``k`` with one of the
   decomposers from :mod:`repro.core`,
3. compile the decomposition's join tree into an operator program
   (:mod:`repro.query.plan`) and run it on the columnar executor
   (:mod:`repro.query.columnar`) — or, with ``executor="eager"``, run the
   original tuple-at-a-time pipeline (materialise one relation per node,
   then Yannakakis), which is kept as the reference arm for differential
   tests and the ablation benchmarks.

The total cost is polynomial for every fixed ``k`` — the practical payoff of
computing HDs in the first place.  For serving many queries use
:class:`repro.query.workload.QueryEngine`, which adds plan caching and
persistent column stores on top of the same machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.width import hypertree_width
from ..decomp.decomposition import Decomposition
from ..decomp.jointree import JoinTree, join_tree_from_decomposition
from ..exceptions import QueryError
from ..hypergraph.cq import Atom, ConjunctiveQuery
from .columnar import ColumnStore, execute_plan
from .database import Database
from .joins import atom_relation, join_all
from .plan import AnswerMode, QueryPlan, compile_plan
from .relation import Relation
from .yannakakis import AnnotatedNode, yannakakis

__all__ = ["EvaluationReport", "evaluate_query", "materialise_bags"]


@dataclass
class EvaluationReport:
    """Result of an HD-guided evaluation, with the pieces used to produce it."""

    query: ConjunctiveQuery
    answers: Relation | None
    width: int
    decomposition: Decomposition
    join_tree: JoinTree
    decomposition_seconds: float
    evaluation_seconds: float
    mode: AnswerMode = AnswerMode.ENUMERATE
    executor: str = "columnar"
    count: int | None = None
    plan: QueryPlan | None = None

    @property
    def is_boolean(self) -> bool:
        """True iff the query had no output variables."""
        return self.query.is_boolean

    @property
    def boolean_answer(self) -> bool:
        """The Boolean answer (at least one answer exists)."""
        if self.answers is not None:
            return len(self.answers) > 0
        return bool(self.count)


def materialise_bags(
    join_tree: JoinTree,
    database: Database,
    edge_atoms: dict[str, Atom],
) -> AnnotatedNode:
    """Materialise one relation per join-tree node (the eager reference arm).

    The node relation is the join of the λ-cover atoms projected onto the bag
    variables, semijoin-filtered by every atom *assigned* to the node (atoms
    whose variables the bag covers but which are not part of the cover).
    """

    def build(node) -> AnnotatedNode:
        cover_atoms = [edge_atoms[name] for name in sorted(node.cover_edges)]
        if not cover_atoms:
            raise QueryError("decomposition node with an empty λ-label cannot be materialised")
        cover_relations = [atom_relation(database, atom) for atom in cover_atoms]
        joined = join_all(cover_relations, name="bag")
        bag_variables = [v for v in joined.schema if v in node.variables]
        bag_relation = joined.project(bag_variables, name="bag")
        for edge_name in sorted(node.assigned_edges):
            atom = edge_atoms[edge_name]
            bag_relation = bag_relation.semijoin(atom_relation(database, atom))
        return AnnotatedNode(
            relation=bag_relation,
            children=[build(child) for child in node.children],
        )

    return build(join_tree.root)


def evaluate_query(
    query: ConjunctiveQuery,
    database: Database,
    algorithm: str = "hybrid",
    max_width: int = 10,
    timeout: float | None = None,
    simplify: bool = True,
    executor: str = "columnar",
    mode: AnswerMode | str = AnswerMode.ENUMERATE,
    store: ColumnStore | None = None,
) -> EvaluationReport:
    """Evaluate ``query`` over ``database`` guided by a minimum-width HD.

    ``algorithm`` is any name known to :mod:`repro.pipeline.registry`.  The
    decomposition step runs through the staged engine by default, so queries
    with redundant (subsumed) atoms are decomposed on their simplified
    hypergraph and repeated query shapes hit the engine's result cache;
    ``simplify=False`` forces a raw search.

    ``executor`` selects the evaluation arm: ``"columnar"`` (default)
    compiles the join tree into a :class:`~repro.query.plan.QueryPlan` and
    runs the columnar executor; ``"sql"`` compiles the same plan to a SQL
    program pushed down into SQLite (:mod:`repro.query.sqlgen` — pass a
    :class:`~repro.query.sqlgen.SQLDatabase` to answer an on-disk file
    without loading it); ``"eager"`` runs the original
    tuple-at-a-time pipeline (only ``mode="enumerate"`` is supported there).
    ``mode`` is an :class:`~repro.query.plan.AnswerMode`: ``enumerate``
    returns the answers, ``boolean`` only decides non-emptiness (with early
    exit), ``count`` returns the number of distinct answers in
    :attr:`EvaluationReport.count` without decoding them.  A persistent
    ``store`` (see :class:`~repro.query.columnar.ColumnStore`) amortises
    dictionary encoding across calls.
    """
    mode = AnswerMode.coerce(mode)
    if executor not in ("columnar", "eager", "sql"):
        raise QueryError(f"unknown executor {executor!r}; known: columnar, eager, sql")
    if executor == "eager" and mode is not AnswerMode.ENUMERATE:
        raise QueryError("the eager reference executor only supports mode='enumerate'")

    hypergraph = query.hypergraph()

    start = time.monotonic()
    width, decomposition = hypertree_width(
        hypergraph,
        algorithm=algorithm,
        max_width=max_width,
        timeout=timeout,
        use_engine=simplify,
    )
    decomposition_seconds = time.monotonic() - start
    if width is None or decomposition is None:
        raise QueryError(
            f"no hypertree decomposition of width <= {max_width} found for the query"
        )

    start = time.monotonic()
    join_tree = join_tree_from_decomposition(decomposition)
    join_tree.validate()

    plan: QueryPlan | None = None
    count: int | None = None
    if executor in ("columnar", "sql"):
        plan = compile_plan(query, join_tree, mode)
        if executor == "sql":
            from .sqlgen import SQLStore, execute_plan_sql

            sql_store = store if isinstance(store, SQLStore) else None
            result = execute_plan_sql(plan, database, sql_store)
        else:
            result = execute_plan(plan, database, store)
        answers = result.answers
        count = result.count
        if mode is AnswerMode.BOOLEAN:
            # Represent the Boolean outcome as the canonical 0-ary relation.
            answers = Relation("answer", (), {()} if result.boolean else set())
            count = 1 if result.boolean else 0
    else:
        edge_atoms = query.edge_atom_map()
        annotated = materialise_bags(join_tree, database, edge_atoms)
        answers = yannakakis(annotated, list(query.free_variables))
        count = len(answers)
    evaluation_seconds = time.monotonic() - start

    return EvaluationReport(
        query=query,
        answers=answers,
        width=width,
        decomposition=decomposition,
        join_tree=join_tree,
        decomposition_seconds=decomposition_seconds,
        evaluation_seconds=evaluation_seconds,
        mode=mode,
        executor=executor,
        count=count,
        plan=plan,
    )
