"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class when they do not care about the precise failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class HypergraphError(ReproError):
    """Raised for malformed hypergraphs (empty edges, unknown vertices, ...)."""


class ParseError(ReproError):
    """Raised when a hypergraph or query file cannot be parsed."""


class DecompositionError(ReproError):
    """Raised when a decomposition object is structurally invalid."""


class ValidationError(DecompositionError):
    """Raised when a decomposition violates one of the HD/GHD conditions."""


class SolverError(ReproError):
    """Raised for invalid solver configuration (e.g. width < 1)."""


class TimeoutExceeded(ReproError):
    """Raised internally when a decomposer exceeds its time budget."""


class QueryError(ReproError):
    """Raised for malformed queries or schema mismatches in the query substrate."""


class ServiceError(ReproError):
    """Raised by the serving layer: submit after shutdown, cancelled tickets."""


class CatalogError(ReproError):
    """Raised by the decomposition catalog for non-degradable failures.

    Most catalog trouble degrades silently (retry, then circuit-open into a
    memory-only shadow); a :class:`CatalogError` is reserved for the cases
    the caller must see, such as :meth:`~repro.catalog.DecompositionCatalog.flush`
    discovering that the write-behind thread died with writes still queued.
    """
