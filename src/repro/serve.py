"""Command-line smoke driver for the concurrent serving layer.

Usage::

    python -m repro.serve --selftest [--workers 4] [--clients 8] [--json]
                          [--catalog my.db]

``--selftest`` hammers a fresh :class:`~repro.service.DecompositionService`
from several client threads with a duplicate-heavy mix of decomposition and
query requests, then verifies the serving invariants end to end:

* every decomposition answer matches the known width of its instance, and
  every produced certificate passes the independent ``validate_hd`` oracle;
* coalescing happened (in-flight dedup counter > 0) and the expensive
  search ran at most once per distinct request key;
* the three query answer modes agree with each other;
* the pool shuts down cleanly (no deadlock, bounded join).

Exit status 0 means every check passed.  ``--json`` prints the final
:meth:`~repro.service.DecompositionService.stats` snapshot as JSON for
scripting; the default output is a human-readable summary.

``--catalog PATH`` opens (or creates) a durable
:class:`~repro.catalog.DecompositionCatalog` behind the engine's result
cache: the selftest's decided outcomes are persisted, a second run with the
same catalog answers them from disk instead of recomputing (the report
shows the L2 hit/store counters), and the file can be inspected with
``python -m repro.catalog list PATH``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from collections.abc import Sequence

from .decomp.validation import validate_hd
from .hypergraph import generators
from .hypergraph.cq import parse_conjunctive_query
from .pipeline.engine import DecompositionEngine
from .query.database import random_database_for_query
from .service import DecompositionService

__all__ = ["main", "run_selftest"]

#: (instance factory, k, expected decision) — widths are pinned by the
#: tier-1 known-width tests, so a wrong answer here is a serving bug.
SELFTEST_INSTANCES = (
    (lambda: generators.cycle(6), 2, True),
    (lambda: generators.cycle(10), 2, True),
    (lambda: generators.grid(2, 3), 2, True),
    (lambda: generators.clique(5), 3, True),
    (lambda: generators.cycle(8), 1, False),
)

SELFTEST_QUERY = "ans(x, z) :- r(x,y), s(y,z), t(z,x)."


def run_selftest(
    workers: int = 4,
    clients: int = 8,
    repeats: int = 3,
    catalog: str | None = None,
) -> tuple[bool, str, dict]:
    """Run the concurrent smoke scenario; returns (ok, report text, stats dict).

    ``catalog`` (a path) makes the engine persist decided outcomes to a
    durable :class:`~repro.catalog.DecompositionCatalog` and serve repeats
    of previously-seen instances from it across process restarts.
    """
    instances = [(factory(), k, expect) for factory, k, expect in SELFTEST_INSTANCES]
    query = parse_conjunctive_query(SELFTEST_QUERY, name="selftest")
    database = random_database_for_query(query, domain_size=8, tuples_per_relation=40)

    failures: list[str] = []
    service = DecompositionService(
        num_workers=workers, engine=DecompositionEngine(catalog=catalog)
    )
    barrier = threading.Barrier(clients)

    def client(client_id: int) -> None:
        try:
            barrier.wait(timeout=30)
            for _ in range(repeats):
                tickets = [
                    (service.submit(hypergraph, k), expect)
                    for hypergraph, k, expect in instances
                ]
                query_tickets = [
                    service.submit_query(query, database, mode)
                    for mode in ("boolean", "count", "enumerate")
                ]
                for ticket, expect in tickets:
                    result = ticket.result(timeout=60)
                    if result.timed_out or result.success != expect:
                        failures.append(
                            f"client {client_id}: wrong answer for "
                            f"{result.hypergraph.name or result.hypergraph!r} "
                            f"k={result.width_parameter}"
                        )
                    elif result.success:
                        validate_hd(result.decomposition)
                boolean, count_, enum = [t.result(timeout=60) for t in query_tickets]
                if boolean.boolean != (enum.count > 0) or count_.count != enum.count:
                    failures.append(f"client {client_id}: query answer modes disagree")
        except Exception as exc:  # noqa: BLE001 - surfaced in the report
            failures.append(f"client {client_id}: {type(exc).__name__}: {exc}")

    # daemon=True: if a regression deadlocks a ticket (the very bug this
    # selftest exists to catch) the process must still exit 1 instead of
    # hanging in interpreter shutdown on a stuck non-daemon thread.
    threads = [
        threading.Thread(target=client, args=(i,), daemon=True) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        if thread.is_alive():
            failures.append("client thread did not finish (possible deadlock)")
    # Only wait for the pool on a clean run: with a failure detected the
    # workers may be wedged, and a bounded exit with rc=1 (all threads are
    # daemons) beats hanging the CI job on an unbounded join.
    service.shutdown(wait=not failures, cancel_pending=bool(failures))
    if service.engine.catalog is not None:
        # Drain the write-behind queue so the stats snapshot (and any
        # process started right after us) sees every decided outcome.
        service.engine.catalog.flush()

    stats = service.stats()
    unique_decompositions = len(instances)
    total = clients * repeats * (len(instances) + 3)
    if stats.completed != total:
        failures.append(f"completed {stats.completed} of {total} requests")
    if stats.coalesced + stats.fast_path_hits == 0:
        failures.append("no request was coalesced or served from the memo")
    # Decomposition results are memoized, so across the whole run each
    # distinct (instance, k) key must have been computed exactly once.
    # Query results are only deduplicated while in flight (they are not
    # memoized), so their computation count is merely bounded by the
    # submission count.
    decompose_runs = stats.computations_by_kind.get("decompose", 0)
    if decompose_runs > unique_decompositions:
        failures.append(
            f"{decompose_runs} decomposition computations for "
            f"{unique_decompositions} distinct keys (exactly-once violated)"
        )

    ok = not failures
    lines = [
        f"serve selftest: {clients} clients x {repeats} rounds over "
        f"{len(instances)} instances + 3 query modes ({workers} workers)",
        f"  requests submitted : {stats.submitted}",
        f"  completed          : {stats.completed}",
        f"  computations       : {stats.computations} "
        f"({decompose_runs} decompositions for {unique_decompositions} distinct keys)",
        f"  coalesced in-flight: {stats.coalesced}",
        f"  memo fast-path hits: {stats.fast_path_hits}",
        f"  latency p50 / p95  : {stats.latency_p50 * 1000:.2f} / "
        f"{stats.latency_p95 * 1000:.2f} ms",
        f"  engine cache hit % : {stats.engine_cache.hit_rate * 100:.0f}%",
    ]
    if stats.catalog is not None:
        lines.append(
            f"  catalog (L2)       : {stats.catalog.hits} hits, "
            f"{stats.catalog.misses} misses, {stats.catalog.stores} stores, "
            f"{stats.catalog.validate_rejects} validate-rejects"
            + (" [memory fallback]" if stats.catalog.memory_fallback else "")
        )
    lines += [f"  FAIL: {failure}" for failure in failures]
    lines.append("  result: " + ("OK" if ok else "FAILED"))
    snapshot = stats.as_dict()
    snapshot["selftest_ok"] = ok
    snapshot["failures"] = list(failures)
    return ok, "\n".join(lines), snapshot


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Smoke-test the concurrent decomposition service.",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the concurrent serving smoke scenario and verify its invariants",
    )
    parser.add_argument("--workers", type=int, default=4, help="service worker threads")
    parser.add_argument("--clients", type=int, default=8, help="concurrent client threads")
    parser.add_argument("--repeats", type=int, default=3, help="rounds per client")
    parser.add_argument(
        "--json", action="store_true", help="print the stats snapshot as JSON"
    )
    parser.add_argument(
        "--catalog",
        default=None,
        metavar="PATH",
        help="persist decided outcomes to a durable catalog (SQLite) at PATH",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _parser()
    args = parser.parse_args(argv)
    if not args.selftest:
        parser.print_help()
        return 2
    ok, report, stats = run_selftest(
        workers=args.workers,
        clients=args.clients,
        repeats=args.repeats,
        catalog=args.catalog,
    )
    if args.json:
        print(json.dumps(stats, indent=2))
        if not ok:
            print(report, file=sys.stderr)
    else:
        print(report)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
