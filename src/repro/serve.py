"""Command-line smoke driver for the concurrent serving layer.

Usage::

    python -m repro.serve --selftest [--backend thread|process] [--workers 4]
                          [--clients 8] [--json] [--catalog my.db]

``--selftest`` hammers a fresh :class:`~repro.service.DecompositionService`
from several client threads with a duplicate-heavy mix of decomposition and
query requests, then verifies the serving invariants end to end:

* every decomposition answer matches the known width of its instance, and
  every produced certificate passes the independent ``validate_hd`` oracle;
* coalescing happened (in-flight dedup counter > 0) and the expensive
  search ran at most once per distinct request key;
* the three query answer modes agree with each other;
* the pool shuts down cleanly (no deadlock, bounded join).

Exit status 0 means every check passed.  ``--json`` prints the final
:meth:`~repro.service.DecompositionService.stats` snapshot as JSON for
scripting; the default output is a human-readable summary.

``--catalog PATH`` opens (or creates) a durable
:class:`~repro.catalog.DecompositionCatalog` behind the engine's result
cache: the selftest's decided outcomes are persisted, a second run with the
same catalog answers them from disk instead of recomputing (the report
shows the L2 hit/store counters), and the file can be inspected with
``python -m repro.catalog list PATH``.

``--chaos [--chaos-seed N]`` runs the same scenario under a seeded,
*bounded* fault schedule (see :mod:`repro.faults`): transient-then-persistent
catalog errors that trip the circuit breaker, service-worker crashes below
the poison threshold, OOM-killed process workers in the parallel backend,
and random dispatch delays.  Every injected outage ends (rule ``times``
budgets), so on top of the normal invariants the chaos run asserts
*recovery*: answers byte-identical to a fault-free run, exactly-once
memoization intact, the catalog re-attached (circuit closed again), at
least one worker crash survived and at least one process worker respawned,
and a clean bounded shutdown.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
from collections.abc import Sequence
from pathlib import Path
from random import Random

from . import faults
from .core.codec import decomposition_to_json
from .decomp.validation import validate_hd
from .hypergraph import generators
from .hypergraph.cq import parse_conjunctive_query
from .pipeline.engine import DecompositionEngine
from .pipeline.registry import registry
from .query.database import random_database_for_query
from .service import DecompositionService

__all__ = ["main", "run_selftest"]

#: (instance factory, k, expected decision) — widths are pinned by the
#: tier-1 known-width tests, so a wrong answer here is a serving bug.
SELFTEST_INSTANCES = (
    (lambda: generators.cycle(6), 2, True),
    (lambda: generators.cycle(10), 2, True),
    (lambda: generators.grid(2, 3), 2, True),
    (lambda: generators.clique(5), 3, True),
    (lambda: generators.cycle(8), 1, False),
)

SELFTEST_QUERY = "ans(x, z) :- r(x,y), s(y,z), t(z,x)."

#: The chaos run's parallel-backend probe: a request forced through the
#: process backend so an injected worker kill (and the supervised respawn)
#: is actually exercised.  ``hybrid=False`` keeps its search deterministic
#: enough to decide correctly from any surviving partition.
CHAOS_PARALLEL_PROBE = (lambda: generators.cycle(10), 2, True)


def chaos_rules(seed: int, backend: str = "thread") -> list:
    """The seeded, bounded fault schedule of a ``--chaos`` run.

    Every rule's budget (``times``) is finite, so each injected outage ends
    and the recovery paths — catalog circuit re-attach, worker revival,
    process respawn — always get their turn; that is what lets the chaos
    invariants assert *recovery*, not merely degradation.

    The schedule is calibrated so no single task can accumulate
    ``poison_threshold`` (3) crashes: under the process backend the
    ``service.process`` kill adds up to one crash per task on top of the
    dispatch-crash budget (affinity re-routes the requeued task onto the
    respawned attempt-1 worker, which survives), so that budget drops from
    2 to 1 there.
    """
    import sqlite3

    rng = Random(seed)
    transient = sqlite3.OperationalError("chaos: disk I/O error")
    return [
        # Enough consecutive read failures to exhaust the retry policy and
        # open the catalog's circuit, plus a few writes failing around it.
        faults.FaultRule(point="catalog.get", error=transient, times=rng.randint(4, 8)),
        faults.FaultRule(point="catalog.put", error=transient, times=rng.randint(1, 3)),
        # One write-behind application blows up (the writer survives it).
        faults.FaultRule(
            point="catalog.writer", error=RuntimeError("chaos: writer hiccup"), times=1
        ),
        # Random short stalls shake up the dispatch interleaving.
        faults.FaultRule(
            point="service.worker",
            delay=0.001 + 0.004 * rng.random(),
            probability=0.2,
            times=20,
        ),
        faults.FaultRule(
            point="engine.decompose",
            delay=0.001 + 0.004 * rng.random(),
            probability=0.1,
            times=10,
        ),
        # Worker crashes — deliberately below the default poison threshold
        # (3) even when stacked with a process-worker kill on one key, so
        # every request must still end in a served answer, never a
        # quarantine.
        faults.FaultRule(
            point="service.worker",
            error=RuntimeError("chaos: dispatch crash"),
            times=2 if backend == "thread" else 1,
            skip=rng.randint(0, 5),
        ),
        # Every first-attempt process worker is OOM-killed; the respawned
        # replacements (attempt 1) decide the parallel probe.
        faults.FaultRule(point="parallel.worker", kill=True, where={"attempt": 0}),
        # Same treatment for the serving layer's own worker processes
        # (inert under the thread backend, where the point never fires):
        # each first-generation worker dies at its first batch, orphaning
        # the batch onto the requeue path and forcing a slot respawn.
        faults.FaultRule(point="service.process", kill=True, where={"attempt": 0}),
    ]


def run_selftest(
    workers: int = 4,
    clients: int = 8,
    repeats: int = 3,
    catalog: str | None = None,
    chaos_seed: int | None = None,
    backend: str = "thread",
    executor: str = "columnar",
) -> tuple[bool, str, dict]:
    """Run the concurrent smoke scenario; returns (ok, report text, stats dict).

    ``backend`` selects the service's execution backend (``"thread"`` or
    ``"process"``); the scenario and its invariants are backend-agnostic,
    which is the point — both must serve the same answers.  ``executor``
    picks the query-execution arm the same way (``"columnar"`` or
    ``"sql"``): the mode-agreement invariant must hold on either.

    ``catalog`` (a path) makes the engine persist decided outcomes to a
    durable :class:`~repro.catalog.DecompositionCatalog` and serve repeats
    of previously-seen instances from it across process restarts.

    ``chaos_seed`` switches on chaos mode: the scenario runs under the
    seeded bounded fault schedule of :func:`chaos_rules` and additionally
    asserts the recovery invariants (byte-identical answers, catalog
    re-attach, surviving worker pool).  A chaos run without an explicit
    ``catalog`` uses a throwaway temporary one — the circuit-breaker ladder
    needs a durable tier to break and re-attach.
    """
    chaos = chaos_seed is not None
    temp_dir = None
    if chaos and catalog is None:
        temp_dir = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        catalog = str(Path(temp_dir.name) / "chaos-catalog.db")
    instances = [(factory(), k, expect) for factory, k, expect in SELFTEST_INSTANCES]
    query = parse_conjunctive_query(SELFTEST_QUERY, name="selftest")
    database = random_database_for_query(query, domain_size=8, tuples_per_relation=40)

    failures: list[str] = []
    service = DecompositionService(
        num_workers=workers,
        engine=DecompositionEngine(catalog=catalog),
        backend=backend,
    )
    barrier = threading.Barrier(clients)

    def client(client_id: int) -> None:
        try:
            barrier.wait(timeout=30)
            for _ in range(repeats):
                tickets = [
                    (service.submit(hypergraph, k), expect)
                    for hypergraph, k, expect in instances
                ]
                query_tickets = [
                    service.submit_query(query, database, mode, executor=executor)
                    for mode in ("boolean", "count", "enumerate")
                ]
                for ticket, expect in tickets:
                    result = ticket.result(timeout=60)
                    if result.timed_out or result.success != expect:
                        failures.append(
                            f"client {client_id}: wrong answer for "
                            f"{result.hypergraph.name or result.hypergraph!r} "
                            f"k={result.width_parameter}"
                        )
                    elif result.success:
                        validate_hd(result.decomposition)
                boolean, count_, enum = [t.result(timeout=60) for t in query_tickets]
                if boolean.boolean != (enum.count > 0) or count_.count != enum.count:
                    failures.append(f"client {client_id}: query answer modes disagree")
        except Exception as exc:  # noqa: BLE001 - surfaced in the report
            failures.append(f"client {client_id}: {type(exc).__name__}: {exc}")

    injector = None
    previous = None
    if chaos:
        injector = faults.FaultInjector(
            rules=chaos_rules(chaos_seed, backend), seed=chaos_seed
        )
        previous = faults.install(injector)

    # daemon=True: if a regression deadlocks a ticket (the very bug this
    # selftest exists to catch) the process must still exit 1 instead of
    # hanging in interpreter shutdown on a stuck non-daemon thread.
    threads = [
        threading.Thread(target=client, args=(i,), daemon=True) for i in range(clients)
    ]
    probe_ticket = None
    try:
        for thread in threads:
            thread.start()
        if chaos:
            # The parallel-backend probe rides alongside the client storm so
            # the injected process-worker kills (and the respawns proving
            # them survivable) happen under real concurrent load.
            probe_factory, probe_k, _probe_expect = CHAOS_PARALLEL_PROBE
            probe_options = {"num_workers": 2, "hybrid": False}
            if backend == "process":
                # Service workers are daemonic processes and cannot fork
                # children of their own; run the parallel search on its
                # thread backend there (the service.process kill rule
                # already exercises process-level respawns).
                probe_options["backend"] = "thread"
            probe_ticket = service.submit(
                probe_factory(),
                probe_k,
                algorithm="log-k-decomp-parallel",
                **probe_options,
            )
        for thread in threads:
            thread.join(timeout=120)
            if thread.is_alive():
                failures.append("client thread did not finish (possible deadlock)")
        if probe_ticket is not None:
            try:
                probe_result = probe_ticket.result(timeout=120)
                if probe_result.timed_out or not probe_result.success:
                    failures.append(
                        "chaos: the parallel probe did not decide its instance "
                        "despite worker respawns"
                    )
            except Exception as exc:  # noqa: BLE001 - surfaced in the report
                failures.append(f"chaos: parallel probe failed: {exc}")
    finally:
        if injector is not None:
            # Recovery must be asserted on a *fault-free* substrate: leftover
            # rule budget re-tripping the circuit during the re-attach probe
            # below would make the invariants flaky.
            if previous is not None:
                faults.install(previous)
            else:
                faults.uninstall()

    if chaos:
        # The outage is over: the catalog must come back (forced half-open
        # probe, shadow rows replayed), and every answer computed under
        # chaos must be byte-identical to a fault-free computation.
        if not service.catalog_probe():
            failures.append("chaos: the catalog did not re-attach after the outage")
        baseline_engine = DecompositionEngine()
        for hypergraph, k, expect in instances:
            label = hypergraph.name or f"instance(k={k})"
            try:
                replay = service.submit(hypergraph, k).result(timeout=60)
            except Exception as exc:  # noqa: BLE001 - surfaced in the report
                failures.append(f"chaos: replay of {label} failed: {exc}")
                continue
            base = baseline_engine.decompose(registry.build("hybrid"), hypergraph, k)
            if base.success is not replay.success:
                failures.append(f"chaos: decision for {label} diverges from fault-free run")
            elif base.success and decomposition_to_json(
                base.decomposition
            ) != decomposition_to_json(replay.decomposition):
                failures.append(f"chaos: answer for {label} is not byte-identical "
                                "to the fault-free run")

    if chaos:
        # Pool liveness must be observed while the service is still up —
        # after shutdown the workers have (correctly) exited.
        live = service.stats().health
        if live["workers_alive"] != live["workers_total"]:
            failures.append("chaos: the worker pool shrank")
    # Only wait for the pool on a clean run: with a failure detected the
    # workers may be wedged, and a bounded exit with rc=1 (all threads are
    # daemons) beats hanging the CI job on an unbounded join.
    service.shutdown(wait=not failures, cancel_pending=bool(failures))
    if service.engine.catalog is not None:
        # Drain the write-behind queue so the stats snapshot (and any
        # process started right after us) sees every decided outcome.
        service.engine.catalog.flush()

    stats = service.stats()
    unique_decompositions = len(instances) + (1 if chaos else 0)
    total = clients * repeats * (len(instances) + 3)
    if chaos:
        total += 1 + len(instances)  # the parallel probe and the replay pass
    if stats.completed != total:
        failures.append(f"completed {stats.completed} of {total} requests")
    if chaos:
        health = stats.health
        if health["worker_crashes"] < 1:
            failures.append("chaos: no worker crash was exercised")
        if health["worker_respawns"] < 1:
            failures.append("chaos: no worker was respawned")
        if health["quarantined"] != 0:
            failures.append("chaos: a sub-threshold key was wrongly quarantined")
        if health["process_worker_respawns"] < 1:
            failures.append("chaos: no process worker respawn was exercised")
        circuit = health["catalog_circuit"]
        if circuit is None or circuit["reattaches"] < 1:
            failures.append("chaos: the catalog circuit never re-attached")
        elif circuit["state"] != "closed":
            failures.append("chaos: the catalog circuit is still open after recovery")
        if stats.catalog is not None and stats.catalog.memory_fallback:
            failures.append("chaos: the catalog is still serving memory-only")
    if stats.coalesced + stats.fast_path_hits == 0:
        failures.append("no request was coalesced or served from the memo")
    # Decomposition results are memoized, so across the whole run each
    # distinct (instance, k) key must have been computed exactly once.
    # Query results are only deduplicated while in flight (they are not
    # memoized), so their computation count is merely bounded by the
    # submission count.
    decompose_runs = stats.computations_by_kind.get("decompose", 0)
    if decompose_runs > unique_decompositions:
        failures.append(
            f"{decompose_runs} decomposition computations for "
            f"{unique_decompositions} distinct keys (exactly-once violated)"
        )

    ok = not failures
    lines = [
        f"serve selftest: {clients} clients x {repeats} rounds over "
        f"{len(instances)} instances + 3 query modes ({workers} {backend} workers)",
        f"  requests submitted : {stats.submitted}",
        f"  completed          : {stats.completed}",
        f"  computations       : {stats.computations} "
        f"({decompose_runs} decompositions for {unique_decompositions} distinct keys)",
        f"  coalesced in-flight: {stats.coalesced}",
        f"  memo fast-path hits: {stats.fast_path_hits}",
        f"  latency p50 / p95  : {stats.latency_p50 * 1000:.2f} / "
        f"{stats.latency_p95 * 1000:.2f} ms",
        f"  engine cache hit % : {stats.engine_cache.hit_rate * 100:.0f}%",
    ]
    if stats.catalog is not None:
        lines.append(
            f"  catalog (L2)       : {stats.catalog.hits} hits, "
            f"{stats.catalog.misses} misses, {stats.catalog.stores} stores, "
            f"{stats.catalog.validate_rejects} validate-rejects"
            + (" [memory fallback]" if stats.catalog.memory_fallback else "")
        )
    if chaos:
        health = stats.health
        circuit = health.get("catalog_circuit") or {}
        lines += [
            f"  chaos seed {chaos_seed:<8}: {injector.total_injected()} faults "
            f"injected across {len(injector.injected_counts())} points",
            f"  worker crashes     : {health['worker_crashes']} "
            f"(respawns {health['worker_respawns']}, "
            f"requeued {health['tasks_requeued']}, "
            f"quarantined {health['quarantined']})",
            f"  process respawns   : {health['process_worker_respawns']}",
            f"  catalog circuit    : {circuit.get('state')} "
            f"(opens {circuit.get('opens')}, reattaches {circuit.get('reattaches')}, "
            f"retries {circuit.get('retries')})",
        ]
    lines += [f"  FAIL: {failure}" for failure in failures]
    lines.append("  result: " + ("OK" if ok else "FAILED"))
    snapshot = stats.as_dict()
    snapshot["selftest_ok"] = ok
    snapshot["failures"] = list(failures)
    if chaos:
        snapshot["chaos"] = {
            "seed": chaos_seed,
            "injected": injector.injected_counts(),
        }
        if temp_dir is not None:
            service.engine.catalog.close()
            temp_dir.cleanup()
    return ok, "\n".join(lines), snapshot


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Smoke-test the concurrent decomposition service.",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the concurrent serving smoke scenario and verify its invariants",
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="service execution backend: in-process threads (default) or a "
        "cache-affinity-routed process pool",
    )
    parser.add_argument(
        "--executor",
        choices=("columnar", "sql"),
        default="columnar",
        help="query execution arm: the in-memory columnar engine (default) "
        "or SQL pushdown into SQLite",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="service workers (threads or processes)"
    )
    parser.add_argument("--clients", type=int, default=8, help="concurrent client threads")
    parser.add_argument("--repeats", type=int, default=3, help="rounds per client")
    parser.add_argument(
        "--json", action="store_true", help="print the stats snapshot as JSON"
    )
    parser.add_argument(
        "--catalog",
        default=None,
        metavar="PATH",
        help="persist decided outcomes to a durable catalog (SQLite) at PATH",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the selftest under a seeded bounded fault schedule and "
        "assert the recovery invariants",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the chaos fault schedule (default 0)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _parser()
    args = parser.parse_args(argv)
    if not args.selftest:
        parser.print_help()
        return 2
    ok, report, stats = run_selftest(
        workers=args.workers,
        clients=args.clients,
        repeats=args.repeats,
        catalog=args.catalog,
        chaos_seed=args.chaos_seed if args.chaos else None,
        backend=args.backend,
        executor=args.executor,
    )
    if args.json:
        print(json.dumps(stats, indent=2))
        if not ok:
            print(report, file=sys.stderr)
    else:
        print(report)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
