"""(Generalized) hypertree decompositions as user-facing objects.

A decomposition is a rooted tree whose nodes carry a *bag* χ(u) (a set of
vertex names) and a *cover* λ(u) (a set of edge names of the underlying
hypergraph).  :class:`HypertreeDecomposition` additionally promises the
special condition (condition (4) of the paper's Definition in Section 2);
:class:`GeneralizedHypertreeDecomposition` does not.  Whether the promise is
kept is checked by :mod:`repro.decomp.validation`, which all decomposers run
through in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

from ..exceptions import DecompositionError
from ..hypergraph import Hypergraph

__all__ = [
    "DecompositionNode",
    "Decomposition",
    "HypertreeDecomposition",
    "GeneralizedHypertreeDecomposition",
]


@dataclass
class DecompositionNode:
    """A node of a decomposition tree: a bag χ(u) and a cover λ(u)."""

    bag: frozenset[str]
    cover: frozenset[str]
    children: list["DecompositionNode"] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.bag = frozenset(self.bag)
        self.cover = frozenset(self.cover)

    @property
    def width(self) -> int:
        """|λ(u)| of this node."""
        return len(self.cover)

    def nodes(self) -> Iterator["DecompositionNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def subtree_bags(self) -> frozenset[str]:
        """χ(T_u): the union of the bags of the subtree rooted at this node."""
        result: set[str] = set()
        for node in self.nodes():
            result |= node.bag
        return frozenset(result)

    def add_child(self, child: "DecompositionNode") -> "DecompositionNode":
        """Append ``child`` and return it (builder-style convenience)."""
        self.children.append(child)
        return child


class Decomposition:
    """Common behaviour of hypertree and generalized hypertree decompositions."""

    kind = "decomposition"

    def __init__(self, hypergraph: Hypergraph, root: DecompositionNode) -> None:
        self.hypergraph = hypergraph
        self.root = root
        self._check_edges_exist()

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def nodes(self) -> Iterator[DecompositionNode]:
        """Iterate over all nodes in pre-order."""
        return self.root.nodes()

    def __len__(self) -> int:
        return sum(1 for _ in self.nodes())

    @property
    def width(self) -> int:
        """The width: the maximum cover size over all nodes."""
        return max(node.width for node in self.nodes())

    @property
    def depth(self) -> int:
        """The depth of the decomposition tree (root has depth 1)."""

        def rec(node: DecompositionNode) -> int:
            if not node.children:
                return 1
            return 1 + max(rec(child) for child in node.children)

        return rec(self.root)

    def parent_map(self) -> dict[int, DecompositionNode | None]:
        """Map ``id(node)`` to its parent node (``None`` for the root)."""
        parents: dict[int, DecompositionNode | None] = {id(self.root): None}
        for node in self.nodes():
            for child in node.children:
                parents[id(child)] = node
        return parents

    def bags_containing(self, vertex: str) -> list[DecompositionNode]:
        """All nodes whose bag contains the given vertex."""
        return [node for node in self.nodes() if vertex in node.bag]

    def covering_node(self, edge_name: str) -> DecompositionNode | None:
        """Some node whose bag covers the given edge, if one exists."""
        edge = self.hypergraph.edge_vertices(self.hypergraph.edge_index(edge_name))
        for node in self.nodes():
            if edge <= node.bag:
                return node
        return None

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """A human-readable indented rendering of the decomposition."""
        lines: list[str] = []

        def rec(node: DecompositionNode, indent: int) -> None:
            cover = ",".join(sorted(node.cover))
            bag = ",".join(sorted(node.bag))
            lines.append(f"{' ' * indent}λ={{{cover}}} χ={{{bag}}}")
            for child in node.children:
                rec(child, indent + 2)

        rec(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} of {self.hypergraph.name or 'hypergraph'} "
            f"width={self.width} nodes={len(self)}>"
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _check_edges_exist(self) -> None:
        vertex_set = self.hypergraph.vertices
        for node in self.nodes():
            for edge_name in node.cover:
                if edge_name not in self.hypergraph:
                    raise DecompositionError(
                        f"cover of a node references unknown edge {edge_name!r}"
                    )
            if not node.bag <= vertex_set:
                unknown = sorted(node.bag - vertex_set)
                raise DecompositionError(
                    f"bag of a node references unknown vertices {unknown}"
                )


class GeneralizedHypertreeDecomposition(Decomposition):
    """A decomposition claiming GHD conditions (no special condition)."""

    kind = "ghd"


class HypertreeDecomposition(GeneralizedHypertreeDecomposition):
    """A decomposition claiming all four HD conditions of the paper."""

    kind = "hd"

    @classmethod
    def single_node(
        cls, hypergraph: Hypergraph, cover: Iterable[str]
    ) -> "HypertreeDecomposition":
        """The one-node HD covering everything with the given edges."""
        cover = frozenset(cover)
        bag: set[str] = set()
        for edge_name in cover:
            bag |= hypergraph.edge_vertices(hypergraph.edge_index(edge_name))
        return cls(hypergraph, DecompositionNode(frozenset(bag), cover))
