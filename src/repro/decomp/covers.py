"""Enumeration of candidate λ-labels (edge covers / separators).

All decomposition algorithms in this library search over λ-labels: subsets of
at most ``k`` edges of the host hypergraph.  This module centralises that
enumeration together with the pruning rules described in Appendix C of the
paper:

* *allowed edges* — only edges from a caller-supplied set may be used,
* *progress* — at least one edge must come from the current component's edge
  set (a label of "old" edges only violates the normal form),
* *overlap* — for the parent label search, only edges intersecting ∪λ(c) are
  considered,
* *conn covering* — for det-k-decomp, the label must cover the Conn interface.

Enumeration-order contract
--------------------------
The enumeration yields labels in a deterministic order: smaller labels first,
and within a size lexicographically by edge index.  Determinism matters both
for reproducible experiments and for the search-space partitioning used by the
parallel backend (:mod:`repro.core.parallel`): a worker owns exactly the labels
whose *smallest* edge index falls into its partition, so the workers' streams
must be subsequences of one globally agreed order for "all workers failed" to
be a sound "no" answer.

The enumerator is a recursive branch-and-bound search rather than a filter
over :func:`itertools.combinations`:

* the running ∪λ bitmask is carried incrementally down the search tree, so no
  per-label union or ``set(label)`` is ever recomputed;
* the *progress* rule is enforced structurally — a branch is abandoned as soon
  as no ``require_from`` edge remains in the candidate suffix;
* a ``cover`` requirement prunes whole branches through precomputed
  suffix-union masks: if even the union of every remaining pool edge cannot
  close the uncovered gap, no descendant label can, and because suffixes only
  shrink to the right the entire remaining sibling range is cut;
* both prunes remove only branches that contain no emitted label, so the
  output sequence is byte-identical to the reference implementation
  (:meth:`CoverEnumerator.labels_reference`, the pre-branch-and-bound code,
  kept for the ablation benchmarks and the differential tests).

Width-safe subedge domination
-----------------------------
When a caller passes ``component_vertices`` (the vertex set V of the current
component as a bitmask), the candidate pool is pre-filtered: an allowed edge
``e`` is *dominated* and skipped when some other allowed edge ``f`` satisfies
``e ∩ V ⊆ f ∩ V`` (with a smallest-index tie-break when the restrictions are
equal, and never preferring an "old" edge over a ``require_from`` edge).

Correctness argument.  Dropping pool edges only removes labels, so every
answer found under domination is one the full search could produce —
*soundness* is automatic.  Completeness splits into two cases:

* *Equal restrictions* (``e ∩ V = f ∩ V``) — outcome-preserving, exactly.
  Map any dropped label L ∋ e to L' = (L \\ {e}) ∪ {f}: same size, identical
  restriction ∪L' ∩ V = ∪L ∩ V.  Every quantity the searches derive from a
  label — the bag χ = ∪λ ∩ V', the component split, the Conn-covering,
  balancedness and connectedness checks, the recursive subproblems — depends
  on λ only through that restriction, so L' passes iff L does, and the bags
  of the produced fragments are unchanged (bags live inside V, so condition 3
  and the special condition are unaffected by the swap of edge identities).
* *Strict containment* (``e ∩ V ⊊ f ∩ V``) — width-safe by the replacement
  map (|L'| <= |L| <= k and ∪L' ∩ V ⊇ ∪L ∩ V): the replacement covers at
  least as much of Conn and splits the component at least as finely, so every
  *monotone* acceptance condition keeps holding.  The oversized-component
  test of log-k-decomp's parent loop is the one non-monotone site (a finer
  split may lose the >half component), which is why
  :meth:`labels` offers ``strict_domination=False`` — the parent-label
  enumeration restricts itself to the provably exact equal-restriction
  collapse, while the child-label and det-k enumerations, whose acceptance
  conditions are monotone in the restriction, apply full containment (the
  same preprocessing BalancedGo-style solvers ship).  The engine-level
  differential tests exercise this end-to-end (domination on vs. off must
  agree on success across the random corpus); the ``subedge_domination``
  flags on the decomposers switch it off for the ablation study.

The progress rule is preserved in both cases because a ``require_from`` edge
is never dominated by a non-``require_from`` edge.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable, Iterator, Sequence

from ..hypergraph import Hypergraph
from ..hypergraph.bitset import from_indices, indices_of
from ..lru import BoundedLRU

__all__ = ["CoverEnumerator", "label_union", "count_labels"]

#: Bound on the number of memoised dominated pools per enumerator.
DOMINATION_MEMO_SIZE = 2048


def _pool_of(host: Hypergraph, allowed: Iterable[int] | int | None) -> list[int]:
    """Normalise an allowed-edge argument into a sorted index list.

    The searches pass packed edge-index bitmasks; iterables (the public,
    set-based convention) and ``None`` (= all edges) keep working.
    """
    if allowed is None:
        return list(range(host.num_edges))
    if isinstance(allowed, int):
        return indices_of(allowed)
    return sorted(allowed)


def _require_mask_of(require_from: Iterable[int] | int | None) -> int | None:
    """Normalise a progress-rule argument into an edge-index bitmask (or None).

    An empty mask and an empty set both mean "no progress constraint",
    matching the historical falsiness check on frozensets.
    """
    if isinstance(require_from, int):
        return require_from or None
    if not require_from:
        return None
    return from_indices(require_from)


def label_union(host: Hypergraph, label: Sequence[int]) -> int:
    """∪λ as a vertex bitmask for a label given as edge indices."""
    mask = 0
    for index in label:
        mask |= host.edge_bits(index)
    return mask


def count_labels(num_allowed: int, k: int) -> int:
    """Number of labels of size 1..k over ``num_allowed`` edges (search-space size)."""
    total = 0
    binom = 1
    for size in range(1, k + 1):
        binom = binom * (num_allowed - size + 1) // size
        if num_allowed < size:
            break
        total += binom
    return total


class CoverEnumerator:
    """Enumerates λ-label candidates over a host hypergraph.

    Parameters
    ----------
    host:
        The hypergraph whose edges form the candidate pool.
    k:
        The width parameter; labels have between 1 and ``k`` edges.

    Attributes
    ----------
    pruning:
        Ablation switch.  ``True`` (default) runs the branch-and-bound
        enumerator; ``False`` routes every query through the reference
        implementation (and disables subedge domination), reproducing the
        pre-optimisation behaviour for the prune/no-prune benchmarks.  The
        searches pass their own flag per call (the ``pruning`` parameter of
        :meth:`labels`) rather than mutating this shared default.
    stats:
        Optional :class:`~repro.core.base.SearchStatistics`; when set (the
        :class:`~repro.core.base.SearchContext` wires it up) the enumerator
        records ``enum_branches_pruned`` and ``enum_domination_skips``.
    """

    def __init__(self, host: Hypergraph, k: int) -> None:
        if k < 1:
            raise ValueError("width parameter k must be >= 1")
        self.host = host
        self.k = k
        self.pruning = True
        self.stats = None
        self._domination_memo: BoundedLRU = BoundedLRU(DOMINATION_MEMO_SIZE)

    # ------------------------------------------------------------------ #
    # enumeration
    # ------------------------------------------------------------------ #
    def labels(
        self,
        allowed: Iterable[int] | int | None = None,
        require_from: Iterable[int] | int | None = None,
        overlap_with: int | None = None,
        cover: int | None = None,
        max_size: int | None = None,
        component_vertices: int | None = None,
        strict_domination: bool = True,
        pruning: bool | None = None,
    ) -> Iterator[tuple[int, ...]]:
        """Yield candidate labels as sorted tuples of edge indices.

        Parameters
        ----------
        allowed:
            Edge indices that may appear in the label (defaults to all
            edges).  Accepts an iterable of indices or a packed edge-index
            bitmask — the searches pass the bitmask form.
        require_from:
            If given, at least one edge of the label must come from this set
            (the "progress" rule of the normal form).  Iterable of indices
            or a packed edge-index bitmask.
        overlap_with:
            If given (a vertex bitmask), every edge of the label must share a
            vertex with it (the parent-label pruning of Appendix C).
        cover:
            If given (a vertex bitmask), the union of the label must contain
            it (det-k-decomp's Conn-covering requirement).
        max_size:
            Optional override of the maximum label size (defaults to ``k``).
        component_vertices:
            If given (the component's vertex bitmask), enables width-safe
            subedge domination over the pool (see the module docstring).
            Ignored when pruning is off.
        strict_domination:
            ``True`` applies full-containment domination; ``False`` only the
            outcome-preserving equal-restriction collapse (the parent-label
            loop of log-k-decomp requires the weaker mode, see the module
            docstring).  Irrelevant without ``component_vertices``.
        pruning:
            Per-call override of :attr:`pruning` (``None`` = use the
            attribute); the searches pass their ``label_pruning`` flag here
            so that two searches sharing one enumerator never fight over
            ambient state.
        """
        if not (self.pruning if pruning is None else pruning):
            return self.labels_reference(
                allowed=allowed,
                require_from=require_from,
                overlap_with=overlap_with,
                cover=cover,
                max_size=max_size,
            )
        return self._branch_and_bound(
            allowed, require_from, overlap_with, cover, max_size,
            component_vertices, strict_domination, None,
        )

    def labels_with_union(
        self,
        allowed: Iterable[int] | int | None = None,
        require_from: Iterable[int] | int | None = None,
        overlap_with: int | None = None,
        cover: int | None = None,
        component_vertices: int | None = None,
    ) -> Iterator[tuple[tuple[int, ...], int]]:
        """Like :meth:`labels` but also yields ∪λ as a bitmask."""
        for label in self.labels(
            allowed=allowed,
            require_from=require_from,
            overlap_with=overlap_with,
            cover=cover,
            component_vertices=component_vertices,
        ):
            yield label, label_union(self.host, label)

    def labels_reference(
        self,
        allowed: Iterable[int] | int | None = None,
        require_from: Iterable[int] | int | None = None,
        overlap_with: int | None = None,
        cover: int | None = None,
        max_size: int | None = None,
    ) -> Iterator[tuple[int, ...]]:
        """The pre-branch-and-bound enumerator, kept verbatim.

        Serves as the ground truth for the differential tests (the optimised
        :meth:`labels` must yield the byte-identical sequence) and as the
        "no pruning" arm of the ablation benchmarks.  Only the argument
        normalisation is shared with the optimised path; the combinations
        filter itself is untouched.
        """
        host = self.host
        limit = self.k if max_size is None else min(max_size, self.k)
        pool = _pool_of(host, allowed)
        if overlap_with is not None:
            pool = [i for i in pool if host.edge_bits(i) & overlap_with]
        if not pool:
            return
        require = _require_mask_of(require_from)
        if require is not None and not (require & from_indices(pool)):
            return
        pool_bits = [host.edge_bits(i) for i in pool]
        full_union = 0
        for bits in pool_bits:
            full_union |= bits
        if cover is not None and cover & ~full_union:
            return
        for size in range(1, limit + 1):
            for combo_positions in combinations(range(len(pool)), size):
                label = tuple(pool[p] for p in combo_positions)
                if require is not None and not any(
                    (require >> e) & 1 for e in label
                ):
                    continue
                if cover is not None:
                    union = 0
                    for p in combo_positions:
                        union |= pool_bits[p]
                    if cover & ~union:
                        continue
                yield label

    # ------------------------------------------------------------------ #
    # branch-and-bound core
    # ------------------------------------------------------------------ #
    def _dominated_pool(
        self,
        pool: list[int],
        require: int | None,
        component_vertices: int,
        strict: bool,
    ) -> list[int]:
        """Drop pool edges dominated within the component (module docstring).

        Edge ``e`` is dominated by ``f`` iff ``e ∩ V ⊆ f ∩ V`` (with
        ``strict=False`` only ``e ∩ V = f ∩ V``), ``f`` is at least as
        eligible for the progress rule as ``e``, and — when the restrictions
        are exactly equal and both edges have the same progress status —
        ``f`` has the smaller index, so exactly one representative of every
        equivalence class survives, deterministically.

        ``require`` is an edge-index bitmask (or None).  Results are memoised
        under the packed ``(pool, require, V, strict)`` key: the searches
        re-enumerate labels for the same component against many Conn/overlap
        variations, and the dominated pool depends on none of those.
        """
        host = self.host
        memo_key = (from_indices(pool), require, component_vertices, strict)
        cached = self._domination_memo.get(memo_key)
        if cached is not None:
            survivors, skipped = cached
            if self.stats is not None:
                self.stats.bitset_memo_hits += 1
                self.stats.enum_domination_skips += skipped
            return survivors
        restricted = [host.edge_bits(e) & component_vertices for e in pool]
        if require is not None:
            progress = [(require >> e) & 1 != 0 for e in pool]
        else:
            progress = None
        survivors: list[int] = []
        skipped = 0
        n = len(pool)

        if not strict:
            # Equal-restriction collapse is plain dedup: one survivor per
            # restricted mask — the smallest-index progress member if the
            # class has one (an old edge must never outlive a progress
            # witness), else the smallest index.  O(n) instead of the
            # pairwise pass below; this runs per parent-label enumeration,
            # i.e. once per child label on the hottest loop.
            chosen: dict[int, int] = {}
            for i in range(n):
                mask = restricted[i]
                head = chosen.get(mask)
                if head is None or (
                    progress is not None and progress[i] and not progress[head]
                ):
                    chosen[mask] = i
            keep = set(chosen.values())
            for i in range(n):
                if i in keep:
                    survivors.append(pool[i])
                else:
                    skipped += 1
            if skipped and self.stats is not None:
                self.stats.enum_domination_skips += skipped
            self._domination_memo.put(memo_key, (survivors, skipped))
            return survivors

        # strict=True from here on: full-containment domination, pairwise.
        for i in range(n):
            ri = restricted[i]
            dominated = False
            for j in range(n):
                if j == i:
                    continue
                rj = restricted[j]
                if ri & ~rj:
                    continue  # not a subset: no domination
                if progress is not None and progress[i] and not progress[j]:
                    continue  # never lose a progress witness to an old edge
                if ri == rj:
                    same_status = progress is None or progress[i] == progress[j]
                    if same_status and j > i:
                        continue  # tie-break: the smaller index survives
                dominated = True
                break
            if dominated:
                skipped += 1
            else:
                survivors.append(pool[i])
        if skipped and self.stats is not None:
            self.stats.enum_domination_skips += skipped
        self._domination_memo.put(memo_key, (survivors, skipped))
        return survivors

    def _branch_and_bound(
        self,
        allowed: Iterable[int] | int | None,
        require_from: Iterable[int] | int | None,
        overlap_with: int | None,
        cover: int | None,
        max_size: int | None,
        component_vertices: int | None,
        strict_domination: bool,
        first_edges: frozenset[int] | set[int] | None,
    ) -> Iterator[tuple[int, ...]]:
        host = self.host
        limit = self.k if max_size is None else min(max_size, self.k)
        pool = _pool_of(host, allowed)
        if overlap_with is not None:
            pool = [i for i in pool if host.edge_bits(i) & overlap_with]
        if not pool:
            return
        require = _require_mask_of(require_from)
        if component_vertices is not None:
            pool = self._dominated_pool(
                pool, require, component_vertices, strict_domination
            )
        bits = [host.edge_bits(i) for i in pool]
        n = len(pool)
        stats = self.stats

        if require is not None:
            is_req = [(require >> e) & 1 != 0 for e in pool]
            last_req = -1
            for pos in range(n - 1, -1, -1):
                if is_req[pos]:
                    last_req = pos
                    break
            if last_req < 0:
                return
        else:
            is_req = None
            last_req = n  # sentinel: never triggers the progress prune

        suffix: list[int] | None = None
        if cover is not None:
            suffix = [0] * (n + 1)
            acc = 0
            for pos in range(n - 1, -1, -1):
                acc |= bits[pos]
                suffix[pos] = acc
            if cover & ~suffix[0]:
                return

        first_ok: list[bool] | None = None
        if first_edges is not None:
            first_ok = [e in first_edges for e in pool]

        for size in range(1, limit + 1):
            if size > n:
                break
            if size == 1:
                # Flat fast path: no recursion state to maintain.
                for pos in range(n):
                    if first_ok is not None and not first_ok[pos]:
                        continue
                    if is_req is not None and not is_req[pos]:
                        continue
                    if cover is not None and cover & ~bits[pos]:
                        continue
                    yield (pool[pos],)
                continue

            # Iterative DFS over positions: depth d chooses the (d+1)-th edge.
            # idx[d] is the position chosen at depth d; unions/got are prefix
            # state (union of and progress-status over the first d choices).
            idx = [0] * size
            chosen = [0] * size
            unions = [0] * size
            got = [is_req is None] * size
            d = 0
            pos = 0
            max_start = n - size
            leaf = size - 1
            while True:
                descend = False
                limit_pos = max_start + d
                prefix_union = unions[d]
                prefix_got = got[d]
                while pos <= limit_pos:
                    if not prefix_got and pos > last_req:
                        # No progress edge remains in the suffix: every label
                        # in this whole sibling range is filtered.
                        if stats is not None:
                            stats.enum_branches_pruned += 1
                        break
                    if cover is not None and cover & ~(prefix_union | suffix[pos]):
                        # Even taking every remaining pool edge cannot close
                        # the cover gap; suffix unions only shrink for larger
                        # pos, so cut the entire remaining range.
                        if stats is not None:
                            stats.enum_branches_pruned += 1
                        break
                    if d == 0 and first_ok is not None and not first_ok[pos]:
                        pos += 1
                        continue
                    if d == leaf:
                        if (prefix_got or is_req[pos]) and (
                            cover is None or not (cover & ~(prefix_union | bits[pos]))
                        ):
                            chosen[d] = pool[pos]
                            yield tuple(chosen)
                        pos += 1
                        continue
                    chosen[d] = pool[pos]
                    idx[d] = pos
                    d += 1
                    unions[d] = prefix_union | bits[pos]
                    got[d] = prefix_got or is_req[pos]
                    pos += 1
                    descend = True
                    break
                if descend:
                    continue
                if d == 0:
                    break
                d -= 1
                pos = idx[d] + 1

    # ------------------------------------------------------------------ #
    # partitioning (used by the parallel backend)
    # ------------------------------------------------------------------ #
    def partition_first_edges(
        self, allowed: Iterable[int] | int | None, num_parts: int
    ) -> list[list[int]]:
        """Partition the candidate pool round-robin into ``num_parts`` groups.

        The parallel backend assigns each group to a worker; a worker only
        explores labels whose *smallest* edge index belongs to its group,
        which partitions the label space without duplication.
        """
        pool = _pool_of(self.host, allowed)
        parts: list[list[int]] = [[] for _ in range(max(1, num_parts))]
        for position, edge in enumerate(pool):
            parts[position % max(1, num_parts)].append(edge)
        return parts

    def labels_for_partition(
        self,
        allowed: Iterable[int] | int | None,
        first_edges: Sequence[int],
        require_from: Iterable[int] | int | None = None,
        component_vertices: int | None = None,
        pruning: bool | None = None,
    ) -> Iterator[tuple[int, ...]]:
        """Yield only the labels whose minimum edge index lies in ``first_edges``.

        Partition-restricted labels are generated directly by constraining
        the *first* chosen edge (labels are emitted as sorted tuples over a
        sorted pool, so the first choice is the minimum); the rest of the
        label space is never materialised.  Subedge domination, when enabled,
        is applied to the full pool *before* the partition restriction, so
        every worker prunes the same edges and the per-worker streams still
        partition the (dominated) label space.
        """
        firsts = set(first_edges)
        if not (self.pruning if pruning is None else pruning):
            for label in self.labels_reference(allowed=allowed, require_from=require_from):
                if label[0] in firsts:
                    yield label
            return
        yield from self._branch_and_bound(
            allowed, require_from, None, None, None, component_vertices, True, firsts
        )
